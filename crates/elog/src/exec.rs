//! Execution of compiled [`WrapperPlan`]s.
//!
//! The executor is the cheap, repeatable half of the compile-once /
//! run-many split: every per-run cost the interpreted evaluator pays —
//! regex compilation, `HashMap` environments keyed by variable name,
//! linear scans of the instance base for parents, duplicates and pattern
//! references — is replaced by slot frames (`Vec<Option<Value>>`),
//! precompiled matchers, and per-pattern indexes. A semi-naive touch on
//! the fixpoint skips rules whose inputs (parent pattern and referenced
//! patterns) have not grown since the rule last ran.
//!
//! Everything here deliberately mirrors the interpreted evaluator in
//! `eval.rs` step for step: plan execution must be *result-identical*,
//! instance order included, which the `plan_equivalence` integration
//! test asserts across the workload corpus.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

use lixto_obs::RuleStats;
use lixto_tree::{Document, NodeId, NodeKind};

use crate::concepts::compare_values;
use crate::eval::{
    forest_of, node_span, target_span, target_text, ExtractionResult, ExtractorOptions, Value,
};
use crate::instances::{DocId, Instance, InstanceBase, Target};
use crate::plan::{
    PatternId, PlanAttr, PlanAttrMatch, PlanCondition, PlanExtraction, PlanParent, PlanPath,
    PlanRule, PlanTag, PlanUrl, PlanVarRef, SlotId, WrapperPlan,
};
use crate::web::WebSource;

/// FxHash: the dedup and reference sets sit on the per-instance hot
/// path, where SipHash's per-lookup cost would eat the win on small
/// documents. Same multiply-xor scheme as `lixto_server`'s cache.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FxSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Optional execution telemetry. When attached (via
/// [`Extractor::with_probe`](crate::Extractor::with_probe)) the executor
/// times each rule invocation into the shared [`RuleStats`] and
/// accumulates document fetch / HTML parse wall time; when absent the
/// hot loop takes no clock readings at all.
pub struct ExecProbe {
    rules: Option<Arc<RuleStats>>,
    fetch_ns: Cell<u64>,
    parse_ns: Cell<u64>,
}

impl ExecProbe {
    /// A probe recording per-rule counters into `rules` (pass `None` to
    /// time only fetch/parse).
    pub fn new(rules: Option<Arc<RuleStats>>) -> ExecProbe {
        ExecProbe {
            rules,
            fetch_ns: Cell::new(0),
            parse_ns: Cell::new(0),
        }
    }

    /// Wall time spent fetching documents (entry + crawl) during runs
    /// observed by this probe, in nanoseconds.
    pub fn fetch_ns(&self) -> u64 {
        self.fetch_ns.get()
    }

    /// Wall time spent parsing fetched HTML, in nanoseconds.
    pub fn parse_ns(&self) -> u64 {
        self.parse_ns.get()
    }

    fn add(cell: &Cell<u64>, since: Instant) {
        let ns = since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        cell.set(cell.get().saturating_add(ns));
    }
}

/// A rule-local environment: one value per slot.
type Frame = Vec<Option<Value>>;

/// A path match: target node plus slot bindings from `regvar` captures.
struct PlanMatch {
    node: NodeId,
    bindings: Vec<(SlotId, String)>,
}

/// Per-pattern target index for `PatternRef` conditions: O(1) membership
/// instead of the interpreted full-base scan.
#[derive(Default)]
struct RefIndex {
    nodes: FxSet<(DocId, NodeId)>,
    texts: FxSet<String>,
}

struct PlanState<'p> {
    probe: Option<&'p ExecProbe>,
    base: InstanceBase,
    docs: Vec<Document>,
    doc_urls: Vec<String>,
    url_ids: HashMap<String, DocId>,
    /// Instance indices per pattern id, in insertion order — the
    /// indexed replacement for `InstanceBase::of_pattern`.
    by_pattern: Vec<Vec<usize>>,
    /// Dedup set replacing the interpreted `add` linear scan.
    dedup: FxSet<(PatternId, Option<usize>, Target)>,
    /// Per-pattern instance counts, used as input generations by the
    /// semi-naive rule-skipping.
    gens: Vec<u64>,
    /// Target indexes for patterns referenced by `PatternRef`.
    refs: HashMap<PatternId, RefIndex>,
    /// Pattern names in first-extraction order.
    name_order: Vec<String>,
    seen: Vec<bool>,
    /// Producing rule index per instance, parallel to `base.instances` —
    /// the derivation trace the result store persists as provenance.
    rule_trace: Vec<u32>,
}

impl PlanState<'_> {
    fn fetch(&mut self, web: &dyn WebSource, url: &str, cap: usize) -> Option<DocId> {
        if let Some(&id) = self.url_ids.get(url) {
            return Some(id);
        }
        if self.docs.len() >= cap {
            return None;
        }
        let fetch_started = self.probe.map(|_| Instant::now());
        let html = web.fetch(url);
        if let (Some(probe), Some(started)) = (self.probe, fetch_started) {
            ExecProbe::add(&probe.fetch_ns, started);
        }
        let html = html?;
        let parse_started = self.probe.map(|_| Instant::now());
        let doc = lixto_html::parse(&html);
        if let (Some(probe), Some(started)) = (self.probe, parse_started) {
            ExecProbe::add(&probe.parse_ns, started);
        }
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        self.doc_urls.push(url.to_string());
        self.url_ids.insert(url.to_string(), id);
        Some(id)
    }

    /// Add an instance unless an identical one exists; true when new.
    fn add(
        &mut self,
        plan: &WrapperPlan,
        pattern: PatternId,
        parent: Option<usize>,
        target: Target,
        rule: u32,
    ) -> bool {
        let key = (pattern, parent, target);
        if self.dedup.contains(&key) {
            return false;
        }
        let (pattern, parent, target) = (key.0, key.1, key.2.clone());
        self.dedup.insert(key);
        let index = self.base.instances.len();
        if let Some(ref_index) = self.refs.get_mut(&pattern) {
            match &target {
                Target::Node { doc, node } => {
                    ref_index.nodes.insert((*doc, *node));
                }
                Target::Text(text) => {
                    ref_index.texts.insert(text.clone());
                }
                Target::NodeSeq { .. } => {}
            }
        }
        self.base.instances.push(Instance {
            pattern: plan.patterns()[pattern as usize].clone(),
            parent,
            target,
        });
        self.by_pattern[pattern as usize].push(index);
        self.rule_trace.push(rule);
        self.gens[pattern as usize] += 1;
        if !self.seen[pattern as usize] {
            self.seen[pattern as usize] = true;
            self.name_order
                .push(plan.patterns()[pattern as usize].clone());
        }
        true
    }
}

/// Input generations a rule saw when it last ran; the rule is skipped
/// while they are unchanged (its output is a function of parent and
/// referenced pattern instances only).
struct RuleMark {
    parent_gen: u64,
    ref_gens: Vec<u64>,
}

/// Run `plan` to fixpoint over `web` — the compiled counterpart of the
/// interpreted `Extractor::run_interpreted`.
pub(crate) fn execute(
    plan: &WrapperPlan,
    web: &dyn WebSource,
    options: &ExtractorOptions,
    probe: Option<&ExecProbe>,
) -> ExtractionResult {
    let n = plan.patterns().len();
    let mut refs: HashMap<PatternId, RefIndex> = HashMap::new();
    for rule in plan.rules() {
        for &r in &rule.refs {
            refs.entry(r).or_default();
        }
    }
    let rule_stats = probe.and_then(|p| p.rules.as_deref());
    let mut st = PlanState {
        probe,
        base: InstanceBase::default(),
        docs: Vec::new(),
        doc_urls: Vec::new(),
        url_ids: HashMap::new(),
        by_pattern: vec![Vec::new(); n],
        dedup: FxSet::default(),
        gens: vec![0; n],
        refs,
        name_order: Vec::new(),
        seen: vec![false; n],
        rule_trace: Vec::new(),
    };
    let mut marks: Vec<Option<RuleMark>> = (0..plan.rules().len()).map(|_| None).collect();
    loop {
        let mut changed = false;
        for (ri, rule) in plan.rules().iter().enumerate() {
            if can_skip(rule, &marks[ri], &st) {
                continue;
            }
            marks[ri] = Some(RuleMark {
                parent_gen: match &rule.parent {
                    PlanParent::Pattern(p) => st.gens[*p as usize],
                    PlanParent::Document(_) => 0,
                },
                ref_gens: rule.refs.iter().map(|&r| st.gens[r as usize]).collect(),
            });
            let rule_started = rule_stats.map(|_| Instant::now());
            let added = apply_rule(plan, rule, ri as u32, &mut st, web, options);
            if let (Some(stats), Some(started)) = (rule_stats, rule_started) {
                let ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                stats.record(ri, added as u64, ns);
            }
            changed |= added > 0;
            if st.base.len() >= options.max_instances {
                break;
            }
        }
        if !changed || st.base.len() >= options.max_instances {
            break;
        }
    }
    ExtractionResult {
        base: st.base,
        docs: st.docs,
        doc_urls: st.doc_urls,
        pattern_names: st.name_order,
        rule_trace: st.rule_trace,
    }
}

/// A rule can be skipped when it has run before and nothing it reads has
/// grown since. Entry rules and crawl rules always re-run: they fetch,
/// and the interpreted evaluator retries failed fetches every pass.
fn can_skip(rule: &PlanRule, mark: &Option<RuleMark>, st: &PlanState) -> bool {
    let Some(mark) = mark else { return false };
    let PlanParent::Pattern(parent) = &rule.parent else {
        return false;
    };
    if matches!(rule.extraction, PlanExtraction::Document(_)) {
        return false;
    }
    st.gens[*parent as usize] == mark.parent_gen
        && rule
            .refs
            .iter()
            .zip(&mark.ref_gens)
            .all(|(&r, &g)| st.gens[r as usize] == g)
}

/// Apply one rule across every parent instance; returns the number of
/// new instances added (the executor's `changed` signal and the probe's
/// per-invocation match count).
fn apply_rule(
    plan: &WrapperPlan,
    rule: &PlanRule,
    rule_index: u32,
    st: &mut PlanState<'_>,
    web: &dyn WebSource,
    options: &ExtractorOptions,
) -> usize {
    let parents: Vec<(Option<usize>, Target)> = match &rule.parent {
        PlanParent::Pattern(pid) => st.by_pattern[*pid as usize]
            .iter()
            .map(|&i| (Some(i), st.base.instances[i].target.clone()))
            .collect(),
        PlanParent::Document(url) => match st.fetch(web, url, options.max_documents) {
            Some(did) => {
                let root = st.docs[did.0 as usize].root();
                vec![(
                    None,
                    Target::Node {
                        doc: did,
                        node: root,
                    },
                )]
            }
            None => vec![],
        },
    };

    let mut added = 0;
    for (parent_idx, s_target) in parents {
        let candidates = extract(rule, &s_target, st, web, options);
        // Context-condition witnesses are per (condition, parent):
        // hoisted exactly as the interpreted evaluator hoists them.
        let witnesses: Vec<Option<Vec<PlanMatch>>> = rule
            .conditions
            .iter()
            .map(|c| match c {
                PlanCondition::Context { path, .. } => forest_of(&s_target, &st.docs)
                    .map(|(did, roots)| eval_plan_path(&st.docs[did.0 as usize], &roots, path)),
                _ => None,
            })
            .collect();
        let mut accepted: Vec<Target> = Vec::new();
        for (target, frame) in candidates {
            if conditions_hold(rule, &s_target, &target, frame, st, &witnesses) {
                accepted.push(target);
            }
        }
        // Maximality for subsq, mirrored from the interpreter.
        if matches!(rule.extraction, PlanExtraction::Subsq { .. }) {
            let snapshot = accepted.clone();
            accepted.retain(|t| {
                let Target::NodeSeq { nodes, .. } = t else {
                    return true;
                };
                !snapshot.iter().any(|o| {
                    if let Target::NodeSeq { nodes: onodes, .. } = o {
                        onodes.len() > nodes.len() && nodes.iter().all(|n| onodes.contains(n))
                    } else {
                        false
                    }
                })
            });
        }
        if let Some((from, to)) = rule.range {
            accepted = accepted
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i + 1 >= from && *i < to)
                .map(|(_, t)| t)
                .collect();
        }
        for target in accepted {
            if st.add(plan, rule.pattern, parent_idx, target, rule_index) {
                added += 1;
            }
        }
    }
    added
}

/// Apply the extraction atom, yielding (target, initial frame) pairs.
fn extract(
    rule: &PlanRule,
    s: &Target,
    st: &mut PlanState,
    web: &dyn WebSource,
    options: &ExtractorOptions,
) -> Vec<(Target, Frame)> {
    let frame = || vec![None; rule.slots];
    match &rule.extraction {
        PlanExtraction::Specialize => vec![(s.clone(), frame())],
        PlanExtraction::Subelem(path) => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let doc = &st.docs[did.0 as usize];
            eval_plan_path(doc, &roots, path)
                .into_iter()
                .map(|m| {
                    let mut env = frame();
                    for (slot, value) in m.bindings {
                        env[slot as usize] = Some(Value::Str(value));
                    }
                    (
                        Target::Node {
                            doc: did,
                            node: m.node,
                        },
                        env,
                    )
                })
                .collect()
        }
        PlanExtraction::Subsq {
            context,
            start,
            end,
        } => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let doc = &st.docs[did.0 as usize];
            let mut out = Vec::new();
            for ctx in eval_plan_path(doc, &roots, context) {
                let kids: Vec<NodeId> = doc.children(ctx.node).collect();
                for i in 0..kids.len() {
                    if !member_matches(doc, kids[i], start) {
                        continue;
                    }
                    for j in i..kids.len() {
                        if member_matches(doc, kids[j], end) {
                            out.push((
                                Target::NodeSeq {
                                    doc: did,
                                    nodes: kids[i..=j].to_vec(),
                                },
                                frame(),
                            ));
                        }
                    }
                }
            }
            out
        }
        PlanExtraction::Subtext(rv) => {
            let text = target_text(s, &st.docs);
            let mut out = Vec::new();
            for caps in rv.regex.captures_iter(&text) {
                let Some(whole) = caps.get(0) else { continue };
                if whole.text.is_empty() {
                    continue;
                }
                let mut env = frame();
                let mut ok = true;
                for (name, slot) in &rv.captures {
                    match caps.name(name) {
                        Some(m) => {
                            if let Some(slot) = slot {
                                env[*slot as usize] = Some(Value::Str(m.text.to_string()));
                            }
                        }
                        None => ok = false,
                    }
                }
                if ok {
                    out.push((Target::Text(whole.text.to_string()), env));
                }
            }
            out
        }
        PlanExtraction::Subatt(attr) => match s {
            Target::Node { doc, node } => {
                let d = &st.docs[doc.0 as usize];
                match d.attr(*node, attr) {
                    Some(v) => vec![(Target::Text(v.to_string()), frame())],
                    None => vec![],
                }
            }
            _ => vec![],
        },
        PlanExtraction::Document(url) => {
            let url = match url {
                PlanUrl::Const(u) => Some(u.clone()),
                PlanUrl::Slot(slot) => {
                    // Resolve from attrbind conditions against S, in
                    // condition order (later bindings overwrite) — the
                    // interpreted evaluator's pre-scan.
                    let mut resolved: Option<String> = None;
                    for c in &rule.conditions {
                        if let PlanCondition::AttrBind { attr, var } = c {
                            if var == slot {
                                if let Target::Node { doc, node } = s {
                                    let d = &st.docs[doc.0 as usize];
                                    if let Some(val) = d.attr(*node, attr) {
                                        resolved = Some(val.to_string());
                                    }
                                }
                            }
                        }
                    }
                    resolved
                }
            };
            let Some(url) = url else { return vec![] };
            match st.fetch(web, &url, options.max_documents) {
                Some(did) => {
                    let root = st.docs[did.0 as usize].root();
                    vec![(
                        Target::Node {
                            doc: did,
                            node: root,
                        },
                        frame(),
                    )]
                }
                None => vec![],
            }
        }
    }
}

/// Evaluate Φ(S, X) with environment-set semantics over slot frames.
fn conditions_hold(
    rule: &PlanRule,
    s: &Target,
    x: &Target,
    initial: Frame,
    st: &PlanState,
    witnesses: &[Option<Vec<PlanMatch>>],
) -> bool {
    let mut envs = vec![initial];
    for (ci, cond) in rule.conditions.iter().enumerate() {
        match cond {
            PlanCondition::Range => continue,
            PlanCondition::AttrBind { attr, var } => {
                if let Target::Node { doc, node } = s {
                    let d = &st.docs[doc.0 as usize];
                    if let Some(v) = d.attr(*node, attr) {
                        for env in &mut envs {
                            env[*var as usize] = Some(Value::Str(v.to_string()));
                        }
                    } else {
                        return false;
                    }
                }
                continue;
            }
            _ => {}
        }
        let mut next: Vec<Frame> = Vec::new();
        for env in envs {
            next.extend(eval_condition(
                cond,
                s,
                x,
                env,
                st,
                witnesses[ci].as_deref(),
            ));
        }
        if next.is_empty() {
            return false;
        }
        envs = next;
    }
    true
}

/// Resolve a condition's value reference to a string, mirroring the
/// interpreted resolution (slot values, node text, `X` fallback).
fn resolve_value(var: &PlanVarRef, env: &Frame, x: &Target, st: &PlanState) -> Option<String> {
    let slot_value = |slot: SlotId| -> Option<String> {
        match env[slot as usize].as_ref()? {
            Value::Str(sv) => Some(sv.clone()),
            Value::Node(did, node) => Some(st.docs[did.0 as usize].text_content(*node)),
        }
    };
    match var {
        PlanVarRef::Slot(slot) => slot_value(*slot),
        PlanVarRef::SlotOrTarget(slot) => {
            slot_value(*slot).or_else(|| Some(target_text(x, &st.docs)))
        }
        PlanVarRef::TargetText => Some(target_text(x, &st.docs)),
    }
}

fn eval_condition(
    cond: &PlanCondition,
    s: &Target,
    x: &Target,
    env: Frame,
    st: &PlanState,
    hoisted: Option<&[PlanMatch]>,
) -> Vec<Frame> {
    match cond {
        PlanCondition::Context {
            path,
            min,
            max,
            bind,
            negated,
            is_before,
        } => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let doc = &st.docs[did.0 as usize];
            let Some((x_start, x_end)) = target_span(x, doc, did) else {
                return vec![];
            };
            let owned;
            let all: &[PlanMatch] = match hoisted {
                Some(w) => w,
                None => {
                    owned = eval_plan_path(doc, &roots, path);
                    &owned
                }
            };
            let witnesses: Vec<&PlanMatch> = all
                .iter()
                .filter(|m| {
                    let (y_start, y_end) = node_span(doc, m.node);
                    if *is_before {
                        y_end <= x_start && {
                            let d = (x_start - y_end) as u32;
                            d >= *min && d <= *max
                        }
                    } else {
                        y_start >= x_end && {
                            let d = (y_start - x_end) as u32;
                            d >= *min && d <= *max
                        }
                    }
                })
                .collect();
            if *negated {
                if witnesses.is_empty() {
                    vec![env]
                } else {
                    vec![]
                }
            } else if let Some(v) = bind {
                witnesses
                    .into_iter()
                    .map(|m| {
                        let mut e = env.clone();
                        e[*v as usize] = Some(Value::Node(did, m.node));
                        for (slot, sv) in &m.bindings {
                            e[*slot as usize] = Some(Value::Str(sv.clone()));
                        }
                        e
                    })
                    .collect()
            } else if witnesses.is_empty() {
                vec![]
            } else {
                vec![env]
            }
        }
        PlanCondition::Contains { path, negated } => {
            let Some((did, roots)) = forest_of(x, &st.docs) else {
                return vec![];
            };
            let doc = &st.docs[did.0 as usize];
            let found = !eval_plan_path(doc, &roots, path).is_empty();
            if found != *negated {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::FirstSubtree { path } => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let doc = &st.docs[did.0 as usize];
            let matches = eval_plan_path(doc, &roots, path);
            match (matches.first(), x) {
                (Some(first), Target::Node { node, .. }) if first.node == *node => {
                    vec![env]
                }
                _ => vec![],
            }
        }
        PlanCondition::Concept {
            concept,
            var,
            negated,
        } => {
            let Some(value) = resolve_value(var, &env, x, st) else {
                return vec![];
            };
            if concept.holds(&value) != *negated {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::Comparison { left, op, right } => {
            let Some(l) = resolve_value(left, &env, x, st) else {
                return vec![];
            };
            let r = match right {
                crate::plan::PlanOperand::Literal(lit) => lit.clone(),
                crate::plan::PlanOperand::Var(var) => match resolve_value(var, &env, x, st) {
                    Some(r) => r,
                    None => return vec![],
                },
            };
            if compare_values(&l, op, &r) {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::PatternRef { pattern, var } => {
            let Some(value) = env[*var as usize].as_ref() else {
                return vec![];
            };
            let index = st.refs.get(pattern).expect("ref index prebuilt");
            let is_instance = match value {
                Value::Node(did, node) => index.nodes.contains(&(*did, *node)),
                Value::Str(sv) => index.texts.contains(sv),
            };
            if is_instance {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::AttrBind { .. } | PlanCondition::Range => vec![env],
    }
}

/// Does the node satisfy a delimiter path (last step's tag test plus the
/// attribute conditions)? Mirrors the interpreted `member_matches`.
fn member_matches(doc: &Document, n: NodeId, path: &PlanPath) -> bool {
    let Some(last) = path.steps.last() else {
        return true;
    };
    if !tag_matches(doc, n, &last.tag) {
        return false;
    }
    path.attrs.iter().all(|c| check_attr(doc, n, c).is_some())
}

fn tag_matches(doc: &Document, n: NodeId, test: &PlanTag) -> bool {
    match test {
        PlanTag::Any => doc.kind(n) == NodeKind::Element,
        PlanTag::Name(name) => doc.label_str(n) == name,
        PlanTag::Regex(re) => re.is_full_match(doc.label_str(n)),
    }
}

/// Check one attribute condition; `Some(bindings)` on success.
fn check_attr(doc: &Document, n: NodeId, cond: &PlanAttr) -> Option<Vec<(SlotId, String)>> {
    let value: String = if cond.attr == "elementtext" {
        doc.text_content(n)
    } else {
        doc.attr(n, &cond.attr)?.to_string()
    };
    match &cond.matcher {
        PlanAttrMatch::Exact(pattern) => (value.trim() == pattern).then(Vec::new),
        PlanAttrMatch::Substr(pattern) => value.contains(pattern).then(Vec::new),
        PlanAttrMatch::Regvar(rv) => {
            let caps = rv.regex.captures(&value)?;
            let mut bindings = Vec::new();
            for (name, slot) in &rv.captures {
                let m = caps.name(name)?;
                if let Some(slot) = slot {
                    bindings.push((*slot, m.text.to_string()));
                }
            }
            Some(bindings)
        }
    }
}

/// Evaluate a compiled path against a forest context — the precompiled
/// mirror of `path::eval_path`, with slot bindings instead of name maps.
fn eval_plan_path(doc: &Document, roots: &[NodeId], path: &PlanPath) -> Vec<PlanMatch> {
    let mut current: Vec<NodeId> = roots.to_vec();
    for (i, step) in path.steps.iter().enumerate() {
        let mut next = Vec::new();
        for &c in &current {
            step_candidates(doc, c, step, i == 0, &mut next);
        }
        current = next;
        if current.is_empty() {
            return Vec::new();
        }
    }
    current.sort_by_key(|&n| doc.order().pre(n));
    current.dedup();
    let mut out = Vec::new();
    'node: for n in current {
        let mut bindings = Vec::new();
        for cond in &path.attrs {
            match check_attr(doc, n, cond) {
                Some(more) => bindings.extend(more),
                None => continue 'node,
            }
        }
        out.push(PlanMatch { node: n, bindings });
    }
    out
}

fn step_candidates(
    doc: &Document,
    c: NodeId,
    step: &crate::plan::PlanStep,
    first: bool,
    out: &mut Vec<NodeId>,
) {
    if first {
        if step.descend {
            for d in doc.descendants_or_self(c) {
                if tag_matches(doc, d, &step.tag) {
                    out.push(d);
                }
            }
        } else if tag_matches(doc, c, &step.tag) {
            out.push(c);
        }
    } else if step.descend {
        for d in doc.descendants(c) {
            if tag_matches(doc, d, &step.tag) {
                out.push(d);
            }
        }
    } else {
        for ch in doc.children(c) {
            if tag_matches(doc, ch, &step.tag) {
                out.push(ch);
            }
        }
    }
}
