//! Execution of compiled [`WrapperPlan`]s.
//!
//! The executor is the cheap, repeatable half of the compile-once /
//! run-many split: every per-run cost the interpreted evaluator pays —
//! regex compilation, `HashMap` environments keyed by variable name,
//! linear scans of the instance base for parents, duplicates and pattern
//! references — is replaced by slot frames (`Vec<Option<Value>>`),
//! precompiled matchers, and per-pattern indexes. A semi-naive touch on
//! the fixpoint skips rules whose inputs (parent pattern and referenced
//! patterns) have not grown since the rule last ran.
//!
//! Everything here deliberately mirrors the interpreted evaluator in
//! `eval.rs` step for step: plan execution must be *result-identical*,
//! instance order included, which the `plan_equivalence` integration
//! test asserts across the workload corpus.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use lixto_obs::RuleStats;
use lixto_tree::{Document, NodeId, NodeKind, Symbol};

use crate::concepts::compare_values;
use crate::eval::{
    forest_of, node_span, target_span, target_text, ExtractionResult, ExtractorOptions, Value,
};
use crate::instances::{DocId, Instance, InstanceBase, Target};
use crate::optimize::{FusedPath, FusedShape, FusedTag, OptRule, OptimizedPlan, PathUse, Schedule};
use crate::plan::{
    PatternId, PlanAttr, PlanAttrMatch, PlanCondition, PlanExtraction, PlanParent, PlanPath,
    PlanRule, PlanTag, PlanUrl, PlanVarRef, SlotId, WrapperPlan,
};
use crate::web::WebSource;

/// FxHash: the dedup and reference sets sit on the per-instance hot
/// path, where SipHash's per-lookup cost would eat the win on small
/// documents. Same multiply-xor scheme as `lixto_server`'s cache.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FxSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Optional execution telemetry. When attached (via
/// [`Extractor::with_probe`](crate::Extractor::with_probe)) the executor
/// times each rule invocation into the shared [`RuleStats`] and
/// accumulates document fetch / HTML parse wall time; when absent the
/// hot loop takes no clock readings at all.
pub struct ExecProbe {
    rules: Option<Arc<RuleStats>>,
    fetch_ns: Cell<u64>,
    parse_ns: Cell<u64>,
    passes: Cell<u64>,
}

impl ExecProbe {
    /// A probe recording per-rule counters into `rules` (pass `None` to
    /// time only fetch/parse).
    pub fn new(rules: Option<Arc<RuleStats>>) -> ExecProbe {
        ExecProbe {
            rules,
            fetch_ns: Cell::new(0),
            parse_ns: Cell::new(0),
            passes: Cell::new(0),
        }
    }

    /// Wall time spent fetching documents (entry + crawl) during runs
    /// observed by this probe, in nanoseconds.
    pub fn fetch_ns(&self) -> u64 {
        self.fetch_ns.get()
    }

    /// Wall time spent parsing fetched HTML, in nanoseconds.
    pub fn parse_ns(&self) -> u64 {
        self.parse_ns.get()
    }

    /// Fixpoint passes the last observed run took (1 for a single-pass
    /// schedule; the generic fixpoint needs at least one extra pass to
    /// observe quiescence).
    pub fn passes(&self) -> u64 {
        self.passes.get()
    }

    fn add(cell: &Cell<u64>, since: Instant) {
        let ns = since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        cell.set(cell.get().saturating_add(ns));
    }
}

/// A rule-local environment: one value per slot.
type Frame = Vec<Option<Value>>;

/// A path match: target node plus slot bindings from `regvar` captures.
struct PlanMatch {
    node: NodeId,
    bindings: Vec<(SlotId, String)>,
}

/// Per-pattern target index for `PatternRef` conditions: O(1) membership
/// instead of the interpreted full-base scan.
#[derive(Default)]
struct RefIndex {
    nodes: FxSet<(DocId, NodeId)>,
    texts: FxSet<String>,
}

/// Reusable buffers for the step-by-step path evaluator: the per-step
/// candidate frontier ping-pongs between two vectors instead of
/// allocating one per step.
#[derive(Default)]
struct PathScratch {
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

/// A fused path's step-tag symbols resolved against one document.
#[derive(Clone)]
enum FusedSyms {
    /// Not resolved against this document yet.
    Todo,
    /// Some `Name` step's tag is absent from the document's interner, so
    /// the path cannot match any node of this document.
    Dead,
    /// One entry per step; only `Name` steps carry a symbol.
    Live(Rc<[Option<Symbol>]>),
}

/// Per-run caches of the optimized executor: scratch for the fused
/// automaton walks, and the shared sub-matcher memo. Interior mutability
/// because path evaluation happens under shared borrows of the state.
struct OptCtx<'o> {
    opt: &'o OptimizedPlan,
    /// DFS stack scratch for [`lixto_automata::PathAutomaton::run`].
    stack: RefCell<Vec<(NodeId, u64)>>,
    /// Step-match node scratch for non-hoisted fused evaluations.
    nodes: RefCell<Vec<NodeId>>,
    /// Accepted-node scratch for the conditionless subelem fast path.
    accepted: RefCell<Vec<NodeId>>,
    /// Root-forest scratch for the fast path (a parent's child list),
    /// replacing the per-parent `forest_of` allocation.
    roots: RefCell<Vec<NodeId>>,
    /// Tag symbols per (document, fused path), resolved once per document
    /// — a fused path is typically evaluated once per parent instance,
    /// and re-hashing its tag names every evaluation is measurable on
    /// small per-parent forests. Outer index: `DocId`; inner: fused id.
    doc_syms: RefCell<Vec<Vec<FusedSyms>>>,
    /// Hoist memo: (group id, parent instance index) → step-match nodes.
    /// Valid for the whole run — documents are immutable once fetched and
    /// a parent instance's target never changes.
    memo: RefCell<HoistMemo>,
}

/// The shared-sub-matcher memo, arena-backed: match sets are appended to
/// one growing node vector and addressed by span, so memoizing a
/// sub-matcher costs no per-parent allocation (the dominant cost of an
/// `Rc<Vec>`-per-entry layout on small per-parent forests). Spans are
/// held in per-group vectors indexed directly by parent instance index —
/// parent indices are dense, so this is an array load where a hash map
/// would pay more per lookup than the memoized walk saves.
struct HoistMemo {
    arena: Vec<NodeId>,
    /// `spans[group][parent_idx]` — `SPAN_EMPTY` marks "not memoized".
    spans: Vec<Vec<(u32, u32)>>,
}

/// Sentinel for an absent [`HoistMemo`] span.
const SPAN_NONE: (u32, u32) = (u32::MAX, u32::MAX);

impl HoistMemo {
    fn new(groups: usize) -> HoistMemo {
        HoistMemo {
            arena: Vec::new(),
            spans: vec![Vec::new(); groups],
        }
    }

    /// The memoized span for `key`, as an arena range.
    fn get(&self, key: (u32, usize)) -> Option<(usize, usize)> {
        match self.spans[key.0 as usize].get(key.1) {
            Some(&(s, l)) if (s, l) != SPAN_NONE => Some((s as usize, s as usize + l as usize)),
            _ => None,
        }
    }

    /// Record that `key`'s matches occupy `start..` of the arena.
    fn seal(&mut self, key: (u32, usize), start: usize) -> (usize, usize) {
        let len = self.arena.len() - start;
        let spans = &mut self.spans[key.0 as usize];
        if spans.len() <= key.1 {
            spans.resize(key.1 + 1, SPAN_NONE);
        }
        spans[key.1] = (start as u32, len as u32);
        (start, start + len)
    }
}

impl OptCtx<'_> {
    /// The resolved tag symbols for fused path `fid` in `doc`, computing
    /// and caching them on first use. `None` means the path provably
    /// matches nothing in this document.
    fn syms_for(
        &self,
        did: DocId,
        fid: u32,
        fused: &FusedPath,
        doc: &Document,
    ) -> Option<Rc<[Option<Symbol>]>> {
        let mut tabs = self.doc_syms.borrow_mut();
        while tabs.len() <= did.0 as usize {
            tabs.push(vec![FusedSyms::Todo; self.opt.fused.len()]);
        }
        let slot = &mut tabs[did.0 as usize][fid as usize];
        if matches!(slot, FusedSyms::Todo) {
            let mut syms = Vec::with_capacity(fused.tests.len());
            let mut dead = false;
            for test in &fused.tests {
                syms.push(match test {
                    FusedTag::Name(name) => match doc.interner().get(name) {
                        Some(sym) => Some(sym),
                        None => {
                            dead = true;
                            break;
                        }
                    },
                    FusedTag::Any | FusedTag::Regex(_) => None,
                });
            }
            *slot = if dead {
                FusedSyms::Dead
            } else {
                FusedSyms::Live(syms.into())
            };
        }
        match slot {
            FusedSyms::Live(rc) => Some(rc.clone()),
            _ => None,
        }
    }
}

struct PlanState<'p> {
    probe: Option<&'p ExecProbe>,
    opt: Option<OptCtx<'p>>,
    /// URLs that failed to fetch (after the single immediate retry) —
    /// pinned for the rest of the run so results cannot depend on how
    /// many passes re-visit the fetching rule.
    failed: FxSet<String>,
    scratch: RefCell<PathScratch>,
    base: InstanceBase,
    docs: Vec<Document>,
    doc_urls: Vec<String>,
    url_ids: HashMap<String, DocId>,
    /// Instance indices per pattern id, in insertion order — the
    /// indexed replacement for `InstanceBase::of_pattern`.
    by_pattern: Vec<Vec<usize>>,
    /// Dedup set replacing the interpreted `add` linear scan.
    dedup: FxSet<(PatternId, Option<usize>, Target)>,
    /// Per-pattern instance counts, used as input generations by the
    /// semi-naive rule-skipping.
    gens: Vec<u64>,
    /// Target indexes for patterns referenced by `PatternRef`.
    refs: Vec<Option<RefIndex>>,
    /// Pattern names in first-extraction order.
    name_order: Vec<String>,
    /// One shared `Arc` per pattern name — instances clone the Arc, not
    /// the string.
    pattern_names: Vec<Arc<str>>,
    seen: Vec<bool>,
    /// Producing rule index per instance, parallel to `base.instances` —
    /// the derivation trace the result store persists as provenance.
    rule_trace: Vec<u32>,
}

impl PlanState<'_> {
    fn fetch(&mut self, web: &dyn WebSource, url: &str, cap: usize) -> Option<DocId> {
        if let Some(&id) = self.url_ids.get(url) {
            return Some(id);
        }
        if self.failed.contains(url) {
            return None;
        }
        if self.docs.len() >= cap {
            return None;
        }
        let fetch_started = self.probe.map(|_| Instant::now());
        // Retry a failed fetch once, immediately; a second failure pins
        // the URL for the rest of the run. This makes results independent
        // of how many passes re-visit the fetching rule, which both the
        // single-pass schedule and the interpreted evaluator rely on.
        let html = web.fetch(url).or_else(|| web.fetch(url));
        if let (Some(probe), Some(started)) = (self.probe, fetch_started) {
            ExecProbe::add(&probe.fetch_ns, started);
        }
        let Some(html) = html else {
            self.failed.insert(url.to_string());
            return None;
        };
        let parse_started = self.probe.map(|_| Instant::now());
        let doc = lixto_html::parse(&html);
        if let (Some(probe), Some(started)) = (self.probe, parse_started) {
            ExecProbe::add(&probe.parse_ns, started);
        }
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        self.doc_urls.push(url.to_string());
        self.url_ids.insert(url.to_string(), id);
        Some(id)
    }

    /// Add an instance unless an identical one exists; true when new.
    fn add(
        &mut self,
        plan: &WrapperPlan,
        pattern: PatternId,
        parent: Option<usize>,
        target: Target,
        rule: u32,
    ) -> bool {
        if !self.dedup.insert((pattern, parent, target.clone())) {
            return false;
        }
        self.push_instance(plan, pattern, parent, target, rule);
        true
    }

    /// Add an instance whose dedup key is statically proven fresh — a
    /// sole-producer rule under a single-pass schedule emitting distinct
    /// nodes (see [`OptRule::sole_producer`]). Skips the dedup set; debug
    /// builds still maintain it and assert the proof.
    fn add_unique(
        &mut self,
        plan: &WrapperPlan,
        pattern: PatternId,
        parent: Option<usize>,
        target: Target,
        rule: u32,
    ) {
        #[cfg(debug_assertions)]
        {
            let fresh = self.dedup.insert((pattern, parent, target.clone()));
            debug_assert!(fresh, "sole-producer uniqueness proof violated");
        }
        self.push_instance(plan, pattern, parent, target, rule);
    }

    fn push_instance(
        &mut self,
        plan: &WrapperPlan,
        pattern: PatternId,
        parent: Option<usize>,
        target: Target,
        rule: u32,
    ) {
        let index = self.base.instances.len();
        if let Some(ref_index) = self.refs[pattern as usize].as_mut() {
            match &target {
                Target::Node { doc, node } => {
                    ref_index.nodes.insert((*doc, *node));
                }
                Target::Text(text) => {
                    ref_index.texts.insert(text.clone());
                }
                Target::NodeSeq { .. } => {}
            }
        }
        self.base.instances.push(Instance {
            pattern: self.pattern_names[pattern as usize].clone(),
            parent,
            target,
        });
        self.by_pattern[pattern as usize].push(index);
        self.rule_trace.push(rule);
        self.gens[pattern as usize] += 1;
        if !self.seen[pattern as usize] {
            self.seen[pattern as usize] = true;
            self.name_order
                .push(plan.patterns()[pattern as usize].clone());
        }
    }

    /// Evaluate an element-path against a forest. With an optimized plan
    /// and a fused form for this path, runs the precompiled
    /// [`PathAutomaton`] in a single downward traversal (consulting the
    /// shared-sub-matcher memo when the path belongs to a hoist group and
    /// a parent instance is known); otherwise falls back to the generic
    /// step-by-step evaluator.
    fn eval_path(
        &self,
        did: DocId,
        roots: &[NodeId],
        path: &PlanPath,
        pu: Option<PathUse>,
        parent_idx: Option<usize>,
    ) -> Vec<PlanMatch> {
        let doc = &self.docs[did.0 as usize];
        if let (Some(ctx), Some(pu)) = (self.opt.as_ref(), pu) {
            let fused = &ctx.opt.fused[pu.fused as usize];
            let Some(syms) = ctx.syms_for(did, pu.fused, fused, doc) else {
                return Vec::new();
            };
            if let (Some(gid), Some(pi)) = (pu.group, parent_idx) {
                let key = (gid, pi);
                if let Some((s, e)) = ctx.memo.borrow().get(key) {
                    let memo = ctx.memo.borrow();
                    return attr_matches(doc, &memo.arena[s..e], &fused.attrs);
                }
                let mut memo = ctx.memo.borrow_mut();
                let start = memo.arena.len();
                run_fused(ctx, fused, &syms, doc, roots, &mut memo.arena);
                let (s, e) = memo.seal(key, start);
                return attr_matches(doc, &memo.arena[s..e], &fused.attrs);
            }
            let mut nodes = ctx.nodes.borrow_mut();
            nodes.clear();
            run_fused(ctx, fused, &syms, doc, roots, &mut nodes);
            return attr_matches(doc, &nodes, &fused.attrs);
        }
        eval_plan_path(doc, roots, path, &mut self.scratch.borrow_mut())
    }
}

/// Run a fused path matcher over a forest, collecting step-matching
/// nodes in document order. `syms` is the path's per-document symbol
/// table from [`OptCtx::syms_for`]. Single-step shapes scan the
/// document's preorder arena directly; only general skeletons pay for
/// the automaton's DFS.
fn run_fused(
    ctx: &OptCtx,
    fused: &FusedPath,
    syms: &[Option<Symbol>],
    doc: &Document,
    roots: &[NodeId],
    out: &mut Vec<NodeId>,
) {
    let test = |i: u32, n: NodeId| match &fused.tests[i as usize] {
        FusedTag::Any => doc.kind(n) == NodeKind::Element,
        FusedTag::Name(_) => Some(doc.label(n)) == syms[i as usize],
        FusedTag::Regex(re) => re.is_full_match(doc.label_str(n)),
    };
    match fused.shape {
        FusedShape::ChildOne => {
            for &r in roots {
                if test(0, r) {
                    out.push(r);
                }
            }
        }
        FusedShape::DescendOne => {
            for &r in roots {
                for n in doc.descendants_or_self(r) {
                    if test(0, n) {
                        out.push(n);
                    }
                }
            }
        }
        FusedShape::Auto => {
            let mut stack = ctx.stack.borrow_mut();
            fused
                .auto
                .run(doc, roots, test, |n| out.push(n), &mut stack);
        }
    }
}

/// Apply a path's attribute conditions to step-matching nodes, exactly as
/// the tail of `eval_plan_path` does.
fn attr_matches(doc: &Document, nodes: &[NodeId], attrs: &[PlanAttr]) -> Vec<PlanMatch> {
    let mut out = Vec::new();
    'node: for &n in nodes {
        let mut bindings = Vec::new();
        for cond in attrs {
            match check_attr(doc, n, cond) {
                Some(more) => bindings.extend(more),
                None => continue 'node,
            }
        }
        out.push(PlanMatch { node: n, bindings });
    }
    out
}

/// Input generations a rule saw when it last ran; the rule is skipped
/// while they are unchanged (its output is a function of parent and
/// referenced pattern instances only).
struct RuleMark {
    parent_gen: u64,
    ref_gens: Vec<u64>,
}

/// Run `plan` to fixpoint over `web` — the compiled counterpart of the
/// interpreted `Extractor::run_interpreted`. This is the *unoptimized*
/// plan executor: the baseline the optimizer's equivalence tests and
/// benchmarks compare against.
pub(crate) fn execute(
    plan: &WrapperPlan,
    web: &dyn WebSource,
    options: &ExtractorOptions,
    probe: Option<&ExecProbe>,
) -> ExtractionResult {
    run(plan, None, web, options, probe)
}

/// Run an optimized plan: the same evaluation core, with the schedule,
/// fused path automata, hoist memo and condition orderings of the
/// [`OptimizedPlan`] applied. Every transformation is
/// observation-equivalent, so the result is byte-identical to
/// [`execute`] on the underlying plan.
pub(crate) fn execute_optimized(
    opt: &OptimizedPlan,
    web: &dyn WebSource,
    options: &ExtractorOptions,
    probe: Option<&ExecProbe>,
) -> ExtractionResult {
    run(opt.plan(), Some(opt), web, options, probe)
}

fn run(
    plan: &WrapperPlan,
    opt: Option<&OptimizedPlan>,
    web: &dyn WebSource,
    options: &ExtractorOptions,
    probe: Option<&ExecProbe>,
) -> ExtractionResult {
    let n = plan.patterns().len();
    let mut refs: Vec<Option<RefIndex>> = (0..plan.patterns().len()).map(|_| None).collect();
    for rule in plan.rules() {
        for &r in &rule.refs {
            refs[r as usize].get_or_insert_with(RefIndex::default);
        }
    }
    let rule_stats = probe.and_then(|p| p.rules.as_deref());
    let mut st = PlanState {
        probe,
        opt: opt.map(|o| OptCtx {
            opt: o,
            stack: RefCell::new(Vec::new()),
            nodes: RefCell::new(Vec::new()),
            accepted: RefCell::new(Vec::new()),
            roots: RefCell::new(Vec::new()),
            doc_syms: RefCell::new(Vec::new()),
            memo: RefCell::new(HoistMemo::new(o.report().hoist_groups)),
        }),
        failed: FxSet::default(),
        scratch: RefCell::new(PathScratch::default()),
        base: InstanceBase::default(),
        docs: Vec::new(),
        doc_urls: Vec::new(),
        url_ids: HashMap::new(),
        by_pattern: vec![Vec::new(); n],
        dedup: FxSet::default(),
        gens: vec![0; n],
        refs,
        name_order: Vec::new(),
        pattern_names: plan.patterns().iter().map(|p| p.as_str().into()).collect(),
        seen: vec![false; n],
        rule_trace: Vec::new(),
    };
    // A single-pass schedule is a proof that one pass in source order
    // reaches the fixpoint (every dependency edge points strictly
    // forward and fetch failures are pinned), so the generic loop and
    // its per-rule marks bookkeeping are skipped entirely.
    let single_pass = opt.is_some_and(|o| o.schedule() == Schedule::SinglePass);
    let mut marks: Vec<Option<RuleMark>> = (0..plan.rules().len()).map(|_| None).collect();
    let mut passes: u64 = 0;
    loop {
        passes += 1;
        let mut changed = false;
        for (ri, rule) in plan.rules().iter().enumerate() {
            if !single_pass {
                if can_skip(rule, &marks[ri], &st) {
                    continue;
                }
                marks[ri] = Some(RuleMark {
                    parent_gen: match &rule.parent {
                        PlanParent::Pattern(p) => st.gens[*p as usize],
                        PlanParent::Document(_) => 0,
                    },
                    ref_gens: rule.refs.iter().map(|&r| st.gens[r as usize]).collect(),
                });
            }
            let ori = opt.map(|o| &o.rules[ri]);
            let rule_started = rule_stats.map(|_| Instant::now());
            let added = apply_rule(plan, rule, ri as u32, &mut st, web, options, ori);
            if let (Some(stats), Some(started)) = (rule_stats, rule_started) {
                let ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                stats.record(ri, added as u64, ns);
            }
            changed |= added > 0;
            if st.base.len() >= options.max_instances {
                break;
            }
        }
        if single_pass || !changed || st.base.len() >= options.max_instances {
            break;
        }
    }
    if let Some(probe) = probe {
        probe.passes.set(passes);
    }
    ExtractionResult {
        base: st.base,
        docs: st.docs,
        doc_urls: st.doc_urls,
        pattern_names: st.name_order,
        rule_trace: st.rule_trace,
    }
}

/// A rule can be skipped when it has run before and nothing it reads has
/// grown since. Entry rules and crawl rules always re-run: they fetch,
/// and a URL may come into range only on a later pass (e.g. once a slot
/// binds it); failed fetches themselves are retried once then pinned by
/// [`PlanState::fetch`], so re-running cannot change their outcome.
fn can_skip(rule: &PlanRule, mark: &Option<RuleMark>, st: &PlanState) -> bool {
    let Some(mark) = mark else { return false };
    let PlanParent::Pattern(parent) = &rule.parent else {
        return false;
    };
    if matches!(rule.extraction, PlanExtraction::Document(_)) {
        return false;
    }
    st.gens[*parent as usize] == mark.parent_gen
        && rule
            .refs
            .iter()
            .zip(&mark.ref_gens)
            .all(|(&r, &g)| st.gens[r as usize] == g)
}

/// Apply one rule across every parent instance; returns the number of
/// new instances added (the executor's `changed` signal and the probe's
/// per-invocation match count).
fn apply_rule(
    plan: &WrapperPlan,
    rule: &PlanRule,
    rule_index: u32,
    st: &mut PlanState<'_>,
    web: &dyn WebSource,
    options: &ExtractorOptions,
    ori: Option<&OptRule>,
) -> usize {
    let parents: Vec<(Option<usize>, Target)> = match &rule.parent {
        PlanParent::Pattern(pid) => st.by_pattern[*pid as usize]
            .iter()
            .map(|&i| (Some(i), st.base.instances[i].target.clone()))
            .collect(),
        PlanParent::Document(url) => match st.fetch(web, url, options.max_documents) {
            Some(did) => {
                let root = st.docs[did.0 as usize].root();
                vec![(
                    None,
                    Target::Node {
                        doc: did,
                        node: root,
                    },
                )]
            }
            None => vec![],
        },
    };

    // Fast path: a fused subelem rule with no conditions. Every
    // candidate is trivially accepted (empty Φ holds; subsq maximality
    // does not apply), so the fused matches feed `add` directly — no
    // candidate frames, no witness vectors, no acceptance buffer. The
    // `range` window is the same index filter the generic path applies.
    // `Range` markers are no-ops in `conditions_hold` (the window is
    // applied after acceptance, below and in the fast path alike), so
    // they don't disqualify a rule from direct application.
    let trivial_conditions = rule
        .conditions
        .iter()
        .all(|c| matches!(c, PlanCondition::Range));
    if trivial_conditions && matches!(rule.extraction, PlanExtraction::Subelem(_)) {
        if let Some(pu) = ext_pu(ori) {
            let sole = ori.is_some_and(|r| r.sole_producer);
            return apply_simple_subelem(plan, rule, rule_index, st, parents, pu, sole);
        }
    }

    let mut added = 0;
    for (parent_idx, s_target) in parents {
        let candidates = extract(rule, &s_target, st, web, options, ori, parent_idx);
        // Context-condition witnesses are per (condition, parent):
        // hoisted exactly as the interpreted evaluator hoists them.
        let witnesses: Vec<Option<Vec<PlanMatch>>> = rule
            .conditions
            .iter()
            .enumerate()
            .map(|(ci, c)| match c {
                PlanCondition::Context { path, .. } => {
                    forest_of(&s_target, &st.docs).map(|(did, roots)| {
                        st.eval_path(did, &roots, path, cond_pu(ori, ci), parent_idx)
                    })
                }
                _ => None,
            })
            .collect();
        let mut accepted: Vec<Target> = Vec::new();
        for (target, frame) in candidates {
            if conditions_hold(
                rule, &s_target, &target, frame, st, &witnesses, ori, parent_idx,
            ) {
                accepted.push(target);
            }
        }
        // Maximality for subsq, mirrored from the interpreter.
        if matches!(rule.extraction, PlanExtraction::Subsq { .. }) {
            let snapshot = accepted.clone();
            accepted.retain(|t| {
                let Target::NodeSeq { nodes, .. } = t else {
                    return true;
                };
                !snapshot.iter().any(|o| {
                    if let Target::NodeSeq { nodes: onodes, .. } = o {
                        onodes.len() > nodes.len() && nodes.iter().all(|n| onodes.contains(n))
                    } else {
                        false
                    }
                })
            });
        }
        if let Some((from, to)) = rule.range {
            accepted = accepted
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i + 1 >= from && *i < to)
                .map(|(_, t)| t)
                .collect();
        }
        for target in accepted {
            if st.add(plan, rule.pattern, parent_idx, target, rule_index) {
                added += 1;
            }
        }
    }
    added
}

/// Apply a conditionless subelem rule through its fused path: per
/// parent, the step-matching nodes (shared via the hoist memo when the
/// path belongs to a group) are attr-filtered and added in document
/// order. Observation-equivalent to the generic `apply_rule` body — it
/// produces the same targets in the same order — but allocation-free per
/// parent.
#[allow(clippy::too_many_arguments)]
fn apply_simple_subelem(
    plan: &WrapperPlan,
    rule: &PlanRule,
    rule_index: u32,
    st: &mut PlanState<'_>,
    parents: Vec<(Option<usize>, Target)>,
    pu: PathUse,
    sole: bool,
) -> usize {
    let (from, to) = rule.range.unwrap_or((1, usize::MAX));
    // Dedup keys are provably fresh when the sole producer of a pattern
    // runs exactly once (single pass) over distinct parents, emitting
    // distinct nodes per parent.
    let unique = sole
        && st
            .opt
            .as_ref()
            .is_some_and(|c| c.opt.schedule() == Schedule::SinglePass);
    let mut added = 0;
    for (parent_idx, s_target) in parents {
        let ctx = st.opt.as_ref().expect("fast path runs under an OptCtx");
        // The target's forest, without `forest_of`'s per-parent Vec:
        // a node target's roots are its children, collected into a
        // reused buffer.
        let mut roots = ctx.roots.take();
        roots.clear();
        let did = match &s_target {
            Target::Node { doc, node } => {
                roots.extend(st.docs[doc.0 as usize].children(*node));
                *doc
            }
            Target::NodeSeq { doc, nodes } => {
                roots.extend_from_slice(nodes);
                *doc
            }
            Target::Text(_) => continue,
        };
        let fused = &ctx.opt.fused[pu.fused as usize];
        let doc = &st.docs[did.0 as usize];
        let mut accepted = ctx.accepted.take();
        accepted.clear();
        if let Some(syms) = ctx.syms_for(did, pu.fused, fused, doc) {
            // Step-matching nodes: via the arena memo for hoist groups,
            // a reused scratch vector otherwise.
            let memo_key = match (pu.group, parent_idx) {
                (Some(gid), Some(pi)) => Some((gid, pi)),
                _ => None,
            };
            let mut scratch = Vec::new();
            let (memo, span) = match memo_key {
                Some(key) => {
                    let span = ctx.memo.borrow().get(key);
                    match span {
                        Some(span) => (ctx.memo.borrow(), span),
                        None => {
                            let mut memo = ctx.memo.borrow_mut();
                            let start = memo.arena.len();
                            run_fused(ctx, fused, &syms, doc, &roots, &mut memo.arena);
                            let span = memo.seal(key, start);
                            drop(memo);
                            (ctx.memo.borrow(), span)
                        }
                    }
                }
                None => {
                    scratch = ctx.nodes.take();
                    scratch.clear();
                    run_fused(ctx, fused, &syms, doc, &roots, &mut scratch);
                    (ctx.memo.borrow(), (0, 0))
                }
            };
            let step_matches: &[NodeId] = if memo_key.is_some() {
                &memo.arena[span.0..span.1]
            } else {
                &scratch
            };
            'node: for &n in step_matches {
                for cond in &fused.attrs {
                    if check_attr(doc, n, cond).is_none() {
                        continue 'node;
                    }
                }
                accepted.push(n);
            }
            drop(memo);
            if memo_key.is_none() {
                ctx.nodes.replace(scratch);
            }
        }
        ctx.roots.replace(roots);
        for (i, &node) in accepted.iter().enumerate() {
            if i + 1 < from || i >= to {
                continue;
            }
            let target = Target::Node { doc: did, node };
            if unique {
                st.add_unique(plan, rule.pattern, parent_idx, target, rule_index);
                added += 1;
            } else if st.add(plan, rule.pattern, parent_idx, target, rule_index) {
                added += 1;
            }
        }
        st.opt
            .as_ref()
            .expect("fast path runs under an OptCtx")
            .accepted
            .replace(accepted);
    }
    added
}

/// The optimized form of a rule's extraction path, when one exists.
fn ext_pu(ori: Option<&OptRule>) -> Option<PathUse> {
    ori.and_then(|r| r.extraction_path)
}

/// The optimized form of a rule's `ci`-th condition path, when one exists.
fn cond_pu(ori: Option<&OptRule>, ci: usize) -> Option<PathUse> {
    ori.and_then(|r| r.cond_paths[ci])
}

/// Apply the extraction atom, yielding (target, initial frame) pairs.
fn extract(
    rule: &PlanRule,
    s: &Target,
    st: &mut PlanState,
    web: &dyn WebSource,
    options: &ExtractorOptions,
    ori: Option<&OptRule>,
    parent_idx: Option<usize>,
) -> Vec<(Target, Frame)> {
    let frame = || vec![None; rule.slots];
    match &rule.extraction {
        PlanExtraction::Specialize => vec![(s.clone(), frame())],
        PlanExtraction::Subelem(path) => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            st.eval_path(did, &roots, path, ext_pu(ori), parent_idx)
                .into_iter()
                .map(|m| {
                    let mut env = frame();
                    for (slot, value) in m.bindings {
                        env[slot as usize] = Some(Value::Str(value));
                    }
                    (
                        Target::Node {
                            doc: did,
                            node: m.node,
                        },
                        env,
                    )
                })
                .collect()
        }
        PlanExtraction::Subsq {
            context,
            start,
            end,
        } => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let contexts = st.eval_path(did, &roots, context, ext_pu(ori), parent_idx);
            let doc = &st.docs[did.0 as usize];
            let mut out = Vec::new();
            for ctx in contexts {
                let kids: Vec<NodeId> = doc.children(ctx.node).collect();
                for i in 0..kids.len() {
                    if !member_matches(doc, kids[i], start) {
                        continue;
                    }
                    for j in i..kids.len() {
                        if member_matches(doc, kids[j], end) {
                            out.push((
                                Target::NodeSeq {
                                    doc: did,
                                    nodes: kids[i..=j].to_vec(),
                                },
                                frame(),
                            ));
                        }
                    }
                }
            }
            out
        }
        PlanExtraction::Subtext(rv) => {
            // A pattern that can only match empty strings yields nothing
            // (empty whole-matches are discarded below) — skip the scan,
            // which otherwise costs a VM run per char position.
            if rv.regex.matches_only_empty() {
                return Vec::new();
            }
            let text = target_text(s, &st.docs);
            let mut out = Vec::new();
            for caps in rv.regex.captures_iter(&text) {
                let Some(whole) = caps.get(0) else { continue };
                if whole.text.is_empty() {
                    continue;
                }
                let mut env = frame();
                let mut ok = true;
                for (name, slot) in &rv.captures {
                    match caps.name(name) {
                        Some(m) => {
                            if let Some(slot) = slot {
                                env[*slot as usize] = Some(Value::Str(m.text.to_string()));
                            }
                        }
                        None => ok = false,
                    }
                }
                if ok {
                    out.push((Target::Text(whole.text.to_string()), env));
                }
            }
            out
        }
        PlanExtraction::Subatt(attr) => match s {
            Target::Node { doc, node } => {
                let d = &st.docs[doc.0 as usize];
                match d.attr(*node, attr) {
                    Some(v) => vec![(Target::Text(v.to_string()), frame())],
                    None => vec![],
                }
            }
            _ => vec![],
        },
        PlanExtraction::Document(url) => {
            let url = match url {
                PlanUrl::Const(u) => Some(u.clone()),
                PlanUrl::Slot(slot) => {
                    // Resolve from attrbind conditions against S, in
                    // condition order (later bindings overwrite) — the
                    // interpreted evaluator's pre-scan.
                    let mut resolved: Option<String> = None;
                    for c in &rule.conditions {
                        if let PlanCondition::AttrBind { attr, var } = c {
                            if var == slot {
                                if let Target::Node { doc, node } = s {
                                    let d = &st.docs[doc.0 as usize];
                                    if let Some(val) = d.attr(*node, attr) {
                                        resolved = Some(val.to_string());
                                    }
                                }
                            }
                        }
                    }
                    resolved
                }
            };
            let Some(url) = url else { return vec![] };
            match st.fetch(web, &url, options.max_documents) {
                Some(did) => {
                    let root = st.docs[did.0 as usize].root();
                    vec![(
                        Target::Node {
                            doc: did,
                            node: root,
                        },
                        frame(),
                    )]
                }
                None => vec![],
            }
        }
    }
}

/// Evaluate Φ(S, X) with environment-set semantics over slot frames.
/// With an optimized rule, conditions run in its reordered sequence
/// (cheapest pure filters first within binder-free segments) — the
/// permutation is applied on the fly, never materialized.
#[allow(clippy::too_many_arguments)]
fn conditions_hold(
    rule: &PlanRule,
    s: &Target,
    x: &Target,
    initial: Frame,
    st: &PlanState,
    witnesses: &[Option<Vec<PlanMatch>>],
    ori: Option<&OptRule>,
    parent_idx: Option<usize>,
) -> bool {
    let order = ori.and_then(|r| r.cond_order.as_deref());
    let mut envs = vec![initial];
    for k in 0..rule.conditions.len() {
        let ci = order.map_or(k, |o| o[k]);
        let cond = &rule.conditions[ci];
        match cond {
            PlanCondition::Range => continue,
            PlanCondition::AttrBind { attr, var } => {
                if let Target::Node { doc, node } = s {
                    let d = &st.docs[doc.0 as usize];
                    if let Some(v) = d.attr(*node, attr) {
                        for env in &mut envs {
                            env[*var as usize] = Some(Value::Str(v.to_string()));
                        }
                    } else {
                        return false;
                    }
                }
                continue;
            }
            _ => {}
        }
        let mut next: Vec<Frame> = Vec::new();
        for env in envs {
            next.extend(eval_condition(
                cond,
                s,
                x,
                env,
                st,
                witnesses[ci].as_deref(),
                cond_pu(ori, ci),
                parent_idx,
            ));
        }
        if next.is_empty() {
            return false;
        }
        envs = next;
    }
    true
}

/// Resolve a condition's value reference to a string, mirroring the
/// interpreted resolution (slot values, node text, `X` fallback).
fn resolve_value(var: &PlanVarRef, env: &Frame, x: &Target, st: &PlanState) -> Option<String> {
    let slot_value = |slot: SlotId| -> Option<String> {
        match env[slot as usize].as_ref()? {
            Value::Str(sv) => Some(sv.clone()),
            Value::Node(did, node) => Some(st.docs[did.0 as usize].text_content(*node)),
        }
    };
    match var {
        PlanVarRef::Slot(slot) => slot_value(*slot),
        PlanVarRef::SlotOrTarget(slot) => {
            slot_value(*slot).or_else(|| Some(target_text(x, &st.docs)))
        }
        PlanVarRef::TargetText => Some(target_text(x, &st.docs)),
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_condition(
    cond: &PlanCondition,
    s: &Target,
    x: &Target,
    env: Frame,
    st: &PlanState,
    hoisted: Option<&[PlanMatch]>,
    pu: Option<PathUse>,
    parent_idx: Option<usize>,
) -> Vec<Frame> {
    match cond {
        PlanCondition::Context {
            path,
            min,
            max,
            bind,
            negated,
            is_before,
        } => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let doc = &st.docs[did.0 as usize];
            let Some((x_start, x_end)) = target_span(x, doc, did) else {
                return vec![];
            };
            let owned;
            let all: &[PlanMatch] = match hoisted {
                Some(w) => w,
                None => {
                    owned = st.eval_path(did, &roots, path, pu, parent_idx);
                    &owned
                }
            };
            let witnesses: Vec<&PlanMatch> = all
                .iter()
                .filter(|m| {
                    let (y_start, y_end) = node_span(doc, m.node);
                    if *is_before {
                        y_end <= x_start && {
                            let d = (x_start - y_end) as u32;
                            d >= *min && d <= *max
                        }
                    } else {
                        y_start >= x_end && {
                            let d = (y_start - x_end) as u32;
                            d >= *min && d <= *max
                        }
                    }
                })
                .collect();
            if *negated {
                if witnesses.is_empty() {
                    vec![env]
                } else {
                    vec![]
                }
            } else if let Some(v) = bind {
                witnesses
                    .into_iter()
                    .map(|m| {
                        let mut e = env.clone();
                        e[*v as usize] = Some(Value::Node(did, m.node));
                        for (slot, sv) in &m.bindings {
                            e[*slot as usize] = Some(Value::Str(sv.clone()));
                        }
                        e
                    })
                    .collect()
            } else if witnesses.is_empty() {
                vec![]
            } else {
                vec![env]
            }
        }
        PlanCondition::Contains { path, negated } => {
            let Some((did, roots)) = forest_of(x, &st.docs) else {
                return vec![];
            };
            // `contains` walks the candidate X, not the parent S, so the
            // hoist memo (keyed by parent instance) never applies here.
            let found = !st.eval_path(did, &roots, path, pu, None).is_empty();
            if found != *negated {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::FirstSubtree { path } => {
            let Some((did, roots)) = forest_of(s, &st.docs) else {
                return vec![];
            };
            let matches = st.eval_path(did, &roots, path, pu, parent_idx);
            match (matches.first(), x) {
                (Some(first), Target::Node { node, .. }) if first.node == *node => {
                    vec![env]
                }
                _ => vec![],
            }
        }
        PlanCondition::Concept {
            concept,
            var,
            negated,
        } => {
            let Some(value) = resolve_value(var, &env, x, st) else {
                return vec![];
            };
            if concept.holds(&value) != *negated {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::Comparison { left, op, right } => {
            let Some(l) = resolve_value(left, &env, x, st) else {
                return vec![];
            };
            let r = match right {
                crate::plan::PlanOperand::Literal(lit) => lit.clone(),
                crate::plan::PlanOperand::Var(var) => match resolve_value(var, &env, x, st) {
                    Some(r) => r,
                    None => return vec![],
                },
            };
            if compare_values(&l, op, &r) {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::PatternRef { pattern, var } => {
            let Some(value) = env[*var as usize].as_ref() else {
                return vec![];
            };
            let index = st.refs[*pattern as usize]
                .as_ref()
                .expect("ref index prebuilt");
            let is_instance = match value {
                Value::Node(did, node) => index.nodes.contains(&(*did, *node)),
                Value::Str(sv) => index.texts.contains(sv),
            };
            if is_instance {
                vec![env]
            } else {
                vec![]
            }
        }
        PlanCondition::AttrBind { .. } | PlanCondition::Range => vec![env],
    }
}

/// Does the node satisfy a delimiter path (last step's tag test plus the
/// attribute conditions)? Mirrors the interpreted `member_matches`.
fn member_matches(doc: &Document, n: NodeId, path: &PlanPath) -> bool {
    let Some(last) = path.steps.last() else {
        return true;
    };
    if !tag_matches(doc, n, &last.tag) {
        return false;
    }
    path.attrs.iter().all(|c| check_attr(doc, n, c).is_some())
}

fn tag_matches(doc: &Document, n: NodeId, test: &PlanTag) -> bool {
    match test {
        PlanTag::Any => doc.kind(n) == NodeKind::Element,
        PlanTag::Name(name) => doc.label_str(n) == name,
        PlanTag::Regex(re) => re.is_full_match(doc.label_str(n)),
    }
}

/// Check one attribute condition; `Some(bindings)` on success.
fn check_attr(doc: &Document, n: NodeId, cond: &PlanAttr) -> Option<Vec<(SlotId, String)>> {
    // Borrow attribute values straight from the document; only
    // `elementtext` needs an owned concatenation.
    let text_storage;
    let value: &str = if cond.attr == "elementtext" {
        text_storage = doc.text_content(n);
        &text_storage
    } else {
        doc.attr(n, &cond.attr)?
    };
    match &cond.matcher {
        PlanAttrMatch::Exact(pattern) => (value.trim() == pattern).then(Vec::new),
        PlanAttrMatch::Substr(pattern) => value.contains(pattern).then(Vec::new),
        PlanAttrMatch::Regvar(rv) => {
            let caps = rv.regex.captures(value)?;
            let mut bindings = Vec::new();
            for (name, slot) in &rv.captures {
                let m = caps.name(name)?;
                if let Some(slot) = slot {
                    bindings.push((*slot, m.text.to_string()));
                }
            }
            Some(bindings)
        }
    }
}

/// Evaluate a compiled path against a forest context — the precompiled
/// mirror of `path::eval_path`, with slot bindings instead of name maps.
/// The per-step candidate frontiers ping-pong between the two scratch
/// vectors, so a whole run allocates no per-step buffers after warm-up.
fn eval_plan_path(
    doc: &Document,
    roots: &[NodeId],
    path: &PlanPath,
    scratch: &mut PathScratch,
) -> Vec<PlanMatch> {
    let PathScratch { frontier, next } = scratch;
    frontier.clear();
    frontier.extend_from_slice(roots);
    for (i, step) in path.steps.iter().enumerate() {
        next.clear();
        for &c in frontier.iter() {
            step_candidates(doc, c, step, i == 0, next);
        }
        std::mem::swap(frontier, next);
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    frontier.sort_by_key(|&n| doc.order().pre(n));
    frontier.dedup();
    attr_matches(doc, frontier, &path.attrs)
}

fn step_candidates(
    doc: &Document,
    c: NodeId,
    step: &crate::plan::PlanStep,
    first: bool,
    out: &mut Vec<NodeId>,
) {
    if first {
        if step.descend {
            for d in doc.descendants_or_self(c) {
                if tag_matches(doc, d, &step.tag) {
                    out.push(d);
                }
            }
        } else if tag_matches(doc, c, &step.tag) {
            out.push(c);
        }
    } else if step.descend {
        for d in doc.descendants(c) {
            if tag_matches(doc, d, &step.tag) {
                out.push(d);
            }
        }
    } else {
        for ch in doc.children(c) {
            if tag_matches(doc, ch, &step.tag) {
                out.push(ch);
            }
        }
    }
}
