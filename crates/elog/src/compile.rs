//! Compilation of [`ElogProgram`]s into [`WrapperPlan`]s.
//!
//! Compilation interns every pattern and variable name into dense ids,
//! resolves parent-pattern edges, precompiles every regex, bakes concept
//! definitions in, and performs the static checks the interpreted
//! evaluator only discovers as silent empty results at run time: unknown
//! parent patterns, variables referenced before anything binds them,
//! dangling concept references, malformed regexes, and non-constant
//! entry URLs all become structured [`CompileError`]s — surfaced at
//! deploy time, once, instead of per request.

use crate::ast::{
    AttrCond, AttrMode, Condition, ElementPath, ElogProgram, ElogRule, Extraction, ParentSpec,
    TagTest, UrlExpr,
};
use crate::concepts::{Concept, ConceptRegistry};
use crate::path::compile_regvar;
use crate::plan::{
    CompileError, PatternId, PlanAttr, PlanAttrMatch, PlanConcept, PlanCondition, PlanExtraction,
    PlanOperand, PlanParent, PlanPath, PlanRegvar, PlanRule, PlanStep, PlanTag, PlanUrl,
    PlanVarRef, SlotId, WrapperPlan,
};

use lixto_regexlite::Regex;

/// Rule-local variable interner: names become dense slot ids; `bound`
/// tracks whether anything up to the current compile position binds the
/// slot (a slot can be interned before it is bound — a crawl rule's URL
/// variable is interned at the extraction atom but bound only by its
/// `attrbind` condition).
struct Slots {
    names: Vec<String>,
    bound: Vec<bool>,
}

impl Slots {
    fn new() -> Slots {
        Slots {
            names: Vec::new(),
            bound: Vec::new(),
        }
    }

    /// Intern `name` and mark it bound from here on.
    fn bind(&mut self, name: &str) -> SlotId {
        let id = self.intern(name);
        self.bound[id as usize] = true;
        id
    }

    /// Intern `name` without binding it.
    fn intern(&mut self, name: &str) -> SlotId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as SlotId;
        }
        self.names.push(name.to_string());
        self.bound.push(false);
        (self.names.len() - 1) as SlotId
    }

    /// The slot of `name`, only if something already binds it.
    fn lookup_bound(&self, name: &str) -> Option<SlotId> {
        self.names
            .iter()
            .position(|n| n == name)
            .filter(|&i| self.bound[i])
            .map(|i| i as SlotId)
    }
}

/// Compile context for one rule: everything error variants need.
struct RuleCx<'a> {
    index: usize,
    pattern: &'a str,
}

impl RuleCx<'_> {
    fn bad_regex(&self, regex: &str, error: &lixto_regexlite::Error) -> CompileError {
        CompileError::BadRegex {
            rule: self.index,
            pattern: self.pattern.to_string(),
            regex: regex.to_string(),
            message: error.to_string(),
        }
    }

    fn unbound(&self, variable: &str) -> CompileError {
        CompileError::UnboundVariable {
            rule: self.index,
            pattern: self.pattern.to_string(),
            variable: variable.to_string(),
        }
    }
}

impl WrapperPlan {
    /// Compile `program` against `concepts` into an executable plan.
    ///
    /// The concept registry is consulted (and baked in) at compile time:
    /// a plan carries its concept matchers and needs no registry to
    /// execute.
    pub fn compile(
        program: &ElogProgram,
        concepts: &ConceptRegistry,
    ) -> Result<WrapperPlan, CompileError> {
        // Pattern table, in first-definition order (the order
        // `ElogProgram::patterns` reports).
        let patterns: Vec<String> = program.patterns().into_iter().map(str::to_string).collect();
        let pattern_id = |name: &str| -> Option<PatternId> {
            patterns.iter().position(|p| p == name).map(|i| i as u32)
        };

        let mut rules = Vec::with_capacity(program.rules.len());
        let mut rules_by_parent: Vec<Vec<usize>> = vec![Vec::new(); patterns.len()];
        let mut entry_rules = Vec::new();
        for (index, rule) in program.rules.iter().enumerate() {
            let cx = RuleCx {
                index,
                pattern: &rule.pattern,
            };
            let parent = match &rule.parent {
                ParentSpec::Pattern(name) => match pattern_id(name) {
                    Some(id) => {
                        rules_by_parent[id as usize].push(index);
                        PlanParent::Pattern(id)
                    }
                    None => {
                        return Err(CompileError::UnknownParentPattern {
                            rule: index,
                            pattern: rule.pattern.clone(),
                            parent: name.clone(),
                        })
                    }
                },
                ParentSpec::Document(UrlExpr::Const(url)) => {
                    entry_rules.push(index);
                    PlanParent::Document(url.clone())
                }
                ParentSpec::Document(UrlExpr::Var(_)) => {
                    return Err(CompileError::EntryUrlNotConstant {
                        rule: index,
                        pattern: rule.pattern.clone(),
                    })
                }
            };

            let mut slots = Slots::new();
            let extraction = compile_extraction(rule, &cx, &mut slots)?;
            let mut conditions = Vec::with_capacity(rule.conditions.len());
            let mut refs = Vec::new();
            for cond in &rule.conditions {
                conditions.push(compile_condition(
                    cond,
                    &cx,
                    &mut slots,
                    concepts,
                    &pattern_id,
                    &mut refs,
                )?);
            }
            let range = rule.conditions.iter().find_map(|c| match c {
                Condition::Range { from, to } => Some((*from, *to)),
                _ => None,
            });
            rules.push(PlanRule {
                pattern: pattern_id(&rule.pattern).expect("head is in the pattern table"),
                parent,
                extraction,
                conditions,
                slots: slots.names.len(),
                slot_names: slots.names,
                range,
                refs,
            });
        }
        Ok(WrapperPlan {
            program: program.clone(),
            patterns,
            rules,
            rules_by_parent,
            entry_rules,
        })
    }
}

fn compile_extraction(
    rule: &ElogRule,
    cx: &RuleCx<'_>,
    slots: &mut Slots,
) -> Result<PlanExtraction, CompileError> {
    Ok(match &rule.extraction {
        Extraction::Specialize => PlanExtraction::Specialize,
        Extraction::Subelem(path) => PlanExtraction::Subelem(compile_path(path, cx, slots, true)?),
        Extraction::Subsq {
            context,
            start,
            end,
        } => PlanExtraction::Subsq {
            // Context and delimiter matches never contribute bindings
            // (the interpreted evaluator drops them), so their `regvar`
            // captures are presence checks only.
            context: compile_path(context, cx, slots, false)?,
            start: compile_path(start, cx, slots, false)?,
            end: compile_path(end, cx, slots, false)?,
        },
        Extraction::Subtext(pattern) => {
            PlanExtraction::Subtext(compile_regvar_pattern(pattern, cx, slots, true)?)
        }
        Extraction::Subatt(attr) => PlanExtraction::Subatt(attr.clone()),
        Extraction::Document(UrlExpr::Const(url)) => {
            PlanExtraction::Document(PlanUrl::Const(url.clone()))
        }
        Extraction::Document(UrlExpr::Var(var)) => {
            // The URL variable is resolved from `attrbind` conditions of
            // the same rule (the interpreted evaluator pre-scans them);
            // require one to exist.
            let has_binder = rule
                .conditions
                .iter()
                .any(|c| matches!(c, Condition::AttrBind { var: v, .. } if v == var));
            if !has_binder {
                return Err(cx.unbound(var));
            }
            PlanExtraction::Document(PlanUrl::Slot(slots.intern(var)))
        }
    })
}

fn compile_condition(
    cond: &Condition,
    cx: &RuleCx<'_>,
    slots: &mut Slots,
    concepts: &ConceptRegistry,
    pattern_id: &dyn Fn(&str) -> Option<PatternId>,
    refs: &mut Vec<PatternId>,
) -> Result<PlanCondition, CompileError> {
    // A reference that may fall back to the candidate's text (`X`).
    let resolve_value = |slots: &Slots, var: &str| -> Result<PlanVarRef, CompileError> {
        match slots.lookup_bound(var) {
            Some(slot) if var == "X" => Ok(PlanVarRef::SlotOrTarget(slot)),
            Some(slot) => Ok(PlanVarRef::Slot(slot)),
            None if var == "X" => Ok(PlanVarRef::TargetText),
            None => Err(cx.unbound(var)),
        }
    };
    Ok(match cond {
        Condition::Before {
            path,
            min,
            max,
            bind,
            negated,
        }
        | Condition::After {
            path,
            min,
            max,
            bind,
            negated,
        } => {
            // A negated context condition never binds (the interpreted
            // evaluator discards the binding on the negated branch).
            let binds = !*negated && bind.is_some();
            let path = compile_path(path, cx, slots, binds)?;
            let bind = if binds {
                bind.as_deref().map(|v| slots.bind(v))
            } else {
                None
            };
            PlanCondition::Context {
                path,
                min: *min,
                max: *max,
                bind,
                negated: *negated,
                is_before: matches!(cond, Condition::Before { .. }),
            }
        }
        Condition::Contains { path, negated } => PlanCondition::Contains {
            path: compile_path(path, cx, slots, false)?,
            negated: *negated,
        },
        Condition::FirstSubtree { path } => PlanCondition::FirstSubtree {
            path: compile_path(path, cx, slots, false)?,
        },
        Condition::Concept {
            concept,
            var,
            negated,
        } => {
            let compiled = match concepts.get(concept) {
                Some(Concept::Syntactic(re)) => PlanConcept::Syntactic(
                    Regex::with_options(re, true).map_err(|e| cx.bad_regex(re, &e))?,
                ),
                Some(Concept::Semantic(set)) => PlanConcept::Semantic(set.clone()),
                None => {
                    return Err(CompileError::UnknownConcept {
                        rule: cx.index,
                        pattern: cx.pattern.to_string(),
                        concept: concept.clone(),
                    })
                }
            };
            PlanCondition::Concept {
                concept: compiled,
                var: resolve_value(slots, var)?,
                negated: *negated,
            }
        }
        Condition::Comparison {
            left,
            op,
            right,
            right_is_literal,
        } => PlanCondition::Comparison {
            left: resolve_value(slots, left)?,
            op: op.clone(),
            right: if *right_is_literal {
                PlanOperand::Literal(right.clone())
            } else {
                PlanOperand::Var(resolve_value(slots, right)?)
            },
        },
        Condition::PatternRef { pattern, var } => {
            let id = pattern_id(pattern).ok_or_else(|| CompileError::UnknownParentPattern {
                rule: cx.index,
                pattern: cx.pattern.to_string(),
                parent: pattern.clone(),
            })?;
            let slot = slots.lookup_bound(var).ok_or_else(|| cx.unbound(var))?;
            if !refs.contains(&id) {
                refs.push(id);
            }
            PlanCondition::PatternRef {
                pattern: id,
                var: slot,
            }
        }
        Condition::AttrBind { attr, var } => PlanCondition::AttrBind {
            attr: attr.clone(),
            var: slots.bind(var),
        },
        Condition::Range { .. } => PlanCondition::Range,
    })
}

fn compile_path(
    path: &ElementPath,
    cx: &RuleCx<'_>,
    slots: &mut Slots,
    binds: bool,
) -> Result<PlanPath, CompileError> {
    let mut steps = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        steps.push(PlanStep {
            descend: step.descend,
            tag: match &step.tag {
                TagTest::Name(n) => PlanTag::Name(n.clone()),
                TagTest::Any => PlanTag::Any,
                TagTest::Regex(re) => {
                    PlanTag::Regex(Regex::with_options(re, true).map_err(|e| cx.bad_regex(re, &e))?)
                }
            },
        });
    }
    let mut attrs = Vec::with_capacity(path.attrs.len());
    for cond in &path.attrs {
        attrs.push(compile_attr(cond, cx, slots, binds)?);
    }
    Ok(PlanPath { steps, attrs })
}

fn compile_attr(
    cond: &AttrCond,
    cx: &RuleCx<'_>,
    slots: &mut Slots,
    binds: bool,
) -> Result<PlanAttr, CompileError> {
    Ok(PlanAttr {
        attr: cond.attr.clone(),
        matcher: match cond.mode {
            AttrMode::Exact => PlanAttrMatch::Exact(cond.pattern.clone()),
            AttrMode::Substr => PlanAttrMatch::Substr(cond.pattern.clone()),
            AttrMode::Regvar => {
                PlanAttrMatch::Regvar(compile_regvar_pattern(&cond.pattern, cx, slots, binds)?)
            }
        },
    })
}

fn compile_regvar_pattern(
    pattern: &str,
    cx: &RuleCx<'_>,
    slots: &mut Slots,
    binds: bool,
) -> Result<PlanRegvar, CompileError> {
    let (regex_src, vars) = compile_regvar(pattern);
    let regex = Regex::new(&regex_src).map_err(|e| cx.bad_regex(&regex_src, &e))?;
    let captures = vars
        .into_iter()
        .map(|v| {
            let slot = binds.then(|| slots.bind(&v));
            (v, slot)
        })
        .collect();
    Ok(PlanRegvar { regex, captures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, EBAY_PROGRAM};
    use crate::plan::PlanParent;

    fn compile(src: &str) -> Result<WrapperPlan, CompileError> {
        WrapperPlan::compile(&parse_program(src).unwrap(), &ConceptRegistry::builtin())
    }

    #[test]
    fn figure5_program_compiles_with_interned_tables() {
        let plan = compile(EBAY_PROGRAM).unwrap();
        assert_eq!(
            plan.patterns(),
            ["tableseq", "record", "itemdes", "price", "bids", "currency"]
        );
        assert_eq!(plan.rules().len(), 6);
        // record's parent edge resolves to tableseq's id.
        let record = &plan.rules()[1];
        assert!(matches!(record.parent, PlanParent::Pattern(0)));
        // The indexed rule table: tableseq parents exactly the record rule.
        assert_eq!(plan.rules_for_parent(0), [1]);
        assert_eq!(plan.entry_rules(), [0]);
        // bids binds Y (before/4) and references price.
        let bids = &plan.rules()[4];
        assert_eq!(bids.slots, 1);
        assert_eq!(bids.slot_names, ["Y"]);
        assert_eq!(bids.refs, [plan.pattern_id("price").unwrap()]);
    }

    #[test]
    fn unknown_parent_pattern_is_rejected() {
        let err = compile(r#"x(S, X) :- ghost(_, S), subelem(S, (?.td, []), X)."#).unwrap_err();
        assert_eq!(err.code(), "unknown_parent_pattern");
        assert_eq!(err.rule(), 0);
        assert_eq!(err.pattern(), "x");
        assert_eq!(err.subject(), Some("ghost"));
    }

    #[test]
    fn unknown_pattern_reference_is_rejected() {
        let err = compile(
            r#"x(S, X) :- document("http://u/", S), subelem(S, (?.td, []), X),
               before(S, X, (?.td, []), 0, 9, Y, _), ghost(_, Y)."#,
        )
        .unwrap_err();
        assert_eq!(err.code(), "unknown_parent_pattern");
        assert_eq!(err.subject(), Some("ghost"));
    }

    #[test]
    fn unbound_variable_is_rejected() {
        let err = compile(
            r#"x(S, X) :- document("http://u/", S), subelem(S, (?.td, []), X), isCurrency(Z)."#,
        )
        .unwrap_err();
        assert_eq!(err.code(), "unbound_variable");
        assert_eq!(err.subject(), Some("Z"));
        // The target variable X is always in scope for concepts.
        compile(
            r#"x(S, X) :- document("http://u/", S), subelem(S, (?.td, []), X), isCurrency(X)."#,
        )
        .unwrap();
    }

    #[test]
    fn unknown_concept_is_rejected() {
        let err = compile(
            r#"x(S, X) :- document("http://u/", S), subelem(S, (?.td, []), X), isUnicorn(X)."#,
        )
        .unwrap_err();
        assert_eq!(err.code(), "unknown_concept");
        assert_eq!(err.subject(), Some("isUnicorn"));
    }

    #[test]
    fn bad_regex_is_rejected() {
        let err = compile(r#"x(S, X) :- document("http://u/", S), subtext(S, "\var[Y]((", X)."#)
            .unwrap_err();
        assert_eq!(err.code(), "bad_regex");
        assert!(err.to_string().contains("does not compile"));
    }

    #[test]
    fn crawl_url_variable_needs_an_attrbind() {
        let err = compile(r#"p(S, X) :- q(_, S), document(U, X). q(S, X) :- document("http://u/", S), subelem(S, (?.a, []), X)."#)
            .unwrap_err();
        assert_eq!(err.code(), "unbound_variable");
        assert_eq!(err.subject(), Some("U"));
        compile(
            r#"q(S, X) :- document("http://u/", S), subelem(S, (?.a, []), X).
               p(S, X) :- q(_, S), attrbind(S, href, U), document(U, X)."#,
        )
        .unwrap();
    }

    #[test]
    fn rejected_programs_still_run_through_the_interpreter_fallback() {
        use crate::web::SinglePage;
        let web = SinglePage {
            url: "http://u/".into(),
            html: "<body><td>cell</td></body>".into(),
        };
        // Unknown parent: the interpreter tolerates it as silently empty;
        // run() must not panic and must match run_interpreted().
        let program =
            parse_program(r#"x(S, X) :- ghost(_, S), subelem(S, (?.td, []), X)."#).unwrap();
        let ex = crate::Extractor::new(program, &web);
        assert_eq!(ex.run(), ex.run_interpreted());
        assert!(ex.run().base.is_empty());
    }
}
