//! The plan optimizer: the analysis pass between compilation
//! ([`crate::plan`]) and execution.
//!
//! A compiled [`WrapperPlan`] is faithful to source order and evaluates
//! by running every rule to global quiescence — correct, but wasteful on
//! the common shape of a production wrapper: an acyclic pattern hierarchy
//! whose rules are already written parents-first, where the generic
//! fixpoint pays a full extra pass (re-walking every entry document) just
//! to observe that nothing changed, and sibling rules re-walk the same
//! parent subtrees with almost-identical paths. The optimizer proves three
//! transformations safe per wrapper and records them in an
//! [`OptimizedPlan`] the executor consumes:
//!
//! 1. **Rule scheduling** — the rule dependency DAG (parent-pattern edges
//!    plus `PatternRef` edges) is built from the indexed rule table and
//!    topologically stratified. When every producer precedes every
//!    consumer in source order (true for every acyclic wrapper written
//!    top-down, including the whole workload corpus), the fixpoint
//!    collapses to [`Schedule::SinglePass`]: each rule runs exactly once,
//!    and the result is provably identical because pass two of the
//!    generic fixpoint could only re-read inputs that were already
//!    complete. Any cycle (crawling back to an earlier pattern) or
//!    out-of-order producer falls back to [`Schedule::Fixpoint`] — rules
//!    are never reordered, since instance insertion order is observable
//!    through the XML output.
//! 2. **Path-matcher fusion** — every element path (extraction paths,
//!    `subsq` context paths, condition paths) with at most 64 steps is
//!    compiled to a [`PathAutomaton`]: the path's positional NFA run by
//!    on-the-fly subset construction in one downward traversal, with tag
//!    tests resolved to interned label symbols per document. Longer paths
//!    keep the step-by-step evaluator.
//! 3. **Shared sub-matcher hoisting** — path sites that walk the parent
//!    forest (`subelem`, `subsq` context, `before`/`after` and
//!    `firstsubtree` paths) are grouped by (parent pattern, step
//!    skeleton + tag tests); groups with two or more sites share one
//!    tree walk per (parent instance) through a per-run memo table, each
//!    site applying its own attribute conditions to the shared node list.
//!
//! Condition lists are additionally reordered cheapest-first within
//! binder-free segments when the rule's condition hypergraph is an
//! acyclic conjunctive query ([`lixto_cq::acyclic::is_acyclic`]): for an
//! acyclic CQ the conjunction can be evaluated in any GYO order, so
//! commuting pure per-environment filters between two binding atoms
//! cannot change the rule's accept/reject decision.
//!
//! Every transformation is observation-equivalent — byte-identical
//! instances, instance order and XML — which `tests/plan_equivalence.rs`
//! asserts against both the unoptimized plan executor and the interpreted
//! walker across the workload corpus. The [`OptimizeReport`] records what
//! fired so `/debug/wrappers/{name}` can expose it.

use std::collections::HashMap;
use std::sync::Arc;

use lixto_automata::topdown::PathAutomaton;
use lixto_cq::acyclic::is_acyclic;
use lixto_cq::{Cq, CqAtom, CqAxis};
use lixto_regexlite::Regex;

use crate::plan::{
    PatternId, PlanAttr, PlanAttrMatch, PlanCondition, PlanExtraction, PlanOperand, PlanParent,
    PlanPath, PlanRule, PlanTag, PlanVarRef, WrapperPlan,
};

/// How the executor drives the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The dependency DAG is acyclic and source order is topological:
    /// every rule runs exactly once, in source order.
    SinglePass,
    /// Cyclic dependencies (or out-of-order producers): iterate to
    /// global quiescence with semi-naive skipping, exactly like the
    /// unoptimized executor.
    Fixpoint,
}

impl Schedule {
    /// Stable lowercase name for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::SinglePass => "single_pass",
            Schedule::Fixpoint => "fixpoint",
        }
    }
}

/// A fused path matcher: the step skeleton as a [`PathAutomaton`], the
/// per-step tag tests, and the final-node attribute conditions.
pub(crate) struct FusedPath {
    pub(crate) auto: PathAutomaton,
    pub(crate) shape: FusedShape,
    pub(crate) tests: Vec<FusedTag>,
    pub(crate) attrs: Vec<PlanAttr>,
}

/// How a fused path is evaluated. Documents keep a flat preorder arena,
/// so the two single-step shapes — which cover most real wrapper paths —
/// are answered by a straight slice scan (or by testing the roots
/// themselves), with no DFS stack at all. Longer skeletons run the
/// subset-construction automaton.
pub(crate) enum FusedShape {
    /// One non-descend step: the first step tests each root directly and
    /// nothing descends, so the matches are exactly the roots that pass.
    ChildOne,
    /// One descend step: descendants-or-self of each root, a contiguous
    /// preorder-slice scan per root. Roots are disjoint subtrees in
    /// document order, so concatenation needs no sort or dedup.
    DescendOne,
    /// General multi-step skeleton: the [`PathAutomaton`].
    Auto,
}

/// One step's tag test, ready for per-document symbol resolution.
pub(crate) enum FusedTag {
    /// `*` — any element node.
    Any,
    /// Exact name; resolved to the document's interned symbol once per
    /// evaluation (an absent symbol proves the whole path empty on that
    /// document without walking it).
    Name(String),
    /// Regex over the tag name.
    Regex(Regex),
}

/// How a path site evaluates under the optimizer.
#[derive(Clone, Copy)]
pub(crate) struct PathUse {
    /// Index into [`OptimizedPlan::fused`].
    pub(crate) fused: u32,
    /// Hoist group id, when the site shares its step walk.
    pub(crate) group: Option<u32>,
}

/// Per-rule optimizer decisions, parallel to `WrapperPlan::rules`.
pub(crate) struct OptRule {
    /// Fused matcher for the extraction path (`subelem` path or `subsq`
    /// context path); `None` keeps the fallback evaluator.
    pub(crate) extraction_path: Option<PathUse>,
    /// Fused matcher per condition (paths of `before`/`after`,
    /// `contains`, `firstsubtree`), parallel to `conditions`.
    pub(crate) cond_paths: Vec<Option<PathUse>>,
    /// Evaluation order of the condition list when safely reordered
    /// cheapest-first; `None` keeps source order.
    pub(crate) cond_order: Option<Vec<usize>>,
    /// No other rule produces this rule's pattern. Under a single-pass
    /// schedule the rule then runs exactly once and a subelem extraction
    /// yields distinct nodes per parent, so every `(pattern, parent,
    /// target)` key is provably fresh and the executor's dedup check can
    /// be skipped.
    pub(crate) sole_producer: bool,
}

/// What the optimizer did to a wrapper — exposed through
/// `/debug/wrappers/{name}` and the e20 experiment.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// The chosen schedule.
    pub schedule: Schedule,
    /// Rule count.
    pub rules: usize,
    /// Strata of the topologically stratified rule DAG (0 when the
    /// dependency graph is cyclic and no stratification exists).
    pub strata: usize,
    /// Paths compiled to fused automata.
    pub fused_paths: usize,
    /// Paths kept on the step-by-step fallback (more than
    /// [`PathAutomaton::MAX_STEPS`] steps).
    pub fallback_paths: usize,
    /// Shared sub-matcher groups (two or more sites).
    pub hoist_groups: usize,
    /// Total path sites participating in a shared group.
    pub hoisted_sites: usize,
    /// Rules whose condition list was reordered cheapest-first.
    pub reordered_rules: usize,
    /// Rules (with at least one condition) whose condition hypergraph is
    /// an acyclic conjunctive query — the safety precondition for
    /// reordering.
    pub acyclic_condition_rules: usize,
}

/// A compiled-and-optimized wrapper: the [`WrapperPlan`] plus the
/// schedule, fused matchers and hoist groups the optimized executor
/// consumes. Produced by [`OptimizedPlan::new`]; executed by
/// [`Extractor::from_optimized`](crate::Extractor::from_optimized).
pub struct OptimizedPlan {
    plan: Arc<WrapperPlan>,
    pub(crate) schedule: Schedule,
    pub(crate) rules: Vec<OptRule>,
    pub(crate) fused: Vec<FusedPath>,
    report: OptimizeReport,
}

impl OptimizedPlan {
    /// Optimize a compiled plan. Infallible: transformations that cannot
    /// be proven safe are simply not applied (and the report says so).
    pub fn new(plan: Arc<WrapperPlan>) -> OptimizedPlan {
        optimize(plan)
    }

    /// The underlying compiled plan.
    pub fn plan(&self) -> &Arc<WrapperPlan> {
        &self.plan
    }

    /// The chosen schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// What the optimizer did.
    pub fn report(&self) -> &OptimizeReport {
        &self.report
    }
}

impl std::fmt::Debug for OptimizedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimizedPlan")
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// A hashable identity for a path's step list (skeleton + tag tests,
/// attribute conditions excluded): two sites with equal signatures walk
/// the tree identically and can share one evaluation.
#[derive(PartialEq, Eq, Hash)]
struct StepsSig(Vec<(bool, TagSig)>);

#[derive(PartialEq, Eq, Hash)]
enum TagSig {
    Any,
    Name(String),
    Regex(String),
}

fn signature(path: &PlanPath) -> StepsSig {
    StepsSig(
        path.steps
            .iter()
            .map(|s| {
                let tag = match &s.tag {
                    PlanTag::Any => TagSig::Any,
                    PlanTag::Name(n) => TagSig::Name(n.clone()),
                    PlanTag::Regex(re) => TagSig::Regex(re.as_str().to_string()),
                };
                (s.descend, tag)
            })
            .collect(),
    )
}

/// Run the analysis. See the module docs for the three transformations.
pub(crate) fn optimize(plan: Arc<WrapperPlan>) -> OptimizedPlan {
    let rules = plan.rules();
    let (schedule, strata) = schedule_of(&plan);

    // --- Fusion + hoisting -------------------------------------------
    // First enumerate the hoistable sites (paths walked over the parent
    // forest) to find signatures shared by two or more sites per parent
    // pattern; then compile every path, attaching group ids.
    let mut sig_counts: HashMap<(PatternId, StepsSig), u32> = HashMap::new();
    for rule in rules {
        let PlanParent::Pattern(parent) = rule.parent else {
            continue;
        };
        for path in hoistable_paths(rule) {
            *sig_counts.entry((parent, signature(path))).or_insert(0) += 1;
        }
    }
    let mut group_ids: HashMap<(PatternId, StepsSig), u32> = HashMap::new();
    for ((parent, sig), count) in sig_counts {
        if count >= 2 {
            let id = group_ids.len() as u32;
            group_ids.insert((parent, sig), id);
        }
    }

    let mut fused: Vec<FusedPath> = Vec::new();
    let mut fallback_paths = 0usize;
    let mut hoisted_sites = 0usize;
    let mut fuse =
        |path: &PlanPath, parent: Option<PatternId>, hoistable: bool| -> Option<PathUse> {
            let skeleton: Vec<bool> = path.steps.iter().map(|s| s.descend).collect();
            let Some(auto) = PathAutomaton::new(&skeleton) else {
                fallback_paths += 1;
                return None;
            };
            let group = match (parent, hoistable) {
                (Some(p), true) => group_ids.get(&(p, signature(path))).copied(),
                _ => None,
            };
            if group.is_some() {
                hoisted_sites += 1;
            }
            let id = fused.len() as u32;
            let shape = match path.steps.as_slice() {
                [s] if s.descend => FusedShape::DescendOne,
                [_] => FusedShape::ChildOne,
                _ => FusedShape::Auto,
            };
            fused.push(FusedPath {
                auto,
                shape,
                tests: path
                    .steps
                    .iter()
                    .map(|s| match &s.tag {
                        PlanTag::Any => FusedTag::Any,
                        PlanTag::Name(n) => FusedTag::Name(n.clone()),
                        PlanTag::Regex(re) => FusedTag::Regex(re.clone()),
                    })
                    .collect(),
                attrs: path.attrs.clone(),
            });
            Some(PathUse { fused: id, group })
        };

    let mut pattern_rules = vec![0usize; plan.patterns().len()];
    for rule in rules {
        pattern_rules[rule.pattern as usize] += 1;
    }
    let mut opt_rules: Vec<OptRule> = Vec::with_capacity(rules.len());
    let mut reordered_rules = 0usize;
    let mut acyclic_condition_rules = 0usize;
    for rule in rules {
        let parent = match rule.parent {
            PlanParent::Pattern(p) => Some(p),
            PlanParent::Document(_) => None,
        };
        let extraction_path = match &rule.extraction {
            PlanExtraction::Subelem(path) => fuse(path, parent, true),
            PlanExtraction::Subsq { context, .. } => fuse(context, parent, true),
            _ => None,
        };
        let cond_paths: Vec<Option<PathUse>> = rule
            .conditions
            .iter()
            .map(|c| match c {
                // Context and firstsubtree walk the parent forest and can
                // share; contains walks the candidate's own subtree.
                PlanCondition::Context { path, .. } | PlanCondition::FirstSubtree { path } => {
                    fuse(path, parent, true)
                }
                PlanCondition::Contains { path, .. } => fuse(path, None, false),
                _ => None,
            })
            .collect();

        let acyclic = !rule.conditions.is_empty() && is_acyclic(&condition_cq(rule));
        if acyclic {
            acyclic_condition_rules += 1;
        }
        let cond_order = if acyclic { reorder(rule) } else { None };
        if cond_order.is_some() {
            reordered_rules += 1;
        }
        opt_rules.push(OptRule {
            extraction_path,
            cond_paths,
            cond_order,
            sole_producer: pattern_rules[rule.pattern as usize] == 1,
        });
    }

    let report = OptimizeReport {
        schedule,
        rules: rules.len(),
        strata,
        fused_paths: fused.len(),
        fallback_paths,
        hoist_groups: group_ids.len(),
        hoisted_sites,
        reordered_rules,
        acyclic_condition_rules,
    };
    OptimizedPlan {
        plan,
        schedule,
        rules: opt_rules,
        fused,
        report,
    }
}

/// The paths of a rule that are evaluated over the parent forest (and so
/// can share a walk with sibling rules on the same parent pattern).
fn hoistable_paths(rule: &PlanRule) -> Vec<&PlanPath> {
    let mut out = Vec::new();
    match &rule.extraction {
        PlanExtraction::Subelem(path) => out.push(path),
        PlanExtraction::Subsq { context, .. } => out.push(context),
        _ => {}
    }
    for c in &rule.conditions {
        match c {
            PlanCondition::Context { path, .. } | PlanCondition::FirstSubtree { path } => {
                out.push(path)
            }
            _ => {}
        }
    }
    out
}

/// Build the rule dependency graph and decide the schedule. Returns the
/// schedule and the stratum count (0 when cyclic).
fn schedule_of(plan: &WrapperPlan) -> (Schedule, usize) {
    let rules = plan.rules();
    let mut producers: HashMap<PatternId, Vec<usize>> = HashMap::new();
    for (i, r) in rules.iter().enumerate() {
        producers.entry(r.pattern).or_default().push(i);
    }
    // edges[j] = producers rule j reads from (parent pattern + refs).
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); rules.len()];
    let mut source_topological = true;
    for (j, r) in rules.iter().enumerate() {
        let mut deps: Vec<PatternId> = Vec::new();
        if let PlanParent::Pattern(p) = r.parent {
            deps.push(p);
        }
        deps.extend(r.refs.iter().copied());
        for p in deps {
            for &i in producers.get(&p).into_iter().flatten() {
                if i >= j {
                    source_topological = false;
                }
                edges[j].push(i);
            }
        }
    }
    if source_topological {
        // Forward-only edges: acyclic by construction; stratum of a rule
        // is its longest producer chain.
        let mut depth = vec![1usize; rules.len()];
        for j in 0..rules.len() {
            for &i in &edges[j] {
                depth[j] = depth[j].max(depth[i] + 1);
            }
        }
        let strata = depth.iter().copied().max().unwrap_or(0);
        return (Schedule::SinglePass, strata);
    }
    // Not source-topological. Stratify anyway (for the report) if the
    // graph happens to be acyclic; Kahn's algorithm detects cycles.
    // edges[j] lists predecessors of j, so j's in-degree is edges[j].len()
    // (self-loops count and correctly block the queue).
    let mut indeg: Vec<usize> = edges.iter().map(Vec::len).collect();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); rules.len()];
    for (j, deps) in edges.iter().enumerate() {
        for &i in deps {
            succ[i].push(j);
        }
    }
    let mut queue: Vec<usize> = (0..rules.len()).filter(|&j| indeg[j] == 0).collect();
    let mut depth = vec![1usize; rules.len()];
    let mut seen = 0usize;
    while let Some(i) = queue.pop() {
        seen += 1;
        for &j in &succ[i] {
            depth[j] = depth[j].max(depth[i] + 1);
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    let strata = if seen == rules.len() {
        depth.iter().copied().max().unwrap_or(0)
    } else {
        0 // cyclic: no stratification exists
    };
    (Schedule::Fixpoint, strata)
}

/// The condition hypergraph of a rule as a Boolean conjunctive query:
/// one variable for `S`, one for `X`, one per slot, one per condition,
/// and an edge from each condition to every variable it touches. The
/// axis is irrelevant to acyclicity — `Child` throughout.
fn condition_cq(rule: &PlanRule) -> Cq {
    const S: usize = 0;
    const X: usize = 1;
    let slot_var = |s: u32| 2 + s as usize;
    let cond_var = |ci: usize| 2 + rule.slots + ci;
    let mut atoms: Vec<CqAtom> = Vec::new();
    for (ci, c) in rule.conditions.iter().enumerate() {
        let mut touched: Vec<usize> = Vec::new();
        let touch = |v: usize, touched: &mut Vec<usize>| {
            if !touched.contains(&v) {
                touched.push(v);
            }
        };
        let touch_ref = |r: &PlanVarRef, touched: &mut Vec<usize>| match r {
            PlanVarRef::Slot(s) => touch(slot_var(*s), touched),
            PlanVarRef::SlotOrTarget(s) => {
                touch(slot_var(*s), touched);
                touch(X, touched);
            }
            PlanVarRef::TargetText => touch(X, touched),
        };
        match c {
            PlanCondition::Context { path, bind, .. } => {
                touch(S, &mut touched);
                touch(X, &mut touched);
                if let Some(b) = bind {
                    touch(slot_var(*b), &mut touched);
                }
                for a in &path.attrs {
                    if let PlanAttrMatch::Regvar(rv) = &a.matcher {
                        for (_, slot) in &rv.captures {
                            if let Some(s) = slot {
                                touch(slot_var(*s), &mut touched);
                            }
                        }
                    }
                }
            }
            PlanCondition::Contains { .. } => touch(X, &mut touched),
            PlanCondition::FirstSubtree { .. } => {
                touch(S, &mut touched);
                touch(X, &mut touched);
            }
            PlanCondition::Concept { var, .. } => touch_ref(var, &mut touched),
            PlanCondition::Comparison { left, right, .. } => {
                touch_ref(left, &mut touched);
                if let PlanOperand::Var(v) = right {
                    touch_ref(v, &mut touched);
                }
            }
            PlanCondition::PatternRef { var, .. } => touch(slot_var(*var), &mut touched),
            PlanCondition::AttrBind { var, .. } => {
                touch(S, &mut touched);
                touch(slot_var(*var), &mut touched);
            }
            PlanCondition::Range => {}
        }
        for v in touched {
            atoms.push(CqAtom {
                axis: CqAxis::Child,
                x: cond_var(ci),
                y: v,
            });
        }
    }
    Cq::boolean(2 + rule.slots + rule.conditions.len(), atoms, Vec::new())
}

/// A binding condition mutates or forks the environment set; it is a
/// barrier the reorder must not move filters across.
fn is_binder(c: &PlanCondition) -> bool {
    match c {
        PlanCondition::AttrBind { .. } => true,
        PlanCondition::Context { bind, .. } => bind.is_some(),
        _ => false,
    }
}

/// Static cost class of a pure filter condition (lower = cheaper).
fn cond_cost(c: &PlanCondition) -> u8 {
    match c {
        PlanCondition::Range => 0,
        PlanCondition::PatternRef { .. } => 1, // indexed hash lookup
        PlanCondition::Comparison {
            right: PlanOperand::Literal(_),
            ..
        } => 1,
        PlanCondition::Comparison { .. } => 2,
        PlanCondition::Concept { .. } => 2,
        PlanCondition::Context { .. } => 3, // witness list precomputed per parent
        PlanCondition::FirstSubtree { .. } => 4, // parent-forest walk
        PlanCondition::Contains { .. } => 5, // per-candidate subtree walk
        PlanCondition::AttrBind { .. } => 0, // barrier; never sorted
    }
}

/// Sort pure filters cheapest-first within binder-free segments (stable,
/// so equal-cost conditions keep source order). Returns `None` when the
/// result is the identity permutation.
fn reorder(rule: &PlanRule) -> Option<Vec<usize>> {
    let n = rule.conditions.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut start = 0usize;
    for end in 0..=n {
        let at_barrier = end == n || is_binder(&rule.conditions[end]);
        if at_barrier {
            order[start..end].sort_by_key(|&ci| cond_cost(&rule.conditions[ci]));
            start = end + 1;
        }
    }
    if order.iter().enumerate().all(|(k, &ci)| k == ci) {
        None
    } else {
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::ConceptRegistry;
    use crate::parser::parse_program;

    fn optimized(src: &str) -> OptimizedPlan {
        let program = parse_program(src).unwrap();
        let plan = WrapperPlan::compile(&program, &ConceptRegistry::builtin()).unwrap();
        optimize(Arc::new(plan))
    }

    #[test]
    fn acyclic_topdown_wrapper_single_passes() {
        let opt = optimized(
            r#"story(S, X) :- document("http://n/", S), subelem(S, (?.div, [(class, story, exact)]), X).
               headline(S, X) :- story(_, S), subelem(S, (.h2, []), X).
               ticker(S, X) :- story(_, S), subelem(S, (.span, [(class, ticker, exact)]), X).
               quote(S, X) :- story(_, S), subelem(S, (.span, [(class, quote, exact)]), X)."#,
        );
        assert_eq!(opt.schedule(), Schedule::SinglePass);
        let r = opt.report();
        assert_eq!(r.strata, 2); // entry stratum, then the three children
        assert_eq!(r.fused_paths, 4);
        assert_eq!(r.fallback_paths, 0);
        // ticker and quote share the `.span` walk; h2 stands alone.
        assert_eq!(r.hoist_groups, 1);
        assert_eq!(r.hoisted_sites, 2);
    }

    #[test]
    fn crawling_cycle_falls_back_to_fixpoint() {
        let opt = optimized(
            r#"page(S, X) :- document("http://start/", S), subelem(S, (?.body, []), X).
               link(S, X) :- page(_, S), subelem(S, (?.a, []), X).
               page(S, X) :- link(_, S), document(U, X), attrbind(S, href, U).
               para(S, X) :- page(_, S), subelem(S, (?.p, []), X)."#,
        );
        assert_eq!(opt.schedule(), Schedule::Fixpoint);
        assert_eq!(opt.report().strata, 0); // page -> link -> page is a cycle
    }

    #[test]
    fn cheap_filters_move_before_expensive_ones() {
        // contains (subtree walk) before a literal comparison: the CQ
        // {contains: X} ∪ {comparison: X} is acyclic, so the comparison
        // moves first.
        let opt = optimized(
            r#"item(S, X) :- document("http://p/", S), subelem(S, (?.li, []), X),
                            contains(X, (.b, [])), lt(X, "zzz")."#,
        );
        let order = opt.rules[0].cond_order.as_ref().expect("reordered");
        assert_eq!(order, &[1, 0]);
        assert_eq!(opt.report().reordered_rules, 1);
        assert_eq!(opt.report().acyclic_condition_rules, 1);
    }

    #[test]
    fn binders_are_barriers() {
        // before(..., Y) binds Y: the pattern reference after it must not
        // move ahead of the binder.
        let opt = optimized(
            r#"row(S, X) :- document("http://p/", S), subelem(S, (?.tr, []), X).
               price(S, X) :- row(_, S), subelem(S, (.td, []), X).
               bids(S, X) :- row(_, S), subelem(S, (.td, []), X),
                             before(S, X, (.td, []), 0, 5, Y), price(_, Y)."#,
        );
        assert!(opt.rules[2].cond_order.is_none());
        // price's `.td` extraction and bids' extraction + context path all
        // share one walk over each row.
        assert_eq!(opt.report().hoist_groups, 1);
        assert_eq!(opt.report().hoisted_sites, 3);
    }

    #[test]
    fn cyclic_condition_hypergraph_blocks_reordering() {
        // firstsubtree touches {S, X} and before touches {S, X}: the
        // condition multigraph has a cycle, so source order is kept even
        // though a swap would put the cheaper filter first.
        let opt = optimized(
            r#"item(S, X) :- document("http://p/", S), subelem(S, (?.li, []), X),
                            firstsubtree(S, X, (.li, [])),
                            before(S, X, (.h1, []), 0, 100)."#,
        );
        assert!(opt.rules[0].cond_order.is_none());
        assert_eq!(opt.report().acyclic_condition_rules, 0);
    }
}
