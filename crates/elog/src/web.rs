//! Web access abstraction.
//!
//! The commercial Lixto fetched live pages; we substitute a [`WebSource`]
//! trait so wrappers run against an in-memory synthetic web (see
//! `lixto-workloads`) with identical code paths — DESIGN.md documents the
//! substitution.

use std::collections::HashMap;
use std::sync::RwLock;

/// Something that can fetch HTML by URL.
pub trait WebSource {
    /// Fetch the page; `None` for 404s.
    fn fetch(&self, url: &str) -> Option<String>;
}

/// A fixed in-memory site map.
#[derive(Debug, Clone, Default)]
pub struct StaticWeb {
    pages: HashMap<String, String>,
}

impl StaticWeb {
    /// Empty web.
    pub fn new() -> StaticWeb {
        StaticWeb::default()
    }

    /// Add (or replace) a page.
    pub fn put(&mut self, url: &str, html: impl Into<String>) {
        self.pages.insert(url.to_string(), html.into());
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

impl WebSource for StaticWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        self.pages.get(url).cloned()
    }
}

/// A mutable in-memory site map behind a lock: pages can change *while*
/// a server (which holds the source behind an immutable `Arc`) keeps
/// fetching — the substrate for continuous-extraction scenarios where
/// "wrappers run continuously against changing web sources".
#[derive(Debug, Default)]
pub struct SharedWeb {
    pages: RwLock<HashMap<String, String>>,
}

impl SharedWeb {
    /// Empty web.
    pub fn new() -> SharedWeb {
        SharedWeb::default()
    }

    /// Add (or replace) a page — through a shared reference, so a test
    /// or workload driver can mutate the site mid-run.
    pub fn put(&self, url: &str, html: impl Into<String>) {
        self.pages
            .write()
            .expect("shared web poisoned")
            .insert(url.to_string(), html.into());
    }

    /// Remove a page (subsequent fetches 404).
    pub fn remove(&self, url: &str) {
        self.pages.write().expect("shared web poisoned").remove(url);
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.read().expect("shared web poisoned").len()
    }

    /// True if no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.pages.read().expect("shared web poisoned").is_empty()
    }
}

impl WebSource for SharedWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        self.pages
            .read()
            .expect("shared web poisoned")
            .get(url)
            .cloned()
    }
}

/// A single-page web (convenience for wrapping one document).
pub struct SinglePage {
    /// The URL the page answers to.
    pub url: String,
    /// Its HTML.
    pub html: String,
}

impl WebSource for SinglePage {
    fn fetch(&self, url: &str) -> Option<String> {
        (url == self.url).then(|| self.html.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_web_fetches() {
        let mut w = StaticWeb::new();
        w.put("http://a/", "<p>a</p>");
        w.put("http://b/", "<p>b</p>");
        assert_eq!(w.fetch("http://a/").unwrap(), "<p>a</p>");
        assert!(w.fetch("http://c/").is_none());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn shared_web_mutates_through_shared_reference() {
        let w = SharedWeb::new();
        w.put("http://a/", "<p>v1</p>");
        assert_eq!(w.fetch("http://a/").unwrap(), "<p>v1</p>");
        w.put("http://a/", "<p>v2</p>");
        assert_eq!(w.fetch("http://a/").unwrap(), "<p>v2</p>");
        w.remove("http://a/");
        assert!(w.fetch("http://a/").is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn single_page() {
        let w = SinglePage {
            url: "u".into(),
            html: "<i>x</i>".into(),
        };
        assert!(w.fetch("u").is_some());
        assert!(w.fetch("v").is_none());
    }
}
