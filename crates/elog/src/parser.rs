//! Textual Elog parser.
//!
//! Accepts the Figure-5 style syntax:
//!
//! ```text
//! tableseq(S, X) :- document("www.ebay.com/", S),
//!                   subsq(S, (.body, []), (.table, []), (.table, []), X),
//!                   before(S, X, (.table, [(elementtext, "item", substr)]), 0, 0, _, _),
//!                   after(S, X, (.hr, []), 0, 0, _, _).
//! record(S, X)   :- tableseq(_, S), subelem(S, (.table, []), X).
//! ```
//!
//! Dialect note (recorded in DESIGN.md): in our element paths `.tag` is a
//! *child* step and `?.tag` a *descendant* step; `*` is a tag wildcard and
//! `/re/` a regex tag test. The paper's examples are written in this
//! dialect throughout the repository.

use crate::ast::{
    AttrCond, AttrMode, Condition, ElementPath, ElogProgram, ElogRule, Extraction, ParentSpec,
    PathStep, TagTest, UrlExpr,
};

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position.
    pub at: usize,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "elog parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an Elog program.
pub fn parse_program(src: &str) -> Result<ElogProgram, ParseError> {
    let mut p = P {
        src: src.as_bytes(),
        text: src,
        pos: 0,
    };
    let mut rules = Vec::new();
    loop {
        p.ws();
        if p.pos >= p.src.len() {
            break;
        }
        rules.push(p.rule()?);
    }
    Ok(ElogProgram { rules })
}

struct P<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl P<'_> {
    fn err(&self, m: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: m.to_string(),
        }
    }

    fn ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.text[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.ws();
        if self.src.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Err(self.err("unterminated string"));
        }
        let s = self.text[start..self.pos].to_string();
        self.pos += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        self.ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        self.text[start..self.pos]
            .parse()
            .map_err(|_| self.err("bad number"))
    }

    /// A variable: an identifier starting with an uppercase letter, or `_`.
    fn var_or_blank(&mut self) -> Result<Option<String>, ParseError> {
        self.ws();
        if self.eat("_") {
            return Ok(None);
        }
        let id = self.ident()?;
        if !id.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return Err(self.err("expected a variable (uppercase) or '_'"));
        }
        Ok(Some(id))
    }

    fn rule(&mut self) -> Result<ElogRule, ParseError> {
        let pattern = self.ident()?;
        self.expect("(")?;
        let _s = self.var_or_blank()?;
        self.expect(",")?;
        let _x = self.var_or_blank()?;
        self.expect(")")?;
        self.expect(":-")?;

        // First body atom: the parent.
        let parent = self.parent_atom()?;
        let mut extraction: Option<Extraction> = None;
        let mut conditions = Vec::new();
        while self.eat(",") {
            self.ws();
            // Peek the atom name.
            let save = self.pos;
            let name = self.ident()?;
            match name.as_str() {
                "subelem" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let path = self.path()?;
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(")")?;
                    extraction = Some(Extraction::Subelem(path));
                }
                "subsq" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let context = self.path()?;
                    self.expect(",")?;
                    let start = self.path()?;
                    self.expect(",")?;
                    let end = self.path()?;
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(")")?;
                    extraction = Some(Extraction::Subsq {
                        context,
                        start,
                        end,
                    });
                }
                "subtext" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let pat = self.string()?;
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(")")?;
                    extraction = Some(Extraction::Subtext(pat));
                }
                "subatt" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let attr = if self.text[self.pos..].trim_start().starts_with('"') {
                        self.string()?
                    } else {
                        self.ident()?
                    };
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(")")?;
                    extraction = Some(Extraction::Subatt(attr));
                }
                "document" => {
                    self.expect("(")?;
                    self.ws();
                    let url = if self.src.get(self.pos) == Some(&b'"') {
                        UrlExpr::Const(self.string()?)
                    } else {
                        match self.var_or_blank()? {
                            Some(v) => UrlExpr::Var(v),
                            None => return Err(self.err("document() needs a URL or variable")),
                        }
                    };
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(")")?;
                    extraction = Some(Extraction::Document(url));
                }
                "before" | "after" | "notbefore" | "notafter" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let path = self.path()?;
                    self.expect(",")?;
                    let min = self.number()?;
                    self.expect(",")?;
                    let max = self.number()?;
                    // Optional trailing ", Y, _" bindings.
                    let mut bind = None;
                    if self.eat(",") {
                        bind = self.var_or_blank()?;
                        if self.eat(",") {
                            self.var_or_blank()?; // second binding slot unused
                        }
                    }
                    self.expect(")")?;
                    let negated = name.starts_with("not");
                    let c = if name.ends_with("before") {
                        Condition::Before {
                            path,
                            min,
                            max,
                            bind,
                            negated,
                        }
                    } else {
                        Condition::After {
                            path,
                            min,
                            max,
                            bind,
                            negated,
                        }
                    };
                    conditions.push(c);
                }
                "contains" | "notcontains" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let path = self.path()?;
                    self.expect(")")?;
                    conditions.push(Condition::Contains {
                        path,
                        negated: name == "notcontains",
                    });
                }
                "firstsubtree" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let path = self.path()?;
                    self.expect(")")?;
                    conditions.push(Condition::FirstSubtree { path });
                }
                "attrbind" => {
                    self.expect("(")?;
                    self.var_or_blank()?;
                    self.expect(",")?;
                    let attr = if self.text[self.pos..].trim_start().starts_with('"') {
                        self.string()?
                    } else {
                        self.ident()?
                    };
                    self.expect(",")?;
                    let var = self
                        .var_or_blank()?
                        .ok_or_else(|| self.err("attrbind needs a variable"))?;
                    self.expect(")")?;
                    conditions.push(Condition::AttrBind { attr, var });
                }
                "range" => {
                    self.expect("(")?;
                    let from = self.number()? as usize;
                    self.expect(",")?;
                    let to = self.number()? as usize;
                    self.expect(")")?;
                    conditions.push(Condition::Range { from, to });
                }
                "lt" | "le" | "gt" | "ge" | "eq" | "ne" => {
                    self.expect("(")?;
                    let left = self
                        .var_or_blank()?
                        .ok_or_else(|| self.err("comparison needs a variable"))?;
                    self.expect(",")?;
                    self.ws();
                    let (right, lit) = if self.src.get(self.pos) == Some(&b'"') {
                        (self.string()?, true)
                    } else {
                        (
                            self.var_or_blank()?
                                .ok_or_else(|| self.err("expected var or literal"))?,
                            false,
                        )
                    };
                    self.expect(")")?;
                    let op = match name.as_str() {
                        "lt" => "<",
                        "le" => "<=",
                        "gt" => ">",
                        "ge" => ">=",
                        "eq" => "=",
                        _ => "!=",
                    };
                    conditions.push(Condition::Comparison {
                        left,
                        op: op.to_string(),
                        right,
                        right_is_literal: lit,
                    });
                }
                other => {
                    // Concept condition `isFoo(Y)` / `notIsFoo(Y)` or a
                    // pattern reference `pat(_, Y)`.
                    self.pos = save;
                    let name = self.ident()?;
                    self.expect("(")?;
                    self.ws();
                    // Pattern ref has the form (_, Y); concept has (Y).
                    if self.src.get(self.pos) == Some(&b'_') {
                        self.pos += 1;
                        self.expect(",")?;
                        let var = self
                            .var_or_blank()?
                            .ok_or_else(|| self.err("pattern reference needs a variable"))?;
                        self.expect(")")?;
                        conditions.push(Condition::PatternRef { pattern: name, var });
                    } else {
                        let var = self
                            .var_or_blank()?
                            .ok_or_else(|| self.err("concept condition needs a variable"))?;
                        self.expect(")")?;
                        let (concept, negated) = match other.strip_prefix("not") {
                            Some(rest) if rest.starts_with(|c: char| c.is_uppercase()) => {
                                // notIsCurrency(Y) style — lowercase the I.
                                let mut s = rest.to_string();
                                s.replace_range(0..1, &rest[0..1].to_lowercase());
                                (s, true)
                            }
                            _ => (name, false),
                        };
                        conditions.push(Condition::Concept {
                            concept,
                            var,
                            negated,
                        });
                    }
                }
            }
        }
        self.expect(".")?;
        Ok(ElogRule {
            pattern,
            parent,
            extraction: extraction.unwrap_or(Extraction::Specialize),
            conditions,
        })
    }

    fn parent_atom(&mut self) -> Result<ParentSpec, ParseError> {
        let name = self.ident()?;
        self.expect("(")?;
        if name == "document" {
            self.ws();
            let url = if self.src.get(self.pos) == Some(&b'"') {
                UrlExpr::Const(self.string()?)
            } else {
                match self.var_or_blank()? {
                    Some(v) => UrlExpr::Var(v),
                    None => return Err(self.err("document() needs a URL")),
                }
            };
            self.expect(",")?;
            self.var_or_blank()?;
            self.expect(")")?;
            Ok(ParentSpec::Document(url))
        } else {
            self.var_or_blank()?;
            self.expect(",")?;
            self.var_or_blank()?;
            self.expect(")")?;
            Ok(ParentSpec::Pattern(name))
        }
    }

    /// A path: `(.a.?.b, [conds])`, or a bare path string `.a.b`.
    fn path(&mut self) -> Result<ElementPath, ParseError> {
        self.ws();
        if self.src.get(self.pos) == Some(&b'(') {
            self.pos += 1;
            let mut p = self.path_steps()?;
            if self.eat(",") {
                self.ws();
                self.expect("[")?;
                loop {
                    self.ws();
                    if self.eat("]") {
                        break;
                    }
                    self.expect("(")?;
                    let attr = if self.src.get(self.pos) == Some(&b'"') {
                        self.string()?
                    } else {
                        self.ident()?
                    };
                    self.expect(",")?;
                    self.ws();
                    let pattern = if self.src.get(self.pos) == Some(&b'"') {
                        self.string()?
                    } else if self.eat("_") {
                        String::new()
                    } else {
                        self.ident()?
                    };
                    self.expect(",")?;
                    let mode = match self.ident()?.as_str() {
                        "exact" => AttrMode::Exact,
                        "substr" => AttrMode::Substr,
                        "regvar" => AttrMode::Regvar,
                        m => return Err(self.err(&format!("unknown attribute mode '{m}'"))),
                    };
                    self.expect(")")?;
                    p.attrs.push(AttrCond {
                        attr,
                        pattern,
                        mode,
                    });
                    if !self.eat(",") && self.eat("]") {
                        break;
                    }
                }
            }
            self.expect(")")?;
            Ok(p)
        } else {
            self.path_steps()
        }
    }

    /// Path steps. Elements are separated by dots; a `?` element makes
    /// the following tag an any-depth (descendant) step, matching the
    /// paper's `?.td.?.a` notation. `*` is a tag wildcard, `/re/` a regex
    /// tag test.
    fn path_steps(&mut self) -> Result<ElementPath, ParseError> {
        self.ws();
        let mut steps = Vec::new();
        let mut descend = false;
        loop {
            match self.src.get(self.pos) {
                Some(b'.') => {
                    self.pos += 1;
                }
                Some(b'?') => {
                    self.pos += 1;
                    descend = true;
                }
                Some(b'*') => {
                    self.pos += 1;
                    steps.push(PathStep {
                        descend,
                        tag: TagTest::Any,
                    });
                    descend = false;
                }
                Some(b'/') => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != b'/' {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.err("unterminated regex tag test"));
                    }
                    let re = self.text[start..self.pos].to_string();
                    self.pos += 1;
                    steps.push(PathStep {
                        descend,
                        tag: TagTest::Regex(re),
                    });
                    descend = false;
                }
                Some(&b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'#' => {
                    let start = self.pos;
                    while self.pos < self.src.len() {
                        let b = self.src[self.pos];
                        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'#' {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    steps.push(PathStep {
                        descend,
                        tag: TagTest::Name(self.text[start..self.pos].to_string()),
                    });
                    descend = false;
                }
                _ => break,
            }
        }
        if steps.is_empty() {
            return Err(self.err("expected a path"));
        }
        Ok(ElementPath {
            steps,
            attrs: Vec::new(),
        })
    }
}

/// The Figure 5 eBay Elog program, in our dialect (used by tests, the
/// examples and the E9 benchmark).
pub const EBAY_PROGRAM: &str = r#"
    tableseq(S, X) :- document("www.ebay.com/", S),
        subsq(S, (.body, []), (.table, []), (.table, []), X),
        before(S, X, (?.table, [(elementtext, "item", substr)]), 0, 0, _, _),
        after(S, X, (?.hr, []), 0, 0, _, _).
    record(S, X) :- tableseq(_, S), subelem(S, (.table, []), X).
    itemdes(S, X) :- record(_, S), subelem(S, (?.td.?.a, []), X).
    price(S, X) :- record(_, S),
        subelem(S, (?.td, [(elementtext, "\var[Y](\$|EUR|DM|Euro)", regvar)]), X),
        isCurrency(Y).
    bids(S, X) :- record(_, S), subelem(S, (?.td, []), X),
        before(S, X, (?.td, []), 0, 30, Y, _), price(_, Y).
    currency(S, X) :- price(_, S), subtext(S, "\var[Y](\$|EUR|DM|Euro)", X), isCurrency(Y).
"#;

#[cfg(test)]
mod tests {
    use super::*;

    const EBAY: &str = EBAY_PROGRAM;

    #[test]
    fn parses_figure_5_program() {
        let p = parse_program(EBAY).unwrap();
        assert_eq!(p.rules.len(), 6);
        assert_eq!(
            p.patterns(),
            vec!["tableseq", "record", "itemdes", "price", "bids", "currency"]
        );
        // tableseq rule shape
        let ts = &p.rules[0];
        assert!(
            matches!(ts.parent, ParentSpec::Document(UrlExpr::Const(ref u)) if u == "www.ebay.com/")
        );
        assert!(matches!(ts.extraction, Extraction::Subsq { .. }));
        assert_eq!(ts.conditions.len(), 2);
        // bids rule has a binding + pattern reference
        let bids = &p.rules[4];
        assert!(matches!(
            &bids.conditions[0],
            Condition::Before { bind: Some(v), max: 30, .. } if v == "Y"
        ));
        assert!(matches!(
            &bids.conditions[1],
            Condition::PatternRef { pattern, var } if pattern == "price" && var == "Y"
        ));
        // currency rule: subtext + concept
        let cur = &p.rules[5];
        assert!(matches!(cur.extraction, Extraction::Subtext(_)));
        assert!(matches!(
            &cur.conditions[0],
            Condition::Concept { concept, negated: false, .. } if concept == "isCurrency"
        ));
    }

    #[test]
    fn paths_with_wildcards_and_regex() {
        let p = parse_program(
            r#"x(S, X) :- page(_, S), subelem(S, (?.*.*, []), X), contains(X, (./t[dh]/, [])).
            "#,
        )
        .unwrap();
        let r = &p.rules[0];
        if let Extraction::Subelem(path) = &r.extraction {
            assert_eq!(path.steps.len(), 2);
            assert!(path.steps[0].descend);
            assert_eq!(path.steps[0].tag, TagTest::Any);
            assert!(!path.steps[1].descend);
        } else {
            panic!("expected subelem");
        }
        assert!(matches!(
            &r.conditions[0],
            Condition::Contains { path, .. }
                if matches!(&path.steps[0].tag, TagTest::Regex(re) if re == "t[dh]")
        ));
    }

    #[test]
    fn specialization_without_extraction() {
        let p = parse_program(
            r#"green(S, X) :- table(_, S), contains(X, (?.td, [(bgcolor, "green", exact)])).
            "#,
        )
        .unwrap();
        assert!(matches!(p.rules[0].extraction, Extraction::Specialize));
    }

    #[test]
    fn range_and_comparisons() {
        let p = parse_program(
            r#"top(S, X) :- list(_, S), subelem(S, (.li, []), X), range(1, 3), lt(X, "100").
            "#,
        )
        .unwrap();
        assert!(matches!(
            p.rules[0].conditions[0],
            Condition::Range { from: 1, to: 3 }
        ));
        assert!(matches!(
            &p.rules[0].conditions[1],
            Condition::Comparison {
                right_is_literal: true,
                ..
            }
        ));
    }

    #[test]
    fn crawl_rule() {
        let p = parse_program(
            r#"page(S, X) :- link(_, S), attrbind(S, href, U), document(U, X).
            "#,
        )
        .unwrap();
        assert!(matches!(
            &p.rules[0].extraction,
            Extraction::Document(UrlExpr::Var(v)) if v == "U"
        ));
    }

    #[test]
    fn errors() {
        assert!(parse_program("x(S, X)").is_err());
        assert!(parse_program("x(S, X) :- y(_, S)").is_err()); // missing dot
        assert!(parse_program("x(s, X) :- y(_, S).").is_err()); // lowercase var
    }
}
