//! # lixto-elog
//!
//! The Elog wrapping language and its Extractor — the internal language of
//! the Lixto Visual Wrapper (Section 3.3 of the PODS 2004 paper).
//!
//! A standard Elog rule is
//!
//! ```text
//! New(S, X) ← Par(_, S), Ex(S, X), Φ(S, X)
//! ```
//!
//! where `S` is the parent-pattern instance variable, `X` the new pattern
//! instance, `Ex` an extraction definition atom and `Φ` a set of condition
//! atoms. Pattern predicates are *binary* — "the binary pattern relations
//! define a multigraph that is the basis of the transformation of the
//! wrapped data into XML" — and that multigraph is exactly the
//! [`InstanceBase`] the Extractor produces.
//!
//! Implemented language features (each mapped to the paper's description):
//!
//! * **tree extraction** `subelem` with element-path expressions: child
//!   (`.td`) and descendant (`?.td`) steps, `*` wildcards, regex tag
//!   tests, attribute conditions `(attr, pattern, exact|substr|regvar)`
//!   including the `elementtext` pseudo-attribute and regex variables
//!   `\var[Y]`;
//! * **sequence extraction** `subsq` (the `<tableseq>` pattern of
//!   Figure 5): maximal runs of consecutive children delimited by start
//!   and end path conditions;
//! * **string extraction** `subtext` (regex over element text, optionally
//!   binding variables) and `subatt` (attribute values);
//! * **context conditions** `before` / `after` / `notbefore` / `notafter`
//!   with distance tolerance intervals, optionally binding the context
//!   node to a variable;
//! * **internal conditions** `contains` / `notcontains` and `firstsubtree`;
//! * **concept conditions** — syntactic (regex: `isCurrency`, `isDate`,
//!   `isNumber`, …) and semantic (ontology table: `isCountry`, …), plus
//!   user-defined ones;
//! * **comparison conditions** on bound variables (dates and numbers);
//! * **pattern references** (`price(_, Y)` in the `<bids>` rule of
//!   Figure 5);
//! * **specialization rules** (rules without an extraction atom, matching
//!   a subset of the parent pattern — footnote 6);
//! * **range criteria** (keep only the i-th…j-th matches);
//! * **`document()` and crawling**: entry rules fetch a URL from a
//!   [`web::WebSource`], crawl rules follow URLs bound from attributes,
//!   enabling recursive wrapping across pages.
//!
//! The Extractor evaluates patterns to a fixpoint (recursion across
//! documents included) and yields the hierarchically ordered
//! [`InstanceBase`], from which `lixto-core`'s XML transformer builds the
//! output document.

#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod concepts;
pub mod eval;
mod exec;
pub mod instances;
pub mod optimize;
pub mod parser;
pub mod path;
pub mod plan;
pub mod pretty;
pub mod web;

pub use ast::{
    AttrCond, AttrMode, Condition, ElementPath, ElogProgram, ElogRule, Extraction, ParentSpec,
    PathStep, TagTest, UrlExpr,
};
pub use concepts::ConceptRegistry;
pub use eval::{ExtractionResult, Extractor, ExtractorOptions};
pub use exec::ExecProbe;
pub use instances::{Instance, InstanceBase, Target};
pub use optimize::{OptimizeReport, OptimizedPlan, Schedule};
pub use parser::{parse_program, ParseError, EBAY_PROGRAM};
pub use plan::{CompileError, WrapperPlan};
pub use web::{SharedWeb, SinglePage, StaticWeb, WebSource};
