//! The pattern instance base.
//!
//! "The Extractor, provided with an HTML document and a previously
//! constructed program, generates as its output a pattern instance base, a
//! data structure encoding the extracted instances as hierarchically
//! ordered trees and strings." (Section 3.1)

use lixto_tree::{Document, NodeId};
use std::sync::Arc;

/// Identifier of a fetched document within one extraction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocId(pub u32);

/// What a pattern instance denotes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// A document tree node.
    Node {
        /// Which fetched document.
        doc: DocId,
        /// The node.
        node: NodeId,
    },
    /// A sequence of consecutive sibling nodes (produced by `subsq`).
    NodeSeq {
        /// Which fetched document.
        doc: DocId,
        /// Members, left to right.
        nodes: Vec<NodeId>,
    },
    /// An extracted string (produced by `subtext` / `subatt`).
    Text(String),
}

/// One pattern instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The pattern this instance belongs to. Shared, not owned: every
    /// instance of a pattern points at the same allocation, so adding an
    /// instance costs a refcount bump instead of a string clone on the
    /// extraction hot path.
    pub pattern: Arc<str>,
    /// Index of the parent instance in the base (None for page-entry
    /// instances).
    pub parent: Option<usize>,
    /// The instance's denotation.
    pub target: Target,
}

/// The hierarchically ordered pattern instance base.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstanceBase {
    /// All instances; children always come after their parent.
    pub instances: Vec<Instance>,
}

impl InstanceBase {
    /// Add an instance; duplicates (same pattern, parent and target) are
    /// ignored. Returns the index and whether it was new.
    pub fn add(&mut self, inst: Instance) -> (usize, bool) {
        if let Some(i) = self.instances.iter().position(|e| {
            e.pattern == inst.pattern && e.parent == inst.parent && e.target == inst.target
        }) {
            return (i, false);
        }
        self.instances.push(inst);
        (self.instances.len() - 1, true)
    }

    /// Indices of all instances of `pattern`.
    pub fn of_pattern(&self, pattern: &str) -> Vec<usize> {
        (0..self.instances.len())
            .filter(|&i| &*self.instances[i].pattern == pattern)
            .collect()
    }

    /// Children of instance `i` (instances whose parent is `i`), in
    /// insertion order.
    pub fn children_of(&self, i: usize) -> Vec<usize> {
        (0..self.instances.len())
            .filter(|&j| self.instances[j].parent == Some(i))
            .collect()
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Is the base empty?
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The textual value of an instance (node text content, concatenated
    /// sequence text, or the extracted string).
    pub fn text_of(&self, i: usize, docs: &[Document]) -> String {
        match &self.instances[i].target {
            Target::Node { doc, node } => docs[doc.0 as usize].text_content(*node),
            Target::NodeSeq { doc, nodes } => {
                let d = &docs[doc.0 as usize];
                nodes.iter().map(|&n| d.text_content(n)).collect()
            }
            Target::Text(s) => s.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_inst(pattern: &str, parent: Option<usize>, node: u32) -> Instance {
        Instance {
            pattern: pattern.into(),
            parent,
            target: Target::Node {
                doc: DocId(0),
                node: NodeId::from_index(node as usize),
            },
        }
    }

    #[test]
    fn dedup_on_add() {
        let mut b = InstanceBase::default();
        let (i0, new0) = b.add(node_inst("rec", None, 1));
        let (i1, new1) = b.add(node_inst("rec", None, 1));
        assert!(new0 && !new1);
        assert_eq!(i0, i1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn hierarchy_queries() {
        let mut b = InstanceBase::default();
        let (root, _) = b.add(node_inst("page", None, 0));
        let (r1, _) = b.add(node_inst("rec", Some(root), 1));
        let (_r2, _) = b.add(node_inst("rec", Some(root), 2));
        let (_p1, _) = b.add(node_inst("price", Some(r1), 3));
        assert_eq!(b.of_pattern("rec").len(), 2);
        assert_eq!(b.children_of(root).len(), 2);
        assert_eq!(b.children_of(r1).len(), 1);
    }
}
