//! Elog abstract syntax.

use std::fmt;

/// How an attribute condition matches its pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrMode {
    /// Value equals the pattern string.
    Exact,
    /// Value contains the pattern as a substring.
    Substr,
    /// Value matches the pattern as a regex; `\var[V]` segments bind
    /// string variables.
    Regvar,
}

/// An attribute condition inside a path step:
/// `(attr, pattern, mode)`. `attr == "elementtext"` matches against the
/// node's text content (the paper's pseudo-attribute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrCond {
    /// Attribute name or `elementtext`.
    pub attr: String,
    /// Pattern (literal or regex depending on mode; may contain
    /// `\var[V]`).
    pub pattern: String,
    /// Matching mode.
    pub mode: AttrMode,
}

/// A tag test within a path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagTest {
    /// Exact tag name.
    Name(String),
    /// `*` — any element.
    Any,
    /// Regular expression over the tag name.
    Regex(String),
}

/// One step of an element path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// `true` for `?.tag` — the tag may occur at any depth below the
    /// previous step ("certain regular expressions over tag names"; `?`
    /// is Lixto's arbitrary-depth wildcard).
    pub descend: bool,
    /// The tag test.
    pub tag: TagTest,
}

/// An element path with optional attribute conditions on the final node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ElementPath {
    /// The steps, outermost first.
    pub steps: Vec<PathStep>,
    /// Attribute conditions on the target node.
    pub attrs: Vec<AttrCond>,
}

impl ElementPath {
    /// Path with child steps only (`.a.b`).
    pub fn children(names: &[&str]) -> ElementPath {
        ElementPath {
            steps: names
                .iter()
                .map(|n| PathStep {
                    descend: false,
                    tag: TagTest::Name(n.to_string()),
                })
                .collect(),
            attrs: Vec::new(),
        }
    }

    /// Path `?.name` — the tag anywhere below the context.
    pub fn anywhere(name: &str) -> ElementPath {
        ElementPath {
            steps: vec![PathStep {
                descend: true,
                tag: TagTest::Name(name.to_string()),
            }],
            attrs: Vec::new(),
        }
    }

    /// Builder: add an attribute condition.
    pub fn with_attr(mut self, attr: &str, pattern: &str, mode: AttrMode) -> ElementPath {
        self.attrs.push(AttrCond {
            attr: attr.to_string(),
            pattern: pattern.to_string(),
            mode,
        });
        self
    }
}

/// URL sources for `document()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlExpr {
    /// A fixed URL.
    Const(String),
    /// A string variable bound by a condition in the same rule.
    Var(String),
}

/// The parent-instance source of a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParentSpec {
    /// `Par(_, S)` — instances of another pattern.
    Pattern(String),
    /// `document(url, S)` — S is the root of the fetched page (an entry
    /// rule).
    Document(UrlExpr),
}

/// Extraction definition atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extraction {
    /// `subelem(S, path, X)` — tree extraction.
    Subelem(ElementPath),
    /// `subsq(S, context, start, end, X)` — sequence extraction.
    Subsq {
        /// Path from S to the node whose children are scanned.
        context: ElementPath,
        /// Tag test the first sequence member must satisfy.
        start: ElementPath,
        /// Tag test the last member must satisfy.
        end: ElementPath,
    },
    /// `subtext(S, regex, X)` — string extraction; `\var[V]` binds V to
    /// the matched text.
    Subtext(String),
    /// `subatt(S, attr, X)` — attribute value extraction.
    Subatt(String),
    /// `document(U, X)` — crawl: X is the root of the page at U.
    Document(UrlExpr),
    /// Specialization rule: X := S (no extraction atom — footnote 6).
    Specialize,
}

/// Condition atoms Φ(S, X).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `before(S, X, path, min, max, Y?)`: a node matching `path` inside S
    /// whose subtree ends within [min, max] nodes before X starts.
    /// `negated` renders it `notbefore`.
    Before {
        /// Path of the context node, searched within S.
        path: ElementPath,
        /// Minimum distance (in document-order positions).
        min: u32,
        /// Maximum distance.
        max: u32,
        /// Bind the context node to this variable.
        bind: Option<String>,
        /// `notbefore` when true.
        negated: bool,
    },
    /// `after(S, X, path, min, max, Y?)` — mirror image of `Before`.
    After {
        /// Path of the context node.
        path: ElementPath,
        /// Minimum distance.
        min: u32,
        /// Maximum distance.
        max: u32,
        /// Bind the context node.
        bind: Option<String>,
        /// `notafter` when true.
        negated: bool,
    },
    /// `contains(X, path)` — internal condition on X's subtree.
    Contains {
        /// Path searched within X.
        path: ElementPath,
        /// `notcontains` when true.
        negated: bool,
    },
    /// `firstsubtree(S, X, path)` — X is the first (in document order)
    /// match of `path` within S.
    FirstSubtree {
        /// The path.
        path: ElementPath,
    },
    /// Concept condition `isDate(V)`, `isCurrency(V)`, … on a bound
    /// variable (or on X via the variable name `"X"`).
    Concept {
        /// Concept name.
        concept: String,
        /// The variable to test.
        var: String,
        /// Negated form.
        negated: bool,
    },
    /// Comparison of two bound values, e.g. `<(Y, Z)`; values are parsed
    /// as dates or numbers.
    Comparison {
        /// Left variable.
        left: String,
        /// One of `<`, `<=`, `>`, `>=`, `=`, `!=`.
        op: String,
        /// Right variable or literal (literal when quoted in source).
        right: String,
        /// True if `right` is a literal.
        right_is_literal: bool,
    },
    /// Pattern reference `pat(_, Y)` — the node bound to Y must be an
    /// instance of `pat`.
    PatternRef {
        /// Referenced pattern.
        pattern: String,
        /// The bound variable.
        var: String,
    },
    /// `attrbind(S, attr, V)` — bind an attribute value of the parent
    /// node S (used to feed crawl rules).
    AttrBind {
        /// Attribute name.
        attr: String,
        /// Variable receiving the value.
        var: String,
    },
    /// Range criterion `range(i, j)` — keep only the i-th…j-th matches
    /// (1-based, per parent instance, in document order).
    Range {
        /// First kept index.
        from: usize,
        /// Last kept index.
        to: usize,
    },
}

/// One Elog rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ElogRule {
    /// The defined pattern (head predicate).
    pub pattern: String,
    /// Parent source.
    pub parent: ParentSpec,
    /// Extraction atom.
    pub extraction: Extraction,
    /// Conditions.
    pub conditions: Vec<Condition>,
}

/// An Elog program: a set of rules. A pattern may have several rules
/// (filters) — their matches union, the monotone semantics the paper
/// credits for making wrapper construction modular.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElogProgram {
    /// The rules in source order.
    pub rules: Vec<ElogRule>,
}

impl ElogProgram {
    /// All pattern names, in first-definition order.
    pub fn patterns(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.pattern.as_str()) {
                out.push(&r.pattern);
            }
        }
        out
    }

    /// Program size (rules + conditions) — |P| for complexity statements.
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| 2 + r.conditions.len()).sum()
    }
}

impl fmt::Display for ElogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{}", crate::pretty::rule_to_string(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_builders() {
        let p = ElementPath::children(&["body", "table"]);
        assert_eq!(p.steps.len(), 2);
        assert!(!p.steps[0].descend);
        let q = ElementPath::anywhere("td").with_attr("elementtext", "item", AttrMode::Substr);
        assert!(q.steps[0].descend);
        assert_eq!(q.attrs.len(), 1);
    }

    #[test]
    fn pattern_listing_keeps_order() {
        let prog = ElogProgram {
            rules: vec![
                ElogRule {
                    pattern: "b".into(),
                    parent: ParentSpec::Pattern("a".into()),
                    extraction: Extraction::Subelem(ElementPath::anywhere("td")),
                    conditions: vec![],
                },
                ElogRule {
                    pattern: "a".into(),
                    parent: ParentSpec::Document(UrlExpr::Const("u".into())),
                    extraction: Extraction::Specialize,
                    conditions: vec![],
                },
                ElogRule {
                    pattern: "b".into(),
                    parent: ParentSpec::Pattern("a".into()),
                    extraction: Extraction::Subelem(ElementPath::anywhere("th")),
                    conditions: vec![],
                },
            ],
        };
        assert_eq!(prog.patterns(), vec!["b", "a"]);
        assert_eq!(prog.size(), 6);
    }
}
