//! Automata operations: products, projection, and a closure-driven builder
//! for small hand-specified automata.

use std::collections::HashMap;

use crate::dta::Dta;
use crate::nta::{Nta, SymbolClass};

/// Build a total DTA by enumerating every transition key and asking `f`
/// for the successor. `f` receives (left state, right state, symbol class,
/// bits).
pub fn build_dta(
    n_states: u32,
    labels: Vec<String>,
    n_bits: u32,
    bot: u32,
    accepting: Vec<bool>,
    f: impl Fn(u32, u32, SymbolClass, u32) -> u32,
) -> Dta {
    assert_eq!(accepting.len(), n_states as usize);
    let classes: Vec<SymbolClass> = (0..labels.len() as u16)
        .map(SymbolClass::Known)
        .chain(std::iter::once(SymbolClass::Other))
        .collect();
    let mut delta = HashMap::new();
    for l in 0..n_states {
        for r in 0..n_states {
            for &sym in &classes {
                for bits in 0..(1u32 << n_bits) {
                    let q = f(l, r, sym, bits);
                    debug_assert!(q < n_states);
                    delta.insert((l, r, sym, bits), q);
                }
            }
        }
    }
    Dta {
        n_states,
        labels,
        n_bits,
        delta,
        bot,
        accepting,
    }
}

/// Product of two total DTAs over the **same** labels and bit count;
/// acceptance decided by `accept` on the component acceptances.
pub fn product(a: &Dta, b: &Dta, accept: impl Fn(bool, bool) -> bool) -> Dta {
    assert_eq!(a.labels, b.labels, "align labels before taking products");
    assert_eq!(a.n_bits, b.n_bits);
    let n = a.n_states * b.n_states;
    let pair = |x: u32, y: u32| x * b.n_states + y;
    let mut delta = HashMap::new();
    for ((la, ra, sym, bits), &qa) in &a.delta {
        for xb in 0..b.n_states {
            for yb in 0..b.n_states {
                let qb = b.delta[&(xb, yb, *sym, *bits)];
                delta.insert((pair(*la, xb), pair(*ra, yb), *sym, *bits), pair(qa, qb));
            }
        }
    }
    let mut accepting = vec![false; n as usize];
    for x in 0..a.n_states {
        for y in 0..b.n_states {
            accepting[pair(x, y) as usize] =
                accept(a.accepting[x as usize], b.accepting[y as usize]);
        }
    }
    Dta {
        n_states: n,
        labels: a.labels.clone(),
        n_bits: a.n_bits,
        delta,
        bot: pair(a.bot, b.bot),
        accepting,
    }
}

/// Rewrite a DTA so its label vocabulary becomes `labels` (a superset of
/// the current one): transitions for newly distinguished labels copy the
/// `Other` behaviour.
pub fn widen_labels(a: &Dta, labels: &[String]) -> Dta {
    for l in &a.labels {
        assert!(labels.contains(l), "widen_labels only adds labels");
    }
    let remap = |sym: SymbolClass| -> SymbolClass {
        match sym {
            SymbolClass::Known(i) => {
                let name = &a.labels[i as usize];
                let j = labels.iter().position(|l| l == name).unwrap();
                SymbolClass::Known(j as u16)
            }
            SymbolClass::Other => SymbolClass::Other,
        }
    };
    let mut delta = HashMap::new();
    for ((l, r, sym, bits), &q) in &a.delta {
        match sym {
            SymbolClass::Known(_) => {
                delta.insert((*l, *r, remap(*sym), *bits), q);
            }
            SymbolClass::Other => {
                // Other keeps its entry and additionally covers every label
                // in the widened vocabulary that `a` did not know.
                delta.insert((*l, *r, SymbolClass::Other, *bits), q);
                for (j, name) in labels.iter().enumerate() {
                    if !a.labels.contains(name) {
                        delta.insert((*l, *r, SymbolClass::Known(j as u16), *bits), q);
                    }
                }
            }
        }
    }
    Dta {
        n_states: a.n_states,
        labels: labels.to_vec(),
        n_bits: a.n_bits,
        delta,
        bot: a.bot,
        accepting: a.accepting.clone(),
    }
}

/// Existential projection of bit `k`: the resulting NTA ignores input bit
/// `k` (callers feed 0) and may behave as if it were either value.
pub fn project_bit(a: &Dta, k: u32) -> Nta {
    assert!(k < a.n_bits);
    let mask = 1u32 << k;
    let mut nta = Nta {
        n_states: a.n_states,
        labels: a.labels.clone(),
        n_bits: a.n_bits,
        transitions: HashMap::new(),
        bot: a.bot,
        accepting: a
            .accepting
            .iter()
            .enumerate()
            .filter(|(_, &acc)| acc)
            .map(|(i, _)| i as u32)
            .collect(),
    };
    for ((l, r, sym, bits), &q) in &a.delta {
        let key_bits = bits & !mask;
        nta.add_transition(*l, *r, *sym, key_bits, q);
    }
    nta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::determinize;
    use crate::nta::contains_label;

    fn contains_dta(label: &str) -> Dta {
        determinize(&contains_label(label))
    }

    #[test]
    fn product_and_or() {
        let labels = vec!["i".to_string(), "b".to_string()];
        let a = widen_labels(&contains_dta("i"), &labels);
        let b = widen_labels(&contains_dta("b"), &labels);
        let both = product(&a, &b, |x, y| x && y);
        let either = product(&a, &b, |x, y| x || y);
        let cases = [
            ("<p><i>x</i><b>y</b></p>", true, true),
            ("<p><i>x</i></p>", false, true),
            ("<p><b>x</b></p>", false, true),
            ("<p><u>x</u></p>", false, false),
        ];
        for (html, want_both, want_either) in cases {
            let doc = lixto_html::parse(html);
            assert_eq!(both.accepts(&doc), want_both, "{html}");
            assert_eq!(either.accepts(&doc), want_either, "{html}");
        }
    }

    #[test]
    fn widen_preserves_language() {
        let a = contains_dta("i");
        let w = widen_labels(&a, &["i".to_string(), "table".to_string()]);
        for html in ["<p><i>x</i></p>", "<table><td>y</td></table>", "<p/>"] {
            let doc = lixto_html::parse(html);
            assert_eq!(a.accepts(&doc), w.accepts(&doc), "{html}");
        }
    }

    #[test]
    fn build_dta_is_total() {
        // Trivial one-state automaton accepting everything.
        let d = build_dta(1, vec![], 0, 0, vec![true], |_, _, _, _| 0);
        assert!(d.accepts(&lixto_html::parse("<p>x</p>")));
    }

    #[test]
    fn projection_guesses_bit() {
        // Automaton over one bit accepting iff some node has the bit AND
        // label "i" — after projection, equivalent to contains("i").
        let labels = vec!["i".to_string()];
        let marked_i = build_dta(
            3,
            labels,
            1,
            0,
            vec![false, true, false],
            |l, r, sym, bits| {
                let seen = u32::from(l == 1) + u32::from(r == 1);
                if l == 2 || r == 2 || seen > 1 {
                    return 2;
                }
                if bits & 1 != 0 {
                    if sym == SymbolClass::Known(0) && seen == 0 {
                        1
                    } else {
                        2
                    }
                } else if seen == 1 {
                    1
                } else {
                    0
                }
            },
        );
        let projected = determinize(&project_bit(&marked_i, 0));
        let with_i = lixto_html::parse("<p><i>x</i></p>");
        let without = lixto_html::parse("<p><b>x</b></p>");
        assert!(projected.accepts(&with_i));
        assert!(!projected.accepts(&without));
    }
}
