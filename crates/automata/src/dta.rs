//! Deterministic bottom-up tree automata and determinization.

use std::collections::HashMap;

use lixto_tree::{Document, NodeId};

use crate::binenc;
use crate::nta::{Nta, SymbolClass};

/// A deterministic, *complete* bottom-up tree automaton over the binary
/// encoding. For every (left, right, symbol class, bits) exactly one
/// successor state exists (missing table entries go to the implicit dead
/// state `n_states - 1` by construction in [`determinize`]; hand-built
/// automata must be total).
#[derive(Debug, Clone)]
pub struct Dta {
    /// Number of states.
    pub n_states: u32,
    /// Distinguished labels (everything else is `Other`).
    pub labels: Vec<String>,
    /// Number of variable bits.
    pub n_bits: u32,
    /// Total transition function.
    pub delta: HashMap<(u32, u32, SymbolClass, u32), u32>,
    /// State of missing children.
    pub bot: u32,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Dta {
    fn classify(&self, label: &str) -> SymbolClass {
        match self.labels.iter().position(|l| l == label) {
            Some(i) => SymbolClass::Known(i as u16),
            None => SymbolClass::Other,
        }
    }

    /// All symbol classes of this automaton (each known label + Other).
    pub fn symbol_classes(&self) -> Vec<SymbolClass> {
        (0..self.labels.len() as u16)
            .map(SymbolClass::Known)
            .chain(std::iter::once(SymbolClass::Other))
            .collect()
    }

    /// The unique run: state per node, bottom-up.
    pub fn run(&self, doc: &Document, bits_of: &dyn Fn(NodeId) -> u32) -> Vec<u32> {
        let mut state = vec![0u32; doc.len()];
        for n in binenc::bottom_up_order(doc) {
            let l = binenc::left(doc, n).map_or(self.bot, |c| state[c.index()]);
            let r = binenc::right(doc, n).map_or(self.bot, |c| state[c.index()]);
            let sym = self.classify(doc.label_str(n));
            let bits = bits_of(n);
            state[n.index()] = *self
                .delta
                .get(&(l, r, sym, bits))
                .expect("DTA must be total over its alphabet");
        }
        state
    }

    /// Boolean acceptance.
    pub fn accepts(&self, doc: &Document) -> bool {
        let run = self.run(doc, &|_| 0);
        self.accepting[run[doc.root().index()] as usize]
    }

    /// Complement (flip acceptance — sound because the automaton is
    /// complete and deterministic).
    pub fn complement(&self) -> Dta {
        let mut c = self.clone();
        for a in &mut c.accepting {
            *a = !*a;
        }
        c
    }
}

/// Subset-construction determinization. The subset containing only
/// unreachable combinations is never materialized: we explore from the
/// `{bot}` set through all symbols, so the result has one state per
/// *reachable* subset plus nothing else.
pub fn determinize(nta: &Nta) -> Dta {
    let classes: Vec<SymbolClass> = (0..nta.labels.len() as u16)
        .map(SymbolClass::Known)
        .chain(std::iter::once(SymbolClass::Other))
        .collect();
    let all_bits: Vec<u32> = (0..(1u32 << nta.n_bits)).collect();

    // Subsets are sorted Vec<u32>, interned.
    let mut subset_id: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut subsets: Vec<Vec<u32>> = Vec::new();
    let intern = |s: Vec<u32>,
                  subsets: &mut Vec<Vec<u32>>,
                  subset_id: &mut HashMap<Vec<u32>, u32>|
     -> (u32, bool) {
        if let Some(&i) = subset_id.get(&s) {
            return (i, false);
        }
        let i = subsets.len() as u32;
        subset_id.insert(s.clone(), i);
        subsets.push(s);
        (i, true)
    };

    let (bot_id, _) = intern(vec![nta.bot], &mut subsets, &mut subset_id);
    let mut delta: HashMap<(u32, u32, SymbolClass, u32), u32> = HashMap::new();
    // Work through pairs of known subsets until closure. Simple worklist
    // over the cross product of current subsets.
    let mut frontier = true;
    while frontier {
        frontier = false;
        let current = subsets.clone();
        for (li, lset) in current.iter().enumerate() {
            for (ri, rset) in current.iter().enumerate() {
                for &sym in &classes {
                    for &bits in &all_bits {
                        let key = (li as u32, ri as u32, sym, bits);
                        if delta.contains_key(&key) {
                            continue;
                        }
                        let mut out: Vec<u32> = Vec::new();
                        for &lq in lset {
                            for &rq in rset {
                                if let Some(ts) = nta.transitions.get(&(lq, rq, sym, bits)) {
                                    out.extend(ts.iter().copied());
                                }
                            }
                        }
                        out.sort_unstable();
                        out.dedup();
                        let (oid, fresh) = intern(out, &mut subsets, &mut subset_id);
                        delta.insert(key, oid);
                        if fresh {
                            frontier = true;
                        }
                    }
                }
            }
        }
    }
    let accepting: Vec<bool> = subsets
        .iter()
        .map(|s| s.iter().any(|q| nta.accepting.contains(q)))
        .collect();
    Dta {
        n_states: subsets.len() as u32,
        labels: nta.labels.clone(),
        n_bits: nta.n_bits,
        delta,
        bot: bot_id,
        accepting,
    }
}

/// Shrink a DTA: drop unreachable states, then merge observationally
/// equivalent ones (partition refinement — the Myhill–Nerode construction
/// for tree automata).
///
/// Keeping intermediate automata minimal is what makes the MSO compilation
/// pipeline feasible: products multiply state counts, but almost all pairs
/// collapse into a handful of behaviours.
pub fn reduce(d: &Dta) -> Dta {
    // --- 1. Reachability from {bot} through all transitions.
    let mut reach = vec![false; d.n_states as usize];
    reach[d.bot as usize] = true;
    let mut grew = true;
    while grew {
        grew = false;
        for ((l, r, _, _), &q) in &d.delta {
            if reach[*l as usize] && reach[*r as usize] && !reach[q as usize] {
                reach[q as usize] = true;
                grew = true;
            }
        }
    }
    let kept: Vec<u32> = (0..d.n_states).filter(|&q| reach[q as usize]).collect();
    let renum: HashMap<u32, u32> = kept
        .iter()
        .enumerate()
        .map(|(i, &q)| (q, i as u32))
        .collect();
    let n = kept.len() as u32;
    let mut delta: HashMap<(u32, u32, SymbolClass, u32), u32> = HashMap::new();
    for ((l, r, sym, bits), &q) in &d.delta {
        if let (Some(&l2), Some(&r2), Some(&q2)) = (renum.get(l), renum.get(r), renum.get(&q)) {
            delta.insert((l2, r2, *sym, *bits), q2);
        }
    }
    let accepting: Vec<bool> = kept.iter().map(|&q| d.accepting[q as usize]).collect();
    let bot = renum[&d.bot];

    // --- 2. Partition refinement.
    let classes: Vec<SymbolClass> = (0..d.labels.len() as u16)
        .map(SymbolClass::Known)
        .chain(std::iter::once(SymbolClass::Other))
        .collect();
    let mut block: Vec<u32> = accepting.iter().map(|&a| u32::from(a)).collect();
    loop {
        // Signature of each state under the current partition.
        let mut sig_of: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut next: Vec<u32> = vec![0; n as usize];
        for p in 0..n {
            let mut sig = vec![block[p as usize]];
            for s in 0..n {
                for &sym in &classes {
                    for bits in 0..(1u32 << d.n_bits) {
                        sig.push(block[delta[&(p, s, sym, bits)] as usize]);
                        sig.push(block[delta[&(s, p, sym, bits)] as usize]);
                    }
                }
            }
            let next_id = sig_of.len() as u32;
            let id = *sig_of.entry(sig).or_insert(next_id);
            next[p as usize] = id;
        }
        if next == block {
            break;
        }
        block = next;
    }
    let n_blocks = block.iter().copied().max().unwrap_or(0) + 1;
    let mut bdelta: HashMap<(u32, u32, SymbolClass, u32), u32> = HashMap::new();
    for ((l, r, sym, bits), &q) in &delta {
        bdelta.insert(
            (block[*l as usize], block[*r as usize], *sym, *bits),
            block[q as usize],
        );
    }
    let mut bacc = vec![false; n_blocks as usize];
    for q in 0..n {
        if accepting[q as usize] {
            bacc[block[q as usize] as usize] = true;
        }
    }
    Dta {
        n_states: n_blocks,
        labels: d.labels.clone(),
        n_bits: d.n_bits,
        delta: bdelta,
        bot: block[bot as usize],
        accepting: bacc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nta::contains_label;

    #[test]
    fn determinized_agrees_with_nta() {
        let nta = contains_label("i");
        let dta = determinize(&nta);
        for html in [
            "<p><i>x</i></p>",
            "<p><b>x</b></p>",
            "<i/>",
            "<div><div><span><i>deep</i></span></div></div>",
        ] {
            let doc = lixto_html::parse(html);
            assert_eq!(nta.accepts(&doc), dta.accepts(&doc), "{html}");
        }
    }

    #[test]
    fn complement_flips_acceptance() {
        let dta = determinize(&contains_label("i"));
        let not = dta.complement();
        let with_i = lixto_html::parse("<p><i>x</i></p>");
        let without = lixto_html::parse("<p><b>x</b></p>");
        assert!(dta.accepts(&with_i) && !not.accepts(&with_i));
        assert!(!dta.accepts(&without) && not.accepts(&without));
    }

    #[test]
    fn reduce_preserves_language_and_shrinks() {
        let dta = determinize(&contains_label("i"));
        // Blow the automaton up with a self-product, then reduce.
        let blown = crate::ops::product(&dta, &dta, |x, y| x && y);
        let small = reduce(&blown);
        assert!(small.n_states <= dta.n_states);
        for html in ["<p><i>x</i></p>", "<p><b>x</b></p>", "<i/>", "<div/>"] {
            let doc = lixto_html::parse(html);
            assert_eq!(blown.accepts(&doc), small.accepts(&doc), "{html}");
        }
    }

    #[test]
    fn run_assigns_states_bottom_up() {
        let dta = determinize(&contains_label("i"));
        let doc = lixto_html::parse("<p><i>x</i></p>");
        let run = dta.run(&doc, &|_| 0);
        assert!(dta.accepting[run[doc.root().index()] as usize]);
    }
}
