//! The first-child/next-sibling binary encoding (Figure 1 of the paper).
//!
//! An unranked tree becomes a binary tree over the same node set:
//! `left(u) = firstchild(u)`, `right(u) = nextsibling(u)`. Bottom-up
//! automaton runs need each node's children states *before* the node
//! itself; since both `firstchild(u)` and `nextsibling(u)` come strictly
//! after `u` in document order, **reverse document order** is a valid
//! bottom-up schedule — no recursion, no explicit binary tree.

use lixto_tree::{Document, NodeId};

/// Left child in the binary encoding.
#[inline]
pub fn left(doc: &Document, n: NodeId) -> Option<NodeId> {
    doc.first_child(n)
}

/// Right child in the binary encoding.
#[inline]
pub fn right(doc: &Document, n: NodeId) -> Option<NodeId> {
    doc.next_sibling(n)
}

/// The root of the binary tree (same as the document root).
#[inline]
pub fn root(doc: &Document) -> NodeId {
    doc.root()
}

/// Nodes in a valid bottom-up order for the binary encoding (reverse
/// document order).
pub fn bottom_up_order(doc: &Document) -> impl Iterator<Item = NodeId> + '_ {
    doc.order().preorder().iter().rev().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_tree::build::from_sexp;

    #[test]
    fn figure_1_encoding() {
        // Paper Figure 1: n1 with children n2, n3, n6; n3 with n4, n5.
        let doc = from_sexp("(n1 (n2) (n3 (n4) (n5)) (n6))").unwrap();
        let ids: Vec<_> = doc.order().preorder().to_vec();
        let (n1, n2, n3, n4, n5, n6) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        assert_eq!(left(&doc, n1), Some(n2));
        assert_eq!(right(&doc, n2), Some(n3));
        assert_eq!(left(&doc, n3), Some(n4));
        assert_eq!(right(&doc, n4), Some(n5));
        assert_eq!(right(&doc, n3), Some(n6));
        assert_eq!(right(&doc, n1), None);
        assert_eq!(left(&doc, n2), None);
    }

    #[test]
    fn bottom_up_order_sees_children_first() {
        let doc = from_sexp("(a (b (c) (d)) (e))").unwrap();
        let order: Vec<_> = bottom_up_order(&doc).collect();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for n in doc.node_ids() {
            if let Some(l) = left(&doc, n) {
                assert!(pos(l) < pos(n));
            }
            if let Some(r) = right(&doc, n) {
                assert!(pos(r) < pos(n));
            }
        }
    }
}
