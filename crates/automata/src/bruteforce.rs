//! Direct MSO model checking by exhaustive quantifier expansion.
//!
//! Exponential in the number of set quantifiers (2^|dom| assignments each),
//! so strictly a test oracle for small documents — which is exactly its
//! job: cross-validating the automaton pipeline in [`mso`](crate::mso).

use std::collections::HashMap;

use lixto_tree::{Document, NodeId};

use crate::mso::Mso;

/// Variable assignment: first-order variables map to a node, second-order
/// to a set of nodes (represented as a bitmask over node indices).
#[derive(Debug, Clone, Default)]
pub struct Env {
    fo: HashMap<String, NodeId>,
    so: HashMap<String, u128>,
}

/// Evaluate a closed-except-`free_var` unary formula brute-force.
///
/// # Panics
/// Panics if the document has more than 128 nodes (set quantification uses
/// a u128 bitmask) — intentional, this is a small-input oracle.
pub fn eval_unary(doc: &Document, free_var: &str, phi: &Mso) -> Vec<NodeId> {
    assert!(
        doc.len() <= 128,
        "brute-force MSO oracle is for tiny documents"
    );
    doc.order()
        .preorder()
        .iter()
        .copied()
        .filter(|&n| {
            let mut env = Env::default();
            env.fo.insert(free_var.to_string(), n);
            holds(doc, phi, &mut env)
        })
        .collect()
}

/// Does `phi` hold under `env`?
pub fn holds(doc: &Document, phi: &Mso, env: &mut Env) -> bool {
    match phi {
        Mso::Label(x, a) => doc.has_label(env.fo[x], a),
        Mso::FirstChild(x, y) => doc.first_child(env.fo[x]) == Some(env.fo[y]),
        Mso::NextSibling(x, y) => doc.next_sibling(env.fo[x]) == Some(env.fo[y]),
        Mso::Root(x) => doc.is_root(env.fo[x]),
        Mso::Leaf(x) => doc.is_leaf(env.fo[x]),
        Mso::LastSibling(x) => doc.is_last_sibling(env.fo[x]),
        Mso::In(x, set) => env.so[set] & (1u128 << env.fo[x].index()) != 0,
        Mso::And(a, b) => holds(doc, a, env) && holds(doc, b, env),
        Mso::Or(a, b) => holds(doc, a, env) || holds(doc, b, env),
        Mso::Not(a) => !holds(doc, a, env),
        Mso::ExistsFo(v, a) => {
            for n in doc.node_ids() {
                env.fo.insert(v.clone(), n);
                let ok = holds(doc, a, env);
                env.fo.remove(v);
                if ok {
                    return true;
                }
            }
            false
        }
        Mso::ExistsSo(v, a) => {
            let limit = 1u128 << doc.len();
            let mut set = 0u128;
            loop {
                env.so.insert(v.clone(), set);
                let ok = holds(doc, a, env);
                env.so.remove(v);
                if ok {
                    return true;
                }
                set += 1;
                if set == limit {
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mso::{and, exists_fo, exists_so, label, member, not};

    #[test]
    fn label_query() {
        let doc = lixto_html::parse("<ul><li>a</li><li>b</li></ul>");
        let sel = eval_unary(&doc, "x", &label("x", "li"));
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn existential_set() {
        // ∃X (x ∈ X) is trivially true for every node.
        let doc = lixto_html::parse("<p>a</p>");
        let phi = exists_so("X", member("x", "X"));
        assert_eq!(eval_unary(&doc, "x", &phi).len(), doc.len());
        // ∃X (x ∈ X ∧ ¬(x ∈ X)) is unsatisfiable.
        let phi2 = exists_so("X", and(member("x", "X"), not(member("x", "X"))));
        assert!(eval_unary(&doc, "x", &phi2).is_empty());
    }

    #[test]
    fn existential_fo_scoping() {
        let doc = lixto_html::parse("<p><i>a</i></p>");
        // x such that some node is labeled i — true everywhere.
        let phi = exists_fo("y", label("y", "i"));
        assert_eq!(eval_unary(&doc, "x", &phi).len(), doc.len());
    }
}
