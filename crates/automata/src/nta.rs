//! Nondeterministic bottom-up tree automata over the binary encoding.
//!
//! Symbols are pairs (label class, variable-bit vector). Label classes are
//! the labels the automaton explicitly mentions plus a catch-all `Other`,
//! so automata stay finite while documents use open label sets. Missing
//! children (the binary encoding is partial) are modeled by the designated
//! `bot` pseudo-state.

use std::collections::{HashMap, HashSet};

use lixto_tree::{Document, NodeId};

use crate::binenc;

/// A label class: one of the automaton's known labels, or anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolClass {
    /// Index into [`Nta::labels`].
    Known(u16),
    /// Any label the automaton does not mention.
    Other,
}

/// Key of the transition table: (left state, right state, label class,
/// variable bits).
pub type TransKey = (u32, u32, SymbolClass, u32);

/// A nondeterministic bottom-up tree automaton.
///
/// States are `0..n_states`. `bot` is the state assigned to missing
/// children. A tree is accepted iff some run assigns an accepting state to
/// the (binary) root.
#[derive(Debug, Clone)]
pub struct Nta {
    /// Number of states.
    pub n_states: u32,
    /// Labels this automaton distinguishes; everything else is
    /// [`SymbolClass::Other`].
    pub labels: Vec<String>,
    /// Number of variable bits in the alphabet (0 for Boolean automata).
    pub n_bits: u32,
    /// Transition relation.
    pub transitions: HashMap<TransKey, Vec<u32>>,
    /// Pseudo-state for missing children.
    pub bot: u32,
    /// Accepting states (at the binary root).
    pub accepting: HashSet<u32>,
}

impl Nta {
    /// Resolve a document label to this automaton's symbol class.
    pub fn classify(&self, label: &str) -> SymbolClass {
        match self.labels.iter().position(|l| l == label) {
            Some(i) => SymbolClass::Known(i as u16),
            None => SymbolClass::Other,
        }
    }

    /// Add a transition (builder-style helper).
    pub fn add_transition(&mut self, l: u32, r: u32, sym: SymbolClass, bits: u32, to: u32) {
        self.transitions
            .entry((l, r, sym, bits))
            .or_default()
            .push(to);
    }

    /// Run the automaton on `doc` with per-node variable bits supplied by
    /// `bits_of`. Returns, for every node, the set of reachable states
    /// (bitset as `Vec<u64>` words).
    pub fn run_sets(&self, doc: &Document, bits_of: &dyn Fn(NodeId) -> u32) -> StateSets {
        let words = (self.n_states as usize).div_ceil(64);
        let mut sets = vec![0u64; words * doc.len()];
        let set_bit = |sets: &mut Vec<u64>, node: usize, q: u32| {
            sets[node * words + (q as usize) / 64] |= 1 << (q % 64);
        };
        // Iterate in reverse document order (valid bottom-up schedule).
        for n in binenc::bottom_up_order(doc) {
            let sym = self.classify(doc.label_str(n));
            let bits = bits_of(n);
            let lset: Vec<u32> = match binenc::left(doc, n) {
                None => vec![self.bot],
                Some(l) => collect_states(&sets, l.index(), words),
            };
            let rset: Vec<u32> = match binenc::right(doc, n) {
                None => vec![self.bot],
                Some(r) => collect_states(&sets, r.index(), words),
            };
            for &lq in &lset {
                for &rq in &rset {
                    if let Some(ts) = self.transitions.get(&(lq, rq, sym, bits)) {
                        for &t in ts {
                            set_bit(&mut sets, n.index(), t);
                        }
                    }
                }
            }
        }
        StateSets { words, sets }
    }

    /// Boolean acceptance (no variable bits).
    pub fn accepts(&self, doc: &Document) -> bool {
        assert_eq!(self.n_bits, 0, "use run_sets with a bit assignment");
        let sets = self.run_sets(doc, &|_| 0);
        self.accepting
            .iter()
            .any(|&q| sets.contains(doc.root().index(), q))
    }

    /// Is the recognized language empty? Standard least-fixpoint
    /// reachability over (state) sets, considering every symbol class and
    /// bit vector that appears in the transition table.
    pub fn is_empty(&self) -> bool {
        let mut reachable: HashSet<u32> = HashSet::new();
        reachable.insert(self.bot);
        loop {
            let mut grew = false;
            for ((l, r, _, _), ts) in &self.transitions {
                if reachable.contains(l) && reachable.contains(r) {
                    for &t in ts {
                        if reachable.insert(t) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        !self.accepting.iter().any(|q| {
            // bot alone is not a tree; but any accepting state reachable
            // via at least one transition corresponds to some tree. The
            // bot state itself never accepts in automata we build.
            reachable.contains(q) && *q != self.bot
        })
    }
}

/// Dense per-node reachable-state sets produced by [`Nta::run_sets`].
pub struct StateSets {
    words: usize,
    sets: Vec<u64>,
}

impl StateSets {
    /// Is state `q` reachable at node index `node`?
    pub fn contains(&self, node: usize, q: u32) -> bool {
        self.sets[node * self.words + (q as usize) / 64] & (1 << (q % 64)) != 0
    }
}

fn collect_states(sets: &[u64], node: usize, words: usize) -> Vec<u32> {
    let mut out = Vec::new();
    for w in 0..words {
        let mut bits = sets[node * words + w];
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push((w as u32) * 64 + b);
            bits &= bits - 1;
        }
    }
    out
}

/// Build the Boolean NTA accepting documents that contain at least one
/// node with the given label — a small, well-understood automaton used in
/// tests and docs.
pub fn contains_label(label: &str) -> Nta {
    // states: 0 = bot/nothing seen, 1 = seen.
    let mut a = Nta {
        n_states: 2,
        labels: vec![label.to_string()],
        n_bits: 0,
        transitions: HashMap::new(),
        bot: 0,
        accepting: [1].into_iter().collect(),
    };
    let known = SymbolClass::Known(0);
    let other = SymbolClass::Other;
    for l in 0..2 {
        for r in 0..2 {
            // The labeled node always produces "seen".
            a.add_transition(l, r, known, 0, 1);
            // Other labels propagate "seen" from either side.
            let out = if l == 1 || r == 1 { 1 } else { 0 };
            a.add_transition(l, r, other, 0, out);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_label_automaton() {
        let a = contains_label("i");
        assert!(a.accepts(&lixto_html::parse("<p><i>x</i></p>")));
        assert!(!a.accepts(&lixto_html::parse("<p><b>x</b></p>")));
        assert!(a.accepts(&lixto_html::parse("<i/>")));
    }

    #[test]
    fn emptiness() {
        let a = contains_label("i");
        assert!(!a.is_empty());
        let mut dead = contains_label("i");
        dead.accepting.clear();
        assert!(dead.is_empty());
    }

    #[test]
    fn run_sets_expose_per_node_states() {
        let a = contains_label("i");
        let doc = lixto_html::parse("<p><i>x</i><b>y</b></p>");
        let sets = a.run_sets(&doc, &|_| 0);
        let i_node = doc.node_ids().find(|&n| doc.label_str(n) == "i").unwrap();
        let b_node = doc.node_ids().find(|&n| doc.label_str(n) == "b").unwrap();
        assert!(sets.contains(i_node.index(), 1));
        // b's subtree (b and text) contains no i; b's *binary* subtree does
        // not include the i element (i is to its left), so state 1 is not
        // reachable at b.
        assert!(!sets.contains(b_node.index(), 1));
    }
}
