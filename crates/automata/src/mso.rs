//! MSO over trees: formula AST, Thatcher–Wright compilation to automata,
//! and unary query evaluation.
//!
//! Variables (first-order `x, y, …` and second-order `X, Y, …` — the
//! distinction is by binder, not by spelling) become bits in the automaton
//! alphabet Σ × {0,1}^K. Conjunction and disjunction are DTA products,
//! negation is complement, and ∃ is projection followed by
//! re-determinization; first-order quantifiers additionally intersect with
//! a singleton automaton. This is the standard decidability construction
//! for MSO on trees (reference \[37\] in the paper's bibliography), implemented over
//! the binary encoding of Figure 1.

use std::collections::HashMap;

use lixto_tree::{Document, NodeId};

use crate::dta::{determinize, reduce, Dta};
use crate::nta::SymbolClass;
use crate::ops::{build_dta, product, project_bit};

/// An MSO formula over τ_ur. Construct with the helper functions
/// ([`label`], [`first_child`], [`and`], [`exists_fo`], …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mso {
    /// `label_a(x)`.
    Label(String, String),
    /// `firstchild(x, y)`.
    FirstChild(String, String),
    /// `nextsibling(x, y)`.
    NextSibling(String, String),
    /// `root(x)`.
    Root(String),
    /// `leaf(x)` — no children.
    Leaf(String),
    /// `lastsibling(x)`.
    LastSibling(String),
    /// `x ∈ X`.
    In(String, String),
    /// Conjunction.
    And(Box<Mso>, Box<Mso>),
    /// Disjunction.
    Or(Box<Mso>, Box<Mso>),
    /// Negation.
    Not(Box<Mso>),
    /// First-order existential.
    ExistsFo(String, Box<Mso>),
    /// Second-order (set) existential.
    ExistsSo(String, Box<Mso>),
}

/// `label_a(x)`.
pub fn label(x: &str, a: &str) -> Mso {
    Mso::Label(x.into(), a.into())
}
/// `firstchild(x, y)`.
pub fn first_child(x: &str, y: &str) -> Mso {
    Mso::FirstChild(x.into(), y.into())
}
/// `nextsibling(x, y)`.
pub fn next_sibling(x: &str, y: &str) -> Mso {
    Mso::NextSibling(x.into(), y.into())
}
/// `root(x)`.
pub fn root(x: &str) -> Mso {
    Mso::Root(x.into())
}
/// `leaf(x)`.
pub fn leaf(x: &str) -> Mso {
    Mso::Leaf(x.into())
}
/// `lastsibling(x)`.
pub fn last_sibling(x: &str) -> Mso {
    Mso::LastSibling(x.into())
}
/// `x ∈ X`.
pub fn member(x: &str, set: &str) -> Mso {
    Mso::In(x.into(), set.into())
}
/// Conjunction.
pub fn and(a: Mso, b: Mso) -> Mso {
    Mso::And(Box::new(a), Box::new(b))
}
/// Disjunction.
pub fn or(a: Mso, b: Mso) -> Mso {
    Mso::Or(Box::new(a), Box::new(b))
}
/// Negation.
pub fn not(a: Mso) -> Mso {
    Mso::Not(Box::new(a))
}
/// Implication (sugar).
pub fn implies(a: Mso, b: Mso) -> Mso {
    or(not(a), b)
}
/// `∃x.φ` (first-order).
pub fn exists_fo(x: &str, f: Mso) -> Mso {
    Mso::ExistsFo(x.into(), Box::new(f))
}
/// `∀x.φ` (first-order, sugar).
pub fn forall_fo(x: &str, f: Mso) -> Mso {
    not(exists_fo(x, not(f)))
}
/// `∃X.φ` (second-order).
pub fn exists_so(x: &str, f: Mso) -> Mso {
    Mso::ExistsSo(x.into(), Box::new(f))
}
/// `∀X.φ` (second-order, sugar).
pub fn forall_so(x: &str, f: Mso) -> Mso {
    not(exists_so(x, not(f)))
}

/// Compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsoError {
    /// A bound variable name is reused (rename apart before compiling).
    ShadowedVariable(String),
    /// A variable occurs free that is neither bound nor the query variable.
    UnboundVariable(String),
    /// More variables than supported bits (the alphabet is Σ × {0,1}^K
    /// with K ≤ 16 here).
    TooManyVariables,
}

impl std::fmt::Display for MsoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsoError::ShadowedVariable(v) => write!(f, "variable '{v}' is bound twice"),
            MsoError::UnboundVariable(v) => write!(f, "variable '{v}' is not bound"),
            MsoError::TooManyVariables => write!(f, "too many variables (max 16)"),
        }
    }
}

impl std::error::Error for MsoError {}

impl Mso {
    /// Maximum quantifier nesting depth (each nested binder needs its own
    /// alphabet bit; parallel binders share bits).
    fn binder_depth(&self) -> u32 {
        match self {
            Mso::ExistsFo(_, f) | Mso::ExistsSo(_, f) => 1 + f.binder_depth(),
            Mso::And(a, b) | Mso::Or(a, b) => a.binder_depth().max(b.binder_depth()),
            Mso::Not(a) => a.binder_depth(),
            _ => 0,
        }
    }

    fn collect_labels(&self, out: &mut Vec<String>) {
        match self {
            Mso::Label(_, a) if !out.contains(a) => {
                out.push(a.clone());
            }
            Mso::And(a, b) | Mso::Or(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
            Mso::Not(a) | Mso::ExistsFo(_, a) | Mso::ExistsSo(_, a) => a.collect_labels(out),
            _ => {}
        }
    }

    /// Scope check: every used variable is in scope, and no binder
    /// shadows a variable already in scope (parallel reuse is fine).
    fn check_vars(&self, scope: &mut Vec<String>) -> Result<(), MsoError> {
        let chk = |v: &String, scope: &[String]| -> Result<(), MsoError> {
            if scope.contains(v) {
                Ok(())
            } else {
                Err(MsoError::UnboundVariable(v.clone()))
            }
        };
        match self {
            Mso::Label(x, _) | Mso::Root(x) | Mso::Leaf(x) | Mso::LastSibling(x) => chk(x, scope),
            Mso::FirstChild(x, y) | Mso::NextSibling(x, y) | Mso::In(x, y) => {
                chk(x, scope)?;
                chk(y, scope)
            }
            Mso::And(a, b) | Mso::Or(a, b) => {
                a.check_vars(scope)?;
                b.check_vars(scope)
            }
            Mso::Not(a) => a.check_vars(scope),
            Mso::ExistsFo(v, a) | Mso::ExistsSo(v, a) => {
                if scope.contains(v) {
                    return Err(MsoError::ShadowedVariable(v.clone()));
                }
                scope.push(v.clone());
                let r = a.check_vars(scope);
                scope.pop();
                r
            }
        }
    }
}

/// A compiled unary MSO query: a formula with one free first-order
/// variable, answering "which nodes satisfy φ(x)?".
pub struct MsoQuery {
    dta: Dta,
    query_bit: u32,
}

impl MsoQuery {
    /// Compile `phi` with free first-order variable `free_var`.
    pub fn new(free_var: &str, phi: Mso) -> Result<MsoQuery, MsoError> {
        let mut scope = vec![free_var.to_string()];
        phi.check_vars(&mut scope)?;
        let n_bits = 1 + phi.binder_depth();
        if n_bits > 16 {
            return Err(MsoError::TooManyVariables);
        }
        let mut labels = Vec::new();
        phi.collect_labels(&mut labels);
        let mut env: HashMap<String, u32> = HashMap::new();
        env.insert(free_var.to_string(), 0);
        let dta = compile(&phi, &labels, n_bits, &env, 1);
        Ok(MsoQuery { dta, query_bit: 0 })
    }

    /// Evaluate on a document: every node `n` with `doc ⊨ φ(n)`, in
    /// document order.
    pub fn eval(&self, doc: &Document) -> Vec<NodeId> {
        let mask = 1u32 << self.query_bit;
        doc.order()
            .preorder()
            .iter()
            .copied()
            .filter(|&cand| {
                let run = self.dta.run(doc, &|n| if n == cand { mask } else { 0 });
                self.dta.accepting[run[doc.root().index()] as usize]
            })
            .collect()
    }

    /// The compiled automaton (for inspection / statistics).
    pub fn automaton(&self) -> &Dta {
        &self.dta
    }
}

/// Compile a formula to a DTA over Σ(labels) × {0,1}^n_bits. `env` maps
/// in-scope variables to bits; `next_bit` is the first free bit (bits are
/// reused across disjoint scopes — projection kills them on the way out).
fn compile(
    phi: &Mso,
    labels: &[String],
    n_bits: u32,
    bit_of: &HashMap<String, u32>,
    next_bit: u32,
) -> Dta {
    match phi {
        Mso::Label(x, a) => {
            let bx = 1u32 << bit_of[x];
            let target = labels.iter().position(|l| l == a).unwrap() as u16;
            atomic(labels, n_bits, move |l, r, sym, bits, st| {
                st.step_marked(l, r, bits & bx != 0, sym == SymbolClass::Known(target))
            })
        }
        Mso::In(x, set) => {
            let bx = 1u32 << bit_of[x];
            let bs = 1u32 << bit_of[set];
            atomic(labels, n_bits, move |l, r, _sym, bits, st| {
                st.step_marked(l, r, bits & bx != 0, bits & bs != 0)
            })
        }
        Mso::Leaf(x) => {
            let bx = 1u32 << bit_of[x];
            atomic(labels, n_bits, move |l, r, _sym, bits, st| {
                st.step_local(l, r, bits & bx != 0, l == st.bot)
            })
        }
        Mso::Root(x) => {
            // accept iff the ROOT carries the bit: states B,0(none),
            // H(here at subtree root),S(inside),D; accept {H}.
            let bx = 1u32 << bit_of[x];
            build_dta(
                5,
                labels.to_vec(),
                n_bits,
                0,
                vec![false, false, true, false, false],
                move |l, r, _sym, bits| {
                    let marked = bits & bx != 0;
                    root_like_step(l, r, marked)
                },
            )
        }
        Mso::LastSibling(x) => {
            let bx = 1u32 << bit_of[x];
            // x has no right child and is not the global root: states
            // B=0, N=1 (none), H=2 (x at subtree root, had no right child),
            // S=3 (x inside, ok), D=4; accept {S} — if x is the global
            // root its final state stays H, which is rejecting.
            build_dta(
                5,
                labels.to_vec(),
                n_bits,
                0,
                vec![false, false, false, true, false],
                move |l, r, _sym, bits| {
                    let marked = bits & bx != 0;
                    // H (2) and S (3) both carry the mark upward.
                    let rank = |q: u32| u32::from(q == 2 || q == 3);
                    if l == 4 || r == 4 {
                        return 4;
                    }
                    if marked {
                        if r == 0 && rank(l) == 0 {
                            2
                        } else {
                            4
                        }
                    } else {
                        match (rank(l), rank(r)) {
                            (0, 0) => 1,
                            (1, 0) | (0, 1) => 3,
                            _ => 4,
                        }
                    }
                },
            )
        }
        Mso::FirstChild(x, y) => pair_atom(labels, n_bits, bit_of, x, y, true),
        Mso::NextSibling(x, y) => pair_atom(labels, n_bits, bit_of, x, y, false),
        Mso::And(a, b) => {
            let da = compile(a, labels, n_bits, bit_of, next_bit);
            let db = compile(b, labels, n_bits, bit_of, next_bit);
            reduce(&product(&da, &db, |x, y| x && y))
        }
        Mso::Or(a, b) => {
            let da = compile(a, labels, n_bits, bit_of, next_bit);
            let db = compile(b, labels, n_bits, bit_of, next_bit);
            reduce(&product(&da, &db, |x, y| x || y))
        }
        Mso::Not(a) => compile(a, labels, n_bits, bit_of, next_bit).complement(),
        Mso::ExistsSo(v, a) => {
            let mut env = bit_of.clone();
            env.insert(v.clone(), next_bit);
            let da = compile(a, labels, n_bits, &env, next_bit + 1);
            reduce(&determinize(&project_bit(&da, next_bit)))
        }
        Mso::ExistsFo(v, a) => {
            let mut env = bit_of.clone();
            env.insert(v.clone(), next_bit);
            let da = compile(a, labels, n_bits, &env, next_bit + 1);
            let sing = singleton(labels, n_bits, 1u32 << next_bit);
            let conj = reduce(&product(&da, &sing, |x, y| x && y));
            reduce(&determinize(&project_bit(&conj, next_bit)))
        }
    }
}

/// Shared scaffolding for "the unique marked node must satisfy a local
/// property" automata. States: 0=B(bot), 1=N(nothing seen), 2=S(seen,
/// property held), 3=D(dead). Accept {S}.
struct MarkedAtom {
    bot: u32,
}

impl MarkedAtom {
    /// Marked node must satisfy `ok` (a property of its symbol/bits).
    fn step_marked(&self, l: u32, r: u32, marked: bool, ok: bool) -> u32 {
        let lm = mark_rank(l);
        let rm = mark_rank(r);
        if l == 3 || r == 3 || lm + rm > 1 {
            return 3;
        }
        if marked {
            if ok && lm + rm == 0 {
                2
            } else {
                3
            }
        } else if lm + rm == 1 {
            2
        } else {
            1
        }
    }

    /// Like `step_marked` but the property can inspect child states (e.g.
    /// leaf = left child is bot).
    fn step_local(&self, l: u32, r: u32, marked: bool, ok: bool) -> u32 {
        self.step_marked(l, r, marked, ok)
    }
}

/// How many "seen" marks a child state carries (states 2 = one).
fn mark_rank(q: u32) -> u32 {
    u32::from(q == 2)
}

fn atomic(
    labels: &[String],
    n_bits: u32,
    f: impl Fn(u32, u32, SymbolClass, u32, &MarkedAtom) -> u32,
) -> Dta {
    let st = MarkedAtom { bot: 0 };
    build_dta(
        4,
        labels.to_vec(),
        n_bits,
        0,
        vec![false, false, true, false],
        move |l, r, sym, bits| f(l, r, sym, bits, &st),
    )
}

/// root(x)-style stepping: states B=0,N=1,H=2(marked node is this subtree's
/// root),S=3(marked strictly inside),D=4.
fn root_like_step(l: u32, r: u32, marked: bool) -> u32 {
    let seen = |q: u32| q == 2 || q == 3;
    if l == 4 || r == 4 {
        return 4;
    }
    let inside = u32::from(seen(l)) + u32::from(seen(r));
    if marked {
        if inside == 0 {
            2
        } else {
            4
        }
    } else {
        match inside {
            0 => 1,
            1 => 3,
            _ => 4,
        }
    }
}

/// firstchild(x,y) / nextsibling(x,y): y must be the left (resp. right)
/// binary child of x. States: B=0, N=1, J=2 (y is this subtree's root),
/// S=3 (pair matched), D=4. Accept {S}.
fn pair_atom(
    labels: &[String],
    n_bits: u32,
    bit_of: &HashMap<String, u32>,
    x: &str,
    y: &str,
    left_edge: bool,
) -> Dta {
    let bx = 1u32 << bit_of[x];
    let by = 1u32 << bit_of[y];
    build_dta(
        5,
        labels.to_vec(),
        n_bits,
        0,
        vec![false, false, false, true, false],
        move |l, r, _sym, bits| {
            if l == 4 || r == 4 {
                return 4;
            }
            let x_here = bits & bx != 0;
            let y_here = bits & by != 0;
            let clean = |q: u32| q == 0 || q == 1;
            match (x_here, y_here) {
                (true, true) => 4, // same node cannot be both
                (false, true) => {
                    if clean(l) && clean(r) {
                        2
                    } else {
                        4
                    }
                }
                (true, false) => {
                    let (child, other) = if left_edge { (l, r) } else { (r, l) };
                    if child == 2 && clean(other) {
                        3
                    } else {
                        4
                    }
                }
                (false, false) => {
                    // J must be consumed immediately by its binary parent.
                    if l == 2 || r == 2 {
                        return 4;
                    }
                    match (l == 3, r == 3) {
                        (true, true) => 4,
                        (true, false) | (false, true) => 3,
                        (false, false) => 1,
                    }
                }
            }
        },
    )
}

/// Exactly one node carries `mask`: states B=0 / zero=1 fused, one=2,
/// dead=3. Accept {one}.
fn singleton(labels: &[String], n_bits: u32, mask: u32) -> Dta {
    build_dta(
        4,
        labels.to_vec(),
        n_bits,
        0,
        vec![false, false, true, false],
        move |l, r, _sym, bits| {
            if l == 3 || r == 3 {
                return 3;
            }
            let count = u32::from(l == 2) + u32::from(r == 2) + u32::from(bits & mask != 0);
            match count {
                0 => 1,
                1 => 2,
                _ => 3,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;

    fn check_against_bruteforce(free: &str, phi: &Mso, htmls: &[&str]) {
        let q = MsoQuery::new(free, phi.clone()).unwrap();
        for html in htmls {
            let doc = lixto_html::parse(html);
            let via_automaton = q.eval(&doc);
            let via_bruteforce = bruteforce::eval_unary(&doc, free, phi);
            assert_eq!(via_automaton, via_bruteforce, "html={html}");
        }
    }

    const DOCS: &[&str] = &[
        "<p><i>a</i><b>c</b></p>",
        "<ul><li>1</li><li>2</li><li>3</li></ul>",
        "<table><tr><td>x</td></tr><tr><td>y</td></tr></table>",
        "<div/>",
    ];

    #[test]
    fn atomic_label() {
        check_against_bruteforce("x", &label("x", "li"), DOCS);
    }

    #[test]
    fn atomic_root_leaf_lastsibling() {
        check_against_bruteforce("x", &root("x"), DOCS);
        check_against_bruteforce("x", &leaf("x"), DOCS);
        check_against_bruteforce("x", &last_sibling("x"), DOCS);
    }

    #[test]
    fn exists_first_child() {
        // x is a first child of a ul
        let phi = exists_fo("y", and(first_child("y", "x"), label("y", "ul")));
        check_against_bruteforce("x", &phi, DOCS);
    }

    #[test]
    fn next_sibling_queries() {
        // x has a next sibling
        let phi = exists_fo("y", next_sibling("x", "y"));
        check_against_bruteforce("x", &phi, DOCS);
        // x IS a next sibling (has a left neighbour)
        let phi2 = exists_fo("y", next_sibling("y", "x"));
        check_against_bruteforce("x", &phi2, DOCS);
    }

    #[test]
    fn boolean_connectives() {
        let phi = and(label("x", "li"), not(last_sibling("x")));
        check_against_bruteforce("x", &phi, DOCS);
        let phi2 = or(root("x"), leaf("x"));
        check_against_bruteforce("x", &phi2, DOCS);
    }

    #[test]
    fn second_order_reachability_of_example_2_1() {
        // Italic(x) via MSO (Proposition 2.2 direction): x is in every set
        // X that contains all i-labeled nodes and is closed under
        // firstchild and nextsibling:
        //   φ(x) = ∀X [ seed ∧ closed → x ∈ X ]
        let seed = forall_fo("z", implies(label("z", "i"), member("z", "X")));
        let closed_fc = forall_fo(
            "u",
            forall_fo(
                "v",
                implies(
                    and(member("u", "X"), first_child("u", "v")),
                    member("v", "X"),
                ),
            ),
        );
        // parallel scopes may reuse variable names (and therefore bits)
        let closed_ns = forall_fo(
            "u",
            forall_fo(
                "v",
                implies(
                    and(member("u", "X"), next_sibling("u", "v")),
                    member("v", "X"),
                ),
            ),
        );
        let phi = forall_so(
            "X",
            implies(and(seed, and(closed_fc, closed_ns)), member("x", "X")),
        );
        // Compare against the datalog program on a small doc (bruteforce
        // over sets is exponential — keep the doc tiny).
        let doc = lixto_html::parse("<p><i>a</i>d</p>");
        let q = MsoQuery::new("x", phi).unwrap();
        let mso_sel = q.eval(&doc);
        let program = lixto_datalog::parse_program(
            r#"italic(X) :- label(X, "i").
               italic(X) :- italic(X0), firstchild(X0, X).
               italic(X) :- italic(X0), nextsibling(X0, X)."#,
        )
        .unwrap();
        let dl_sel = lixto_datalog::MonadicEvaluator::new(&doc)
            .eval_predicate(&program, "italic")
            .unwrap();
        assert_eq!(mso_sel, dl_sel, "Theorem 2.5: MSO = monadic datalog");
    }

    #[test]
    fn variable_hygiene_errors() {
        assert!(matches!(
            MsoQuery::new("x", exists_fo("x", label("x", "a"))),
            Err(MsoError::ShadowedVariable(_))
        ));
        assert!(matches!(
            MsoQuery::new("x", label("y", "a")),
            Err(MsoError::UnboundVariable(_))
        ));
    }
}
