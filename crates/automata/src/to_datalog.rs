//! Deterministic tree automata compiled into datalog — the automaton side
//! of the Theorem 2.5 construction (MSO-definable unary queries are
//! monadic-datalog-definable).
//!
//! For a Boolean DTA over the binary encoding, the (unique) run is a
//! bottom-up labeling of nodes with states, and that labeling is exactly a
//! least fixpoint over the τ_ur relations:
//!
//! ```text
//! st_q(x) ← st_a(l), st_b(r), firstchild(x, l), nextsibling(x, r), label-class(x)
//!            for every δ(a, b, σ) = q, with leaf(x) standing in for a
//!            missing left child and "no next sibling" for a missing right
//!            child.
//! ```
//!
//! A node-selecting query is obtained by designating *selecting states*;
//! acceptance at the root gates the selection globally. The label-class
//! `Other` ("none of the automaton's known labels") needs stratified
//! negation, so the emitted program is evaluated with the general
//! [`seminaive`] engine.

use lixto_datalog::ast::{Atom, Literal, Program, Rule, Term};
use lixto_datalog::{seminaive, structure::tree_db, EvalError};
use lixto_tree::{Document, NodeId};

use crate::dta::Dta;
use crate::nta::SymbolClass;

/// Names used by the generated program.
fn state_pred(q: u32) -> String {
    format!("st_{q}")
}

/// Translate `dta` (Boolean: `n_bits == 0`) into a datalog program whose
/// predicate `st_q(x)` holds iff the unique run assigns state `q` to `x`,
/// and whose predicate `selected(x)` holds iff `x`'s state is in
/// `selecting` *and* the automaton accepts the document.
pub fn dta_to_datalog(dta: &Dta, selecting: &[u32]) -> Program {
    assert_eq!(dta.n_bits, 0, "only Boolean automata translate to datalog");
    let var = |n: &str| Term::Var(n.to_string());
    let mut rules: Vec<Rule> = Vec::new();

    // Label classes. known_i(x) ← label(x, "name"); other(x) ← not any.
    for (i, name) in dta.labels.iter().enumerate() {
        rules.push(Rule {
            head: Atom::new(format!("sym_{i}"), vec![var("X")]),
            body: vec![Literal::pos(Atom::new(
                "label",
                vec![var("X"), Term::Const(name.clone())],
            ))],
        });
    }
    // known_any(x) ← sym_i(x);  sym_other(x) ← node(x), not known_any(x).
    // node(x) is label(x, L) with a variable — every node has a label.
    rules.push(Rule {
        head: Atom::new("node", vec![var("X")]),
        body: vec![Literal::pos(Atom::new("label", vec![var("X"), var("L")]))],
    });
    if dta.labels.is_empty() {
        rules.push(Rule {
            head: Atom::new("sym_other", vec![var("X")]),
            body: vec![Literal::pos(Atom::new("node", vec![var("X")]))],
        });
    } else {
        for i in 0..dta.labels.len() {
            rules.push(Rule {
                head: Atom::new("known_any", vec![var("X")]),
                body: vec![Literal::pos(Atom::new(format!("sym_{i}"), vec![var("X")]))],
            });
        }
        rules.push(Rule {
            head: Atom::new("sym_other", vec![var("X")]),
            body: vec![
                Literal::pos(Atom::new("node", vec![var("X")])),
                Literal::neg(Atom::new("known_any", vec![var("X")])),
            ],
        });
    }
    // norightsib(x): x has no next sibling (lastsibling or root).
    rules.push(Rule {
        head: Atom::new("norightsib", vec![var("X")]),
        body: vec![Literal::pos(Atom::new("lastsibling", vec![var("X")]))],
    });
    rules.push(Rule {
        head: Atom::new("norightsib", vec![var("X")]),
        body: vec![Literal::pos(Atom::new("root", vec![var("X")]))],
    });

    let sym_atom = |sym: SymbolClass, v: &str| -> Atom {
        match sym {
            SymbolClass::Known(i) => Atom::new(format!("sym_{i}"), vec![var(v)]),
            SymbolClass::Other => Atom::new("sym_other", vec![var(v)]),
        }
    };

    // Transition rules: four presence/absence cases per (δ entry).
    for ((a, b, sym, _bits), &q) in &dta.delta {
        let head = Atom::new(state_pred(q), vec![var("X")]);
        let both_bot = *a == dta.bot && *b == dta.bot;
        let left_bot = *a == dta.bot;
        let right_bot = *b == dta.bot;
        // Case LR: both children present.
        rules.push(Rule {
            head: head.clone(),
            body: vec![
                Literal::pos(sym_atom(*sym, "X")),
                Literal::pos(Atom::new("firstchild", vec![var("X"), var("L")])),
                Literal::pos(Atom::new(state_pred(*a), vec![var("L")])),
                Literal::pos(Atom::new("nextsibling", vec![var("X"), var("R")])),
                Literal::pos(Atom::new(state_pred(*b), vec![var("R")])),
            ],
        });
        // Case L-: left present, right missing.
        if right_bot {
            rules.push(Rule {
                head: head.clone(),
                body: vec![
                    Literal::pos(sym_atom(*sym, "X")),
                    Literal::pos(Atom::new("firstchild", vec![var("X"), var("L")])),
                    Literal::pos(Atom::new(state_pred(*a), vec![var("L")])),
                    Literal::pos(Atom::new("norightsib", vec![var("X")])),
                ],
            });
        }
        // Case -R: left missing, right present.
        if left_bot {
            rules.push(Rule {
                head: head.clone(),
                body: vec![
                    Literal::pos(sym_atom(*sym, "X")),
                    Literal::pos(Atom::new("leaf", vec![var("X")])),
                    Literal::pos(Atom::new("nextsibling", vec![var("X"), var("R")])),
                    Literal::pos(Atom::new(state_pred(*b), vec![var("R")])),
                ],
            });
        }
        // Case --: both missing.
        if both_bot {
            rules.push(Rule {
                head: head.clone(),
                body: vec![
                    Literal::pos(sym_atom(*sym, "X")),
                    Literal::pos(Atom::new("leaf", vec![var("X")])),
                    Literal::pos(Atom::new("norightsib", vec![var("X")])),
                ],
            });
        }
    }

    // Acceptance and selection.
    for (q, &acc) in dta.accepting.iter().enumerate() {
        if acc {
            rules.push(Rule {
                head: Atom::new("accepted", vec![var("X")]),
                body: vec![
                    Literal::pos(Atom::new(state_pred(q as u32), vec![var("X")])),
                    Literal::pos(Atom::new("root", vec![var("X")])),
                ],
            });
        }
    }
    for &q in selecting {
        rules.push(Rule {
            head: Atom::new("selected", vec![var("X")]),
            body: vec![
                Literal::pos(Atom::new(state_pred(q), vec![var("X")])),
                Literal::pos(Atom::new("accepted", vec![var("R")])),
            ],
        });
    }
    Program::new(rules)
}

/// Run the generated program on a document and return the selected nodes
/// in document order (convenience wrapper around the semi-naive engine).
pub fn eval_selected(program: &Program, doc: &Document) -> Result<Vec<NodeId>, EvalError> {
    let db = tree_db(doc);
    let out = seminaive::eval(&db, program)?;
    let mut nodes: Vec<NodeId> = out
        .tuples("selected")
        .map(|t| NodeId::from_index(t[0] as usize))
        .collect();
    nodes.sort_by_key(|&n| doc.order().pre(n));
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::determinize;
    use crate::nta::contains_label;

    #[test]
    fn datalog_run_matches_automaton_run() {
        let dta = determinize(&contains_label("i"));
        let program = dta_to_datalog(&dta, &[]);
        for html in [
            "<p><i>x</i><b>y</b></p>",
            "<div><div><i>deep</i></div></div>",
            "<p>no italics</p>",
        ] {
            let doc = lixto_html::parse(html);
            let run = dta.run(&doc, &|_| 0);
            let db = tree_db(&doc);
            let out = seminaive::eval(&db, &program).unwrap();
            for n in doc.node_ids() {
                let q = run[n.index()];
                assert!(
                    out.contains(&state_pred(q), &[n.index() as u32]),
                    "node {n} should be in state {q} ({html})"
                );
                // and in no other state (the run is deterministic)
                for other in 0..dta.n_states {
                    if other != q {
                        assert!(
                            !out.contains(&state_pred(other), &[n.index() as u32]),
                            "node {n} wrongly also in state {other}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn selection_gated_on_acceptance() {
        let dta = determinize(&contains_label("i"));
        // Select nodes in any state, but only when the doc contains an i.
        let all_states: Vec<u32> = (0..dta.n_states).collect();
        let program = dta_to_datalog(&dta, &all_states);
        let with_i = lixto_html::parse("<p><i>x</i></p>");
        let without = lixto_html::parse("<p><b>x</b></p>");
        assert_eq!(
            eval_selected(&program, &with_i).unwrap().len(),
            with_i.len()
        );
        assert!(eval_selected(&program, &without).unwrap().is_empty());
    }
}
