//! Top-down path automata over unranked documents.
//!
//! An element path (`.table ?.tr .td` — child and descendant steps, each
//! with a tag test) is a nondeterministic word automaton read *down* the
//! tree: position `i` is the state "the next node on this branch may match
//! step `i`", a child step advances the position, and a descendant step
//! additionally loops on its own position so candidacy survives any number
//! of intermediate levels. [`PathAutomaton`] runs the subset construction
//! of that NFA on the fly — the classic determinization idea (see
//! [`crate::ops`]), but with the state set
//! packed into a `u64` bitmask (one bit per path position) so a whole
//! frontier of live positions advances with two shifts and a mask per
//! node. One downward traversal replaces the per-step candidate-list
//! generation of a naive path evaluator: no intermediate materialization,
//! no re-sorting into document order (a preorder DFS emits matches in
//! document order by construction), and no deduplication (each node is
//! visited exactly once, even when several step chains reach it).
//!
//! Tag tests stay outside the automaton: [`PathAutomaton::run`] calls
//! back into the caller (`test(step, node)`), so the caller can inline
//! whatever test representation it has — interned label symbols, regexes —
//! without this crate depending on it. The automaton only owns the step
//! *skeleton* (child vs descendant), which is what determines the
//! transition structure.

use lixto_tree::{Document, NodeId};

/// A compiled child/descendant step skeleton, run bit-parallel.
///
/// Paths longer than [`PathAutomaton::MAX_STEPS`] steps do not fit the
/// `u64` state set; [`PathAutomaton::new`] returns `None` and callers
/// fall back to their step-by-step evaluator.
#[derive(Debug, Clone)]
pub struct PathAutomaton {
    n_steps: u32,
    /// Bit `i` set when step `i` is a descendant step (self-loop).
    descend_mask: u64,
    /// Bits `0..n_steps`.
    full_mask: u64,
    /// `1 << (n_steps - 1)` — a node matching this position is a match
    /// of the whole path.
    accept_bit: u64,
}

impl PathAutomaton {
    /// Maximum number of steps representable in the `u64` state set.
    pub const MAX_STEPS: usize = 64;

    /// Build the automaton for a step skeleton; `descend[i]` is true for
    /// a descendant (`?.`) step. `None` when the path has more than
    /// [`MAX_STEPS`](PathAutomaton::MAX_STEPS) steps.
    pub fn new(descend: &[bool]) -> Option<PathAutomaton> {
        if descend.len() > Self::MAX_STEPS {
            return None;
        }
        let n = descend.len() as u32;
        let mut descend_mask = 0u64;
        for (i, &d) in descend.iter().enumerate() {
            if d {
                descend_mask |= 1 << i;
            }
        }
        let full_mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        Some(PathAutomaton {
            n_steps: n,
            descend_mask,
            full_mask,
            accept_bit: if n == 0 { 0 } else { 1 << (n - 1) },
        })
    }

    /// Number of steps.
    pub fn n_steps(&self) -> u32 {
        self.n_steps
    }

    /// Run over a forest context: the roots are the candidate nodes for
    /// step 0 (for a descendant first step, candidacy propagates to every
    /// node below them — the descendant-or-self semantics of a leading
    /// `?.` step). `emit` is called for every node matching the full
    /// path, in document order, exactly once per node. An empty path
    /// matches the roots themselves.
    ///
    /// `stack` is caller-provided scratch so repeated runs allocate
    /// nothing; it is cleared on entry.
    pub fn run(
        &self,
        doc: &Document,
        roots: &[NodeId],
        mut test: impl FnMut(u32, NodeId) -> bool,
        mut emit: impl FnMut(NodeId),
        stack: &mut Vec<(NodeId, u64)>,
    ) {
        if self.n_steps == 0 {
            for &r in roots {
                emit(r);
            }
            return;
        }
        stack.clear();
        for &root in roots {
            stack.push((root, 1));
            while let Some((n, mask)) = stack.pop() {
                // Which live positions does this node's tag satisfy?
                let mut matched = 0u64;
                let mut m = mask;
                while m != 0 {
                    let i = m.trailing_zeros();
                    if test(i, n) {
                        matched |= 1 << i;
                    }
                    m &= m - 1;
                }
                if matched & self.accept_bit != 0 {
                    emit(n);
                }
                // Children inherit: descendant positions survive
                // unconditionally; a matched position arms its successor.
                let child_mask = (mask & self.descend_mask) | ((matched << 1) & self.full_mask);
                if child_mask != 0 {
                    let first_child = stack.len();
                    for c in doc.children(n) {
                        stack.push((c, child_mask));
                    }
                    // Reverse the pushed run so the leftmost child pops
                    // first: preorder = document order.
                    stack[first_child..].reverse();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct per-step reference evaluator (the candidate-list semantics
    /// the automaton must reproduce): step 0 tests the roots themselves
    /// (descendant-or-self for a `?.` step), later steps test children or
    /// proper descendants of the previous step's matches.
    fn reference(doc: &Document, roots: &[NodeId], steps: &[(bool, &str)]) -> Vec<NodeId> {
        let test = |tag: &str, n: NodeId| tag == "*" || doc.label_str(n) == tag;
        let mut current: Vec<NodeId> = roots.to_vec();
        for (i, (descend, tag)) in steps.iter().enumerate() {
            let mut next = Vec::new();
            for &c in &current {
                if i == 0 {
                    if *descend {
                        next.extend(doc.descendants_or_self(c).filter(|&d| test(tag, d)));
                    } else if test(tag, c) {
                        next.push(c);
                    }
                } else if *descend {
                    next.extend(doc.descendants(c).filter(|&d| test(tag, d)));
                } else {
                    next.extend(doc.children(c).filter(|&d| test(tag, d)));
                }
            }
            current = next;
        }
        current.sort_by_key(|&n| doc.order().pre(n));
        current.dedup();
        current
    }

    fn automaton_matches(doc: &Document, roots: &[NodeId], steps: &[(bool, &str)]) -> Vec<NodeId> {
        let auto = PathAutomaton::new(&steps.iter().map(|(d, _)| *d).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        let mut stack = Vec::new();
        auto.run(
            doc,
            roots,
            |i, n| {
                let (_, tag) = steps[i as usize];
                tag == "*" || doc.label_str(n) == tag
            },
            |n| out.push(n),
            &mut stack,
        );
        out
    }

    fn agree(html: &str, steps: &[(bool, &str)]) {
        let doc = lixto_html::parse(html);
        let roots: Vec<NodeId> = doc.children(doc.root()).collect();
        assert_eq!(
            automaton_matches(&doc, &roots, steps),
            reference(&doc, &roots, steps),
            "steps {steps:?} on {html:?}"
        );
    }

    #[test]
    fn agrees_with_reference_on_step_shapes() {
        let html = "<body><div><div><span>a</span></div><span>b</span></div>\
                    <table><tr><td>1</td><td>2</td></tr><tr><td>3</td></tr></table></body>";
        agree(html, &[]);
        agree(html, &[(true, "span")]);
        agree(html, &[(false, "body")]);
        agree(html, &[(true, "div"), (true, "span")]); // overlapping chains dedup
        agree(html, &[(true, "table"), (false, "tr"), (false, "td")]);
        agree(html, &[(true, "tr"), (true, "*")]);
        agree(html, &[(false, "*"), (false, "*")]);
        agree(html, &[(true, "td"), (false, "td")]); // unsatisfiable tail
    }

    #[test]
    fn nested_descendant_chains_emit_once_in_document_order() {
        // A span below two nested divs is reachable via either div for
        // `?.div ?.span`; the candidate-list evaluator dedups, the
        // automaton must emit it exactly once.
        let doc = lixto_html::parse(
            "<body><div id='o'><div id='i'><p><span>x</span></p></div></div></body>",
        );
        let roots: Vec<NodeId> = doc.children(doc.root()).collect();
        let steps = [(true, "div"), (true, "span")];
        let got = automaton_matches(&doc, &roots, &steps);
        assert_eq!(got.len(), 1);
        assert_eq!(doc.label_str(got[0]), "span");
        assert_eq!(got, reference(&doc, &roots, &steps));
    }

    #[test]
    fn single_descendant_step_agrees_with_mso_label_query() {
        // `?.li` over the children of the root selects exactly the nodes
        // labelled `li` (none of which is the root) — the unary MSO query
        // φ(x) = label_li(x), evaluated through the bottom-up DTA
        // pipeline, is the independent oracle.
        let doc = lixto_html::parse("<ul><li>a</li><li><ul><li>b</li></ul></li></ul>");
        let roots: Vec<NodeId> = doc.children(doc.root()).collect();
        let got = automaton_matches(&doc, &roots, &[(true, "li")]);
        let query = crate::mso::MsoQuery::new("x", crate::mso::label("x", "li")).unwrap();
        let mut want = query.eval(&doc);
        want.sort_by_key(|&n| doc.order().pre(n));
        assert_eq!(got, want);
    }

    #[test]
    fn too_long_paths_are_rejected() {
        assert!(PathAutomaton::new(&[false; 65]).is_none());
        assert!(PathAutomaton::new(&[true; 64]).is_some());
    }
}
