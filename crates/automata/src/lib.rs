//! # lixto-automata
//!
//! Tree automata over the first-child/next-sibling binary encoding, and
//! monadic second-order logic (MSO) — the paper's expressiveness yardstick.
//!
//! Section 2.1: "We assume unary queries in monadic second-order logic
//! (MSO) over trees as the expressiveness yardstick for information
//! extraction functions", and Theorem 2.5 states that unary MSO queries
//! and monadic datalog over τ_ur coincide. This crate provides the
//! automata-theoretic machinery behind those statements:
//!
//! * [`binenc`] — the binary (first-child/next-sibling) view of an
//!   unranked document, Figure 1 of the paper;
//! * [`nta`] / [`dta`] — nondeterministic and deterministic bottom-up
//!   binary tree automata with product, union, projection, determinization
//!   and complement ([`ops`]);
//! * [`mso`] — an MSO formula AST compiled to automata in the classical
//!   Thatcher–Wright style (variables become label bits; ∧/∨ are products,
//!   ¬ is determinize-and-complement, ∃ is projection), answering unary
//!   queries over documents;
//! * [`bruteforce`] — a direct (exponential) MSO model checker used as a
//!   cross-validation oracle for the automaton pipeline;
//! * [`to_datalog`] — the run of a deterministic automaton computed by a
//!   monadic datalog program (the automaton side of the Theorem 2.5
//!   construction): one intensional predicate per state, rules following
//!   the FCNS recursion, and a selection predicate gated on global
//!   acceptance.
//!
//! # Example — an MSO unary query
//!
//! ```
//! use lixto_automata::mso::{exists_fo, and, label, first_child, MsoQuery};
//!
//! // φ(x) = ∃y. firstchild(y, x) ∧ label_ul(y): "x is a first child of a ul"
//! let phi = exists_fo("y", and(first_child("y", "x"), label("y", "ul")));
//! let query = MsoQuery::new("x", phi).unwrap();
//! let doc = lixto_html::parse("<ul><li>first</li><li>second</li></ul>");
//! let selected = query.eval(&doc);
//! assert_eq!(selected.len(), 1);
//! assert_eq!(doc.label_str(selected[0]), "li");
//! ```

#![forbid(unsafe_code)]

pub mod binenc;
pub mod bruteforce;
pub mod dta;
pub mod mso;
pub mod nta;
pub mod ops;
pub mod to_datalog;
pub mod topdown;

pub use dta::Dta;
pub use nta::{Nta, SymbolClass};
pub use topdown::PathAutomaton;
