//! The Interactive Pattern Builder — the visual specification procedure of
//! Section 3.2, simulated programmatically.
//!
//! The paper's procedure, step by step:
//!
//! 1. "a destination pattern p is selected from those existing or newly
//!    created and a parent pattern p0 is selected" — the `parent` and
//!    `destination` arguments of [`PatternBuilder::click`];
//! 2. "the system can then display the document and highlight those
//!    regions […] classified p0" — [`PatternBuilder::highlight`];
//! 3. "a new rule is defined by selecting — by a few mouse clicks over the
//!    example document — a subregion of one of those highlighted. The
//!    system can automatically decide which path π relative to the
//!    highlighted region best describes the region selected" —
//!    [`PatternBuilder::click`] computes that path (exact tag path from
//!    the parent instance to the clicked node);
//! 4. "if a filter definition is too general, the user can refine the
//!    filter rule by generalizing the path or adding restricting
//!    conditions" — [`FilterDraft::generalize`] and
//!    [`FilterDraft::add_condition`], with
//!    [`FilterDraft::matches`] playing the role of the visual test button
//!    (Figure 3's feedback loop).
//!
//! "Very few example documents are needed": the builder needs exactly one
//! example instance per rule, which experiment E11 contrasts with the
//! many labeled pages LR induction requires.

use lixto_elog::{
    Condition, ElementPath, ElogProgram, ElogRule, Extraction, ParentSpec, PathStep, TagTest,
    UrlExpr,
};
use lixto_tree::{Document, NodeId};

/// A wrapper under interactive construction.
pub struct PatternBuilder {
    /// The example document (one page suffices, per the paper).
    doc: Document,
    url: String,
    html_cache: String,
    program: ElogProgram,
}

/// A filter (rule) being drafted for a destination pattern.
pub struct FilterDraft<'b> {
    builder: &'b mut PatternBuilder,
    pattern: String,
    parent: String,
    path: ElementPath,
    conditions: Vec<Condition>,
}

impl PatternBuilder {
    /// Start building against one example page. A `page` root pattern
    /// (the whole document) is created automatically — "initially, the
    /// only pattern available is the 'root' pattern".
    pub fn new(url: &str, html: &str) -> PatternBuilder {
        let doc = lixto_html::parse(html);
        let mut program = ElogProgram::default();
        program.rules.push(ElogRule {
            pattern: "page".into(),
            parent: ParentSpec::Document(UrlExpr::Const(url.to_string())),
            extraction: Extraction::Specialize,
            conditions: vec![],
        });
        PatternBuilder {
            doc,
            url: url.to_string(),
            html_cache: html.to_string(),
            program,
        }
    }

    /// The example document (for picking nodes to click).
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The example URL.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// Step 2: the regions currently classified as instances of `pattern`
    /// — what the GUI would highlight.
    pub fn highlight(&self, pattern: &str) -> Vec<NodeId> {
        let result = self.run();
        result
            .base
            .of_pattern(pattern)
            .into_iter()
            .filter_map(|i| match &result.base.instances[i].target {
                lixto_elog::Target::Node { node, .. } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// Steps 1+3: select (parent, destination) patterns and "click" a node
    /// inside a highlighted parent region. The returned draft holds the
    /// auto-computed path `π`; call [`FilterDraft::commit`] to add the
    /// rule `p(X) ← p0(X0), subelem(X0, π, X)`.
    pub fn click(&mut self, parent: &str, destination: &str, node: NodeId) -> FilterDraft<'_> {
        // Find the innermost parent-pattern instance containing the click.
        let parents = self.highlight(parent);
        let region = parents
            .into_iter()
            .filter(|&p| self.doc.is_ancestor_or_self(p, node))
            .max_by_key(|&p| self.doc.order().pre(p));
        // "The system can automatically decide which path π relative to
        // the highlighted region best describes the region selected": the
        // exact tag path.
        let path = match region {
            Some(r) => exact_path(&self.doc, r, node),
            None => ElementPath::anywhere(self.doc.label_str(node)),
        };
        FilterDraft {
            pattern: destination.to_string(),
            parent: parent.to_string(),
            path,
            conditions: vec![],
            builder: self,
        }
    }

    /// Run the current program against the example page.
    pub fn run(&self) -> lixto_elog::eval::ExtractionResult {
        let web = lixto_elog::web::SinglePage {
            url: self.url.clone(),
            html: self.html_cache.clone(),
        };
        lixto_elog::Extractor::new(self.program.clone(), &web).run()
    }

    /// The Elog program constructed so far ("during this visual process,
    /// the wrapper program should be automatically generated").
    pub fn program(&self) -> &ElogProgram {
        &self.program
    }
}

impl FilterDraft<'_> {
    /// Step 4a: generalize the path — replace exact tags by wildcards and
    /// make the last step any-depth, the operation the paper uses to turn
    /// `subelem_a` into `subelem_*` before re-restricting.
    pub fn generalize(mut self) -> Self {
        if let Some(last) = self.path.steps.pop() {
            self.path.steps.clear();
            self.path.steps.push(PathStep {
                descend: true,
                tag: last.tag,
            });
        }
        self
    }

    /// Step 4b: add a restricting condition.
    pub fn add_condition(mut self, c: Condition) -> Self {
        self.conditions.push(c);
        self
    }

    /// The visual "test" button: which nodes would this filter match right
    /// now (before committing)?
    pub fn matches(&self) -> Vec<NodeId> {
        let mut probe = self.builder.program.clone();
        probe.rules.push(self.rule());
        let web = lixto_elog::web::SinglePage {
            url: self.builder.url.clone(),
            html: self.builder.html_cache.clone(),
        };
        let result = lixto_elog::Extractor::new(probe, &web).run();
        result
            .base
            .of_pattern(&self.pattern)
            .into_iter()
            .filter_map(|i| match &result.base.instances[i].target {
                lixto_elog::Target::Node { node, .. } => Some(*node),
                _ => None,
            })
            .collect()
    }

    fn rule(&self) -> ElogRule {
        ElogRule {
            pattern: self.pattern.clone(),
            parent: ParentSpec::Pattern(self.parent.clone()),
            extraction: Extraction::Subelem(self.path.clone()),
            conditions: self.conditions.clone(),
        }
    }

    /// Commit the rule to the program.
    pub fn commit(self) {
        let rule = self.rule();
        self.builder.program.rules.push(rule);
    }
}

/// The exact tag path (child steps) from `from` to `to`.
fn exact_path(doc: &Document, from: NodeId, to: NodeId) -> ElementPath {
    let mut names = Vec::new();
    let mut cur = to;
    while cur != from {
        names.push(doc.label_str(cur).to_string());
        match doc.parent(cur) {
            Some(p) => cur = p,
            None => break,
        }
    }
    names.reverse();
    ElementPath {
        steps: names
            .into_iter()
            .map(|n| PathStep {
                descend: false,
                tag: TagTest::Name(n),
            })
            .collect(),
        attrs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::AttrMode;

    const PAGE: &str = "<html><body>\
        <table><tr><td>item</td></tr></table>\
        <table><tr><td><a href='a.html'>First thing</a></td><td>$ 5.00</td></tr></table>\
        <table><tr><td><a href='b.html'>Second thing</a></td><td>EUR 7.00</td></tr></table>\
        <hr></body></html>";

    /// Node ids are stable across runs because the extractor re-parses the
    /// identical HTML with the identical parser.
    fn find_node(doc: &Document, label: &str, text: &str) -> NodeId {
        doc.node_ids()
            .find(|&n| doc.label_str(n) == label && doc.text_content(n).contains(text))
            .unwrap()
    }

    #[test]
    fn visual_session_builds_working_wrapper() {
        let mut b = PatternBuilder::new("http://example/", PAGE);
        // Click the second record table to define <record> under <page>.
        let table = {
            let doc = b.document();

            find_node(doc, "table", "First thing")
        };
        // Too specific: path matches only tables; generalize + restrict so
        // the header table (no link) is excluded.
        let draft = b.click("page", "record", table);
        let draft = draft.generalize().add_condition(Condition::Contains {
            path: lixto_elog::ElementPath::anywhere("a"),
            negated: false,
        });
        assert_eq!(draft.matches().len(), 2, "both record tables, no header");
        draft.commit();
        // Click the price cell inside the record to define <price>.
        let price_cell = {
            let doc = b.document();
            find_node(doc, "td", "$ 5.00")
        };
        let draft = b.click("record", "price", price_cell);
        let draft = draft.generalize().add_condition(Condition::Contains {
            path: lixto_elog::ElementPath {
                steps: vec![lixto_elog::PathStep {
                    descend: true,
                    tag: lixto_elog::TagTest::Name("#text".into()),
                }],
                attrs: vec![lixto_elog::AttrCond {
                    attr: "elementtext".into(),
                    pattern: r"(\$|EUR)".into(),
                    mode: AttrMode::Regvar,
                }],
            },
            negated: false,
        });
        assert_eq!(draft.matches().len(), 2, "one price per record");
        draft.commit();
        // The generated program is ordinary Elog and extracts both prices.
        let result = b.run();
        let mut prices = result.texts_of("price");
        prices.sort();
        assert_eq!(prices, vec!["$ 5.00", "EUR 7.00"]);
        // And the program was "automatically generated" — inspectable:
        assert_eq!(b.program().rules.len(), 3);
    }

    #[test]
    fn highlight_shows_parent_regions() {
        let b = PatternBuilder::new("http://example/", PAGE);
        let pages = b.highlight("page");
        assert_eq!(pages.len(), 1);
        assert!(b.document().is_root(pages[0]));
    }

    #[test]
    fn exact_path_is_computed_from_click() {
        let mut b = PatternBuilder::new("http://example/", PAGE);
        let a = {
            let doc = b.document();
            find_node(doc, "a", "First thing")
        };
        let draft = b.click("page", "link", a);
        // page root is <html>; exact path: body/table/tr/td/a
        assert_eq!(draft.path.steps.len(), 5);
        assert!(draft.path.steps.iter().all(|s| !s.descend));
    }
}
