//! The XML Transformer (Figure 2): "performs the actual translation from
//! the extracted pattern instance base to XML", following the hierarchical
//! order of the instance base (the multigraph the binary pattern
//! predicates define, Section 3.3).

use lixto_elog::eval::ExtractionResult;
use lixto_elog::Target;
use lixto_xml::Element;

use crate::designer::XmlDesign;

/// Translate an extraction result into an XML document per the design.
///
/// Top-level instances (no parent) become children of the document
/// element; auxiliary patterns are skipped with their children spliced up;
/// instances with no (kept) children carry their text value.
pub fn to_xml(result: &ExtractionResult, design: &XmlDesign) -> Element {
    let base = &result.base;
    let mut root = Element::new(&design.root_label);
    // children lists in insertion order
    let tops: Vec<usize> = (0..base.len())
        .filter(|&i| base.instances[i].parent.is_none())
        .collect();
    for i in tops {
        emit(result, design, i, &mut root);
    }
    root
}

fn emit(result: &ExtractionResult, design: &XmlDesign, idx: usize, parent: &mut Element) {
    let base = &result.base;
    let inst = &base.instances[idx];
    let children = base.children_of(idx);
    if design.is_auxiliary(&inst.pattern) {
        // Splice children upward.
        for c in children {
            emit(result, design, c, parent);
        }
        return;
    }
    let mut el = Element::new(design.label_of(&inst.pattern));
    // Carry node attributes through (e.g. hrefs on link patterns).
    if let Target::Node { doc, node } = &inst.target {
        let d = &result.docs[doc.0 as usize];
        for (k, v) in d.attrs(*node) {
            el.set_attr(k, v);
        }
    }
    if children.is_empty() {
        let text = base.text_of(idx, &result.docs);
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            el.push_text(trimmed);
        }
    } else {
        for c in children {
            emit(result, design, c, &mut el);
        }
    }
    parent.push_element(el);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor, EBAY_PROGRAM};
    use lixto_workloads::ebay;

    #[test]
    fn ebay_instance_base_to_xml() {
        let (web, records) = ebay::site(4, 3);
        let program = parse_program(EBAY_PROGRAM).unwrap();
        let result = Extractor::new(program, &web).run();
        let design = XmlDesign::new()
            .auxiliary("tableseq")
            .label("itemdes", "description")
            .root("auctions");
        let xml = to_xml(&result, &design);
        assert_eq!(xml.name, "auctions");
        let recs: Vec<&Element> = xml.children_named("record").collect();
        assert_eq!(recs.len(), records.len());
        for (r, truth) in recs.iter().zip(&records) {
            assert_eq!(
                r.child_text("description"),
                Some(truth.description.as_str())
            );
            // price contains a nested currency instance
            let price = r.child("price").expect("price element");
            assert_eq!(
                price.child_text("currency"),
                Some(truth.currency),
                "currency nested under price"
            );
            assert_eq!(r.child_text("bids"), Some(truth.bids.to_string().as_str()));
        }
        // Serializes to well-formed XML.
        let s = lixto_xml::to_string_pretty(&xml);
        assert!(lixto_xml::parse(&s).is_ok());
    }

    #[test]
    fn auxiliary_patterns_splice_children() {
        let (web, records) = ebay::site(4, 2);
        let program = parse_program(EBAY_PROGRAM).unwrap();
        let result = Extractor::new(program, &web).run();
        // Without auxiliary: records sit under a tableseq element.
        let with_seq = to_xml(&result, &XmlDesign::new());
        assert_eq!(with_seq.children_named("tableseq").count(), 1);
        // With auxiliary: records are direct children of the root.
        let spliced = to_xml(&result, &XmlDesign::new().auxiliary("tableseq"));
        assert_eq!(spliced.children_named("record").count(), records.len());
    }
}
