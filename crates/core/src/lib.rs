//! # lixto-core
//!
//! The Lixto Visual Wrapper toolkit — the Figure 2 architecture of the
//! PODS 2004 paper:
//!
//! * the **Interactive Pattern Builder** ([`builder`]) — a faithful
//!   simulation of the visual specification procedure of Section 3.2:
//!   select a parent pattern, "click" a region of an example document (a
//!   node), let the system generalize the path, and refine the filter with
//!   conditions until false positives disappear;
//! * the **Extractor** — re-exported from `lixto-elog`;
//! * the **XML Designer** ([`designer`]) — declare patterns auxiliary and
//!   choose output labels;
//! * the **XML Transformer** ([`transformer`]) — turn the pattern
//!   instance base into an XML document along its hierarchical order.

#![forbid(unsafe_code)]

pub mod builder;
pub mod designer;
pub mod transformer;

pub use builder::PatternBuilder;
pub use designer::XmlDesign;
pub use transformer::to_xml;
