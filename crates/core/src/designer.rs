//! The XML Designer (Figure 2): "the user chooses how to map extracted
//! information — stored in the pattern instance base — to XML. This
//! process includes the tasks of declaring some intensional predicates as
//! auxiliary — tree nodes matching these do not necessarily propagate to
//! the output XML tree — and of specifying which labels nodes receive
//! based on the patterns matched."

use std::collections::HashMap;

/// Output mapping for an Elog program's patterns.
#[derive(Debug, Clone, Default)]
pub struct XmlDesign {
    auxiliary: Vec<String>,
    labels: HashMap<String, String>,
    /// Name of the XML document element.
    pub root_label: String,
}

impl XmlDesign {
    /// Default design: every pattern is emitted under its own name — "the
    /// pattern name can act as a default node label".
    pub fn new() -> XmlDesign {
        XmlDesign {
            auxiliary: Vec::new(),
            labels: HashMap::new(),
            root_label: "result".to_string(),
        }
    }

    /// Declare a pattern auxiliary (its instances are skipped; their
    /// children attach to the nearest non-auxiliary ancestor instance).
    pub fn auxiliary(mut self, pattern: &str) -> Self {
        self.auxiliary.push(pattern.to_string());
        self
    }

    /// Give a pattern a custom XML label.
    pub fn label(mut self, pattern: &str, label: &str) -> Self {
        self.labels.insert(pattern.to_string(), label.to_string());
        self
    }

    /// Set the document element name.
    pub fn root(mut self, label: &str) -> Self {
        self.root_label = label.to_string();
        self
    }

    /// Is the pattern auxiliary?
    pub fn is_auxiliary(&self, pattern: &str) -> bool {
        self.auxiliary.iter().any(|p| p == pattern)
    }

    /// The auxiliary patterns, in declaration order.
    pub fn auxiliary_patterns(&self) -> &[String] {
        &self.auxiliary
    }

    /// The custom label overrides, sorted by pattern (deterministic for
    /// serialization and fingerprinting).
    pub fn label_overrides(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(p, l)| (p.as_str(), l.as_str()))
            .collect();
        out.sort();
        out
    }

    /// The output label for a pattern.
    pub fn label_of<'a>(&'a self, pattern: &'a str) -> &'a str {
        self.labels
            .get(pattern)
            .map(String::as_str)
            .unwrap_or(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let d = XmlDesign::new()
            .auxiliary("tableseq")
            .label("itemdes", "description")
            .root("auctions");
        assert!(d.is_auxiliary("tableseq"));
        assert!(!d.is_auxiliary("record"));
        assert_eq!(d.label_of("itemdes"), "description");
        assert_eq!(d.label_of("record"), "record");
        assert_eq!(d.root_label, "auctions");
    }
}
