//! # lixto-xml
//!
//! XML substrate for `lixto-rs`.
//!
//! Section 5 of the PODS 2004 Lixto paper: "The actual data flow within the
//! Transformation Server is realized by handing over XML documents. Each
//! stage within the Transformation Server accepts XML documents (except for
//! the wrapper component, which accepts HTML documents), performs its
//! specific task, and produces an XML document as result."
//!
//! This crate is that hand-over format: an owned, mutable XML document
//! model ([`Element`], [`XmlNode`]), a parser ([`parse()`]), a serializer
//! with proper escaping ([`serialize`]), and small selection helpers
//! ([`select`]) that integrator/transformer stages use to pick apart
//! incoming documents. It is namespace-free — the paper's pipelines (NITF
//! news items, book lists, playlists) do not need namespaces, and wrappers
//! control both ends of the pipe.

#![forbid(unsafe_code)]

pub mod model;
pub mod parse;
pub mod select;
pub mod serialize;

pub use model::{Element, XmlNode};
pub use parse::{parse, ParseError};
pub use serialize::{to_string, to_string_pretty};
