//! XML serialization with escaping.

use crate::model::{Element, XmlNode};

/// Serialize compactly (no added whitespace).
pub fn to_string(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, &mut out, None, 0);
    out
}

/// Serialize with two-space indentation — element-only content is broken
/// across lines; mixed content is kept inline to avoid changing its text.
pub fn to_string_pretty(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, &mut out, Some(2), 0);
    out.push('\n');
    out
}

fn write_element(e: &Element, out: &mut String, indent: Option<usize>, depth: usize) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_attr(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let element_only = e.children.iter().all(|c| matches!(c, XmlNode::Element(_)));
    let pretty = indent.filter(|_| element_only);
    for c in &e.children {
        if let Some(step) = pretty {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        match c {
            XmlNode::Element(child) => write_element(child, out, indent, depth + 1),
            XmlNode::Text(t) => escape_text(t, out),
        }
    }
    if let Some(step) = pretty {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

pub(crate) fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

pub(crate) fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Element;

    #[test]
    fn compact_form() {
        let e = Element::new("a")
            .with_attr("k", "v")
            .with_child(Element::new("b").with_text("x"))
            .with_child(Element::new("c"));
        assert_eq!(to_string(&e), r#"<a k="v"><b>x</b><c/></a>"#);
    }

    #[test]
    fn escaping() {
        let e = Element::new("t")
            .with_attr("q", "a\"b<c>")
            .with_text("1 < 2 & 3 > 2");
        assert_eq!(
            to_string(&e),
            r#"<t q="a&quot;b&lt;c&gt;">1 &lt; 2 &amp; 3 &gt; 2</t>"#
        );
    }

    #[test]
    fn pretty_indents_element_only_content() {
        let e = Element::new("r")
            .with_child(Element::new("a").with_text("x"))
            .with_child(Element::new("b"));
        assert_eq!(to_string_pretty(&e), "<r>\n  <a>x</a>\n  <b/>\n</r>\n");
    }

    #[test]
    fn pretty_keeps_mixed_content_inline() {
        let e = Element::new("p")
            .with_text("see ")
            .with_child(Element::new("b").with_text("this"));
        assert_eq!(to_string_pretty(&e), "<p>see <b>this</b></p>\n");
    }
}
