//! Selection helpers for pipeline stages.
//!
//! Integrator and transformer components need to address parts of incoming
//! XML documents. Full XPath lives in `lixto-xpath` (over `lixto-tree`
//! documents); stages work on the lightweight [`Element`] model and only
//! need simple slash-paths and descendant searches, provided here.

use crate::model::{Element, XmlNode};

/// All elements in the subtree (including the root element itself) with
/// the given name, in document order.
pub fn descendants_named<'a>(root: &'a Element, name: &str) -> Vec<&'a Element> {
    let mut out = Vec::new();
    collect_named(root, name, &mut out);
    out
}

fn collect_named<'a>(e: &'a Element, name: &str, out: &mut Vec<&'a Element>) {
    if e.name == name {
        out.push(e);
    }
    for c in &e.children {
        if let XmlNode::Element(child) = c {
            collect_named(child, name, out);
        }
    }
}

/// Resolve a simple slash path like `"books/book/title"` relative to
/// `root` (the first segment matches children of `root`, not `root`
/// itself). Returns every match, in document order.
pub fn path<'a>(root: &'a Element, p: &str) -> Vec<&'a Element> {
    let mut current = vec![root];
    for seg in p.split('/').filter(|s| !s.is_empty()) {
        let mut next = Vec::new();
        for e in current {
            for c in e.children_named(seg) {
                next.push(c);
            }
        }
        current = next;
    }
    current
}

/// First match of [`path`].
pub fn path_first<'a>(root: &'a Element, p: &str) -> Option<&'a Element> {
    // Cheap short-circuit would require a lazy walk; paths in pipelines are
    // two or three segments deep, so collecting is fine.
    path(root, p).into_iter().next()
}

/// Visit every element in the subtree (preorder), applying `f`.
pub fn for_each_element<'a>(root: &'a Element, f: &mut impl FnMut(&'a Element)) {
    f(root);
    for c in &root.children {
        if let XmlNode::Element(e) = c {
            for_each_element(e, f);
        }
    }
}

/// Transform every element bottom-up, producing a new tree. `f` receives
/// each element after its children were processed and may rewrite it.
pub fn map_elements(root: &Element, f: &impl Fn(Element) -> Element) -> Element {
    let mut out = Element::new(&root.name);
    out.attrs = root.attrs.clone();
    for c in &root.children {
        match c {
            XmlNode::Element(e) => out.children.push(XmlNode::Element(map_elements(e, f))),
            XmlNode::Text(t) => out.children.push(XmlNode::Text(t.clone())),
        }
    }
    f(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn sample() -> Element {
        parse(
            r#"<catalog>
                 <shelf><book><title>A</title></book></shelf>
                 <book><title>B</title></book>
                 <book><title>C</title></book>
               </catalog>"#,
        )
        .unwrap()
    }

    #[test]
    fn descendants_at_any_depth() {
        let doc = sample();
        let books = descendants_named(&doc, "book");
        assert_eq!(books.len(), 3);
        let titles: Vec<_> = books.iter().filter_map(|b| b.child_text("title")).collect();
        assert_eq!(titles, vec!["A", "B", "C"]);
    }

    #[test]
    fn slash_path_is_child_steps_only() {
        let doc = sample();
        assert_eq!(path(&doc, "book").len(), 2); // not the nested one
        assert_eq!(path(&doc, "shelf/book/title").len(), 1);
        assert!(path_first(&doc, "shelf/book/title").is_some());
        assert!(path_first(&doc, "no/such").is_none());
    }

    #[test]
    fn map_elements_rewrites_bottom_up() {
        let doc = sample();
        let upper = map_elements(&doc, &|mut e| {
            e.name = e.name.to_uppercase();
            e
        });
        assert_eq!(upper.name, "CATALOG");
        assert_eq!(descendants_named(&upper, "BOOK").len(), 3);
        assert_eq!(descendants_named(&upper, "book").len(), 0);
    }

    #[test]
    fn for_each_counts_all() {
        let doc = sample();
        let mut n = 0;
        for_each_element(&doc, &mut |_| n += 1);
        assert_eq!(n, doc.element_count());
    }
}
