//! Owned XML document model.

/// A node in an XML document: an element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// An element with name, attributes and children.
    Element(Element),
    /// Character data (already unescaped).
    Text(String),
}

impl XmlNode {
    /// The element inside, if this is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        }
    }

    /// Mutable element access.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        }
    }

    /// The text inside, if this is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(t) => Some(t),
            XmlNode::Element(_) => None,
        }
    }
}

/// An XML element.
///
/// The builder-style constructors make pipeline stages pleasant to write:
///
/// ```
/// use lixto_xml::Element;
/// let book = Element::new("book")
///     .with_attr("isbn", "123")
///     .with_child_text("title", "Foundations of Databases")
///     .with_child_text("price", "59.90");
/// assert_eq!(book.child_text("title"), Some("Foundations of Databases"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name.
    pub name: String,
    /// Attributes in order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in order.
    pub children: Vec<XmlNode>,
}

impl Element {
    /// New empty element.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder: append a child element.
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder: append a text node.
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Builder: append `<name>text</name>`.
    pub fn with_child_text(self, name: impl Into<String>, text: impl Into<String>) -> Element {
        self.with_child(Element::new(name).with_text(text))
    }

    /// Append a child element (non-builder form).
    pub fn push_element(&mut self, child: Element) {
        self.children.push(XmlNode::Element(child));
    }

    /// Append a text node (non-builder form).
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(XmlNode::Text(text.into()));
    }

    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, name: &str, value: impl Into<String>) {
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value.into();
        } else {
            self.attrs.push((name.to_string(), value.into()));
        }
    }

    /// Child elements (skipping text), in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// Child elements with a given name.
    pub fn children_named<'e, 'n>(
        &'e self,
        name: &'n str,
    ) -> impl Iterator<Item = &'e Element> + use<'e, 'n> {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// First child element with a given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children_named(name).next()
    }

    /// Text content of the first child element with the given name,
    /// trimmed. `None` if there is no such child.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name)
            .and_then(|e| e.children.iter().find_map(XmlNode::as_text).map(str::trim))
    }

    /// Concatenated text of this element's whole subtree.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                XmlNode::Text(t) => out.push_str(t),
                XmlNode::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Total number of elements in this subtree (including self).
    pub fn element_count(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::element_count)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let e = Element::new("item")
            .with_attr("id", "1")
            .with_child_text("price", "$ 4.20")
            .with_child(Element::new("bids").with_text("7"));
        assert_eq!(e.attr("id"), Some("1"));
        assert_eq!(e.child_text("price"), Some("$ 4.20"));
        assert_eq!(e.child_text("bids"), Some("7"));
        assert_eq!(e.child_text("missing"), None);
        assert_eq!(e.element_count(), 3);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a").with_attr("x", "1");
        e.set_attr("x", "2");
        e.set_attr("y", "3");
        assert_eq!(e.attr("x"), Some("2"));
        assert_eq!(e.attr("y"), Some("3"));
        assert_eq!(e.attrs.len(), 2);
    }

    #[test]
    fn text_content_is_recursive() {
        let e = Element::new("a")
            .with_text("x")
            .with_child(Element::new("b").with_text("y"))
            .with_text("z");
        assert_eq!(e.text_content(), "xyz");
    }

    #[test]
    fn children_named_filters() {
        let e = Element::new("r")
            .with_child(Element::new("a"))
            .with_child(Element::new("b"))
            .with_child(Element::new("a"));
        assert_eq!(e.children_named("a").count(), 2);
        assert_eq!(e.child_elements().count(), 3);
    }
}
