//! A small strict XML parser.
//!
//! Pipeline stages exchange machine-generated XML, so unlike the HTML
//! parser this one *rejects* malformed input instead of guessing: mismatched
//! tags, unterminated constructs and stray content are errors. Supports
//! elements, attributes (single/double quoted), character data with the
//! five predefined entities plus numeric references, CDATA sections,
//! comments and processing instructions (skipped).

use crate::model::{Element, XmlNode};

/// Error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete XML document, returning its root element.
pub fn parse(src: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("content after document element"));
    }
    Ok(root)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, m: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: m.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.src[self.pos..].starts_with("<?") {
                match self.src[self.pos..].find("?>") {
                    Some(p) => self.pos += p + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.src[self.pos..].starts_with("<!--") {
                match self.src[self.pos..].find("-->") {
                    Some(p) => self.pos += p + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.src[self.pos..].starts_with("<!DOCTYPE") {
                match self.src[self.pos..].find('>') {
                    Some(p) => self.pos += p + 1,
                    None => return Err(self.err("unterminated DOCTYPE")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        if self.bytes.get(self.pos) != Some(&b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = Element::new(&name);
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) != Some(&b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el);
                }
                Some(_) => {
                    let aname = self.name()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.bytes.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("attribute value must be quoted")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = &self.src[vstart..self.pos];
                    self.pos += 1;
                    el.attrs.push((aname, unescape(raw)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err("unexpected end of input in element content"));
            }
            if self.src[self.pos..].starts_with("</") {
                self.pos += 2;
                let end_name = self.name()?;
                if end_name != name {
                    return Err(self.err(&format!(
                        "mismatched end tag: expected </{name}>, found </{end_name}>"
                    )));
                }
                self.skip_ws();
                if self.bytes.get(self.pos) != Some(&b'>') {
                    return Err(self.err("expected '>' in end tag"));
                }
                self.pos += 1;
                return Ok(el);
            } else if self.src[self.pos..].starts_with("<![CDATA[") {
                let start = self.pos + 9;
                match self.src[start..].find("]]>") {
                    Some(p) => {
                        el.children
                            .push(XmlNode::Text(self.src[start..start + p].to_string()));
                        self.pos = start + p + 3;
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
            } else if self.src[self.pos..].starts_with("<!--") {
                match self.src[self.pos..].find("-->") {
                    Some(p) => self.pos += p + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.src[self.pos..].starts_with("<?") {
                match self.src[self.pos..].find("?>") {
                    Some(p) => self.pos += p + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.bytes[self.pos] == b'<' {
                let child = self.element()?;
                el.children.push(XmlNode::Element(child));
            } else {
                let start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                    self.pos += 1;
                }
                let text = unescape(&self.src[start..self.pos]);
                if !text.trim().is_empty() {
                    el.children.push(XmlNode::Text(text));
                }
            }
        }
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        if let Some(semi) = rest.find(';') {
            let body = &rest[1..semi];
            let decoded = match body {
                "amp" => Some('&'),
                "lt" => Some('<'),
                "gt" => Some('>'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                _ => body.strip_prefix('#').and_then(|n| {
                    if let Some(h) = n.strip_prefix(['x', 'X']) {
                        u32::from_str_radix(h, 16).ok()
                    } else {
                        n.parse().ok()
                    }
                    .and_then(char::from_u32)
                }),
            };
            if let Some(c) = decoded {
                out.push(c);
                rest = &rest[semi + 1..];
                continue;
            }
        }
        out.push('&');
        rest = &rest[1..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_string;

    #[test]
    fn roundtrip() {
        let src = r#"<books><book isbn="1"><title>A &amp; B</title><price>9.99</price></book><book isbn="2"/></books>"#;
        let doc = parse(src).unwrap();
        assert_eq!(to_string(&doc), src);
    }

    #[test]
    fn declaration_doctype_comments_skipped() {
        let src = "<?xml version=\"1.0\"?>\n<!DOCTYPE r>\n<!-- hi -->\n<r><a/></r>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.name, "r");
        assert_eq!(doc.child_elements().count(), 1);
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<x><![CDATA[a < b && c]]></x>").unwrap();
        assert_eq!(doc.text_content(), "a < b && c");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
    }

    #[test]
    fn unquoted_attrs_rejected() {
        assert!(parse("<a x=1/>").is_err());
    }

    #[test]
    fn numeric_references() {
        let doc = parse("<t>&#8364;&#x41;</t>").unwrap();
        assert_eq!(doc.text_content(), "€A");
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        assert_eq!(doc.children.len(), 2);
    }

    #[test]
    fn serializer_output_reparses() {
        let e = crate::Element::new("m")
            .with_attr("a", "x<y\"z")
            .with_text("1 & 2");
        let doc = parse(&to_string(&e)).unwrap();
        assert_eq!(doc.attr("a"), Some("x<y\"z"));
        assert_eq!(doc.text_content(), "1 & 2");
    }
}
