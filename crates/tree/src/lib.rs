//! # lixto-tree
//!
//! Unranked ordered labeled trees — the data model every other `lixto-rs`
//! crate is defined over.
//!
//! The PODS 2004 Lixto paper (Section 2.2) models an HTML/XML document as a
//! relational structure
//!
//! ```text
//! t_ur = <dom, root, leaf, (label_a)_{a in Sigma},
//!         firstchild, nextsibling, lastsibling>
//! ```
//!
//! over a finite alphabet Σ, together with the *document order* relation ≺
//! (the order in which opening tags are reached when reading the document
//! left to right).
//!
//! This crate provides:
//!
//! * [`Document`] — an immutable arena-backed tree, built through
//!   [`TreeBuilder`] (or the s-expression convenience parser in [`build`]),
//!   with interned labels ([`Symbol`]) and per-node text/attribute payloads;
//! * the τ_ur relations as O(1) accessors plus the derived axes of XPath
//!   ([`axes`]): `child`, `child+`, `child*`, `following`, …;
//! * cached pre/post numbering ([`order`]) giving O(1) ancestor and
//!   document-order tests;
//! * the *tree minor* computation of Section 2.1 ([`minor`]) — the operation
//!   by which a wrapper's unary predicate assignment is turned into an
//!   output tree;
//! * rendering helpers ([`render`]).
//!
//! Strings and attribute values are, in the paper's footnote 4, conceptually
//! encoded as subtrees over a character alphabet. We store them inline as
//! payloads (text nodes carry their string, elements carry attribute lists)
//! but expose the same relational view: a text node is a `#text`-labeled
//! leaf of `dom`.

#![forbid(unsafe_code)]

pub mod axes;
pub mod build;
pub mod document;
pub mod ids;
pub mod interner;
pub mod minor;
pub mod node;
pub mod order;
pub mod render;

pub use axes::Axis;
pub use build::TreeBuilder;
pub use document::Document;
pub use ids::NodeId;
pub use interner::{Interner, Symbol};
pub use node::{NodeData, NodeKind};
pub use order::Order;

/// The label used for text nodes. Text is modeled as labeled leaves of the
/// document tree, per footnote 4 of the paper.
pub const TEXT_LABEL: &str = "#text";
