//! Pre/post numbering and document order.
//!
//! Computed once when a [`Document`](crate::Document) is frozen. The
//! interval encoding (`pre`, `subtree_end`) gives O(1) answers to
//! `child*`, `child+`, `following` and document-order comparisons — the
//! workhorse behind the linear-time evaluators in `lixto-xpath` and
//! `lixto-cq`.

use crate::ids::NodeId;
use crate::node::NodeData;

/// Pre/post numbering of a document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Order {
    /// `pre[n]` — position of `n` in preorder (document order), 0-based.
    pre: Vec<u32>,
    /// `post[n]` — position of `n` in postorder, 0-based.
    post: Vec<u32>,
    /// Preorder sequence of node ids; `preorder[pre[n]] == n`.
    preorder: Vec<NodeId>,
    /// `subtree_end[n]` — one past the preorder index of the last node in
    /// `n`'s subtree; the subtree of `n` is `preorder[pre[n]..subtree_end[n]]`.
    subtree_end: Vec<u32>,
}

impl Order {
    /// Compute numbering for an arena whose root is node 0. Iterative DFS —
    /// documents can be deep enough (degenerate chains in stress tests) that
    /// recursion would overflow.
    pub(crate) fn compute(nodes: &[NodeData]) -> Order {
        let n = nodes.len();
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut preorder = Vec::with_capacity(n);
        let mut subtree_end = vec![0u32; n];

        let mut pre_ctr = 0u32;
        let mut post_ctr = 0u32;
        // Stack of (node, entered?) frames.
        let mut stack: Vec<(NodeId, bool)> = vec![(NodeId::ROOT, false)];
        while let Some((cur, entered)) = stack.pop() {
            if entered {
                post[cur.index()] = post_ctr;
                post_ctr += 1;
                subtree_end[cur.index()] = pre_ctr;
                continue;
            }
            pre[cur.index()] = pre_ctr;
            pre_ctr += 1;
            preorder.push(cur);
            stack.push((cur, true));
            // Push children in reverse so the leftmost is processed first.
            let mut kids: Vec<NodeId> = Vec::new();
            let mut c = nodes[cur.index()].first_child;
            while let Some(k) = c {
                kids.push(k);
                c = nodes[k.index()].next_sibling;
            }
            for &k in kids.iter().rev() {
                stack.push((k, false));
            }
        }
        debug_assert_eq!(
            preorder.len(),
            n,
            "all nodes must be reachable from the root"
        );
        Order {
            pre,
            post,
            preorder,
            subtree_end,
        }
    }

    /// Preorder (document-order) index of `n`.
    #[inline]
    pub fn pre(&self, n: NodeId) -> u32 {
        self.pre[n.index()]
    }

    /// Postorder index of `n`.
    #[inline]
    pub fn post(&self, n: NodeId) -> u32 {
        self.post[n.index()]
    }

    /// The preorder sequence of nodes.
    #[inline]
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Node at a given preorder index.
    #[inline]
    pub fn node_at_pre(&self, idx: usize) -> NodeId {
        self.preorder[idx]
    }

    /// Half-open preorder interval covered by `n`'s subtree.
    #[inline]
    pub fn subtree_range(&self, n: NodeId) -> (usize, usize) {
        (
            self.pre[n.index()] as usize,
            self.subtree_end[n.index()] as usize,
        )
    }

    /// O(1) `child*(a, b)` test via interval containment.
    #[inline]
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        let (s, e) = self.subtree_range(a);
        let p = self.pre[b.index()] as usize;
        s <= p && p < e
    }

    /// Subtree size of `n` (including `n`).
    #[inline]
    pub fn subtree_size(&self, n: NodeId) -> usize {
        let (s, e) = self.subtree_range(n);
        e - s
    }
}

#[cfg(test)]
mod tests {
    use crate::build::from_sexp;

    #[test]
    fn pre_and_post_are_permutations() {
        let doc = from_sexp("(a (b (c) (d)) (e))").unwrap();
        let n = doc.len();
        let mut seen_pre = vec![false; n];
        let mut seen_post = vec![false; n];
        for id in doc.node_ids() {
            seen_pre[doc.order().pre(id) as usize] = true;
            seen_post[doc.order().post(id) as usize] = true;
        }
        assert!(seen_pre.into_iter().all(|b| b));
        assert!(seen_post.into_iter().all(|b| b));
    }

    #[test]
    fn ancestor_iff_pre_le_and_post_ge() {
        // Classical characterization: a ancestor-or-self of b iff
        // pre(a) <= pre(b) and post(a) >= post(b).
        let doc = from_sexp("(a (b (c) (d)) (e (f (g))))").unwrap();
        let o = doc.order();
        for x in doc.node_ids() {
            for y in doc.node_ids() {
                let via_interval = o.is_ancestor_or_self(x, y);
                let via_prepost = o.pre(x) <= o.pre(y) && o.post(x) >= o.post(y);
                assert_eq!(via_interval, via_prepost, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn subtree_size_matches_descendant_count() {
        let doc = from_sexp("(a (b (c) (d)) (e))").unwrap();
        for n in doc.node_ids() {
            assert_eq!(
                doc.order().subtree_size(n),
                doc.descendants_or_self(n).count()
            );
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-deep degenerate chain exercises the iterative DFS in
        // Order::compute (built with TreeBuilder, whose open/close loop is
        // also iterative).
        let depth = 200_000;
        let mut b = crate::TreeBuilder::new();
        for _ in 0..depth {
            b.open("x");
        }
        b.open("y");
        let doc = b.finish();
        assert_eq!(doc.len(), depth + 1);
        let deepest = doc.order().node_at_pre(depth);
        assert_eq!(doc.label_str(deepest), "y");
        assert!(doc.is_ancestor(doc.root(), deepest));
    }
}
