//! Label interning.
//!
//! The paper assumes labels are drawn from a *finite* alphabet Σ. Interning
//! makes `label_a(x)` tests integer comparisons and keeps the per-node
//! footprint at one word.

use std::collections::HashMap;

/// An interned label (element name, `#text`, attribute name, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping labels to dense [`Symbol`]s.
///
/// Each [`Document`](crate::Document) owns one interner; symbols are only
/// comparable within their document (documents produced by the same
/// [`TreeBuilder`](crate::TreeBuilder) pipeline share insertion order for
/// common HTML names, but code must not rely on that).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Interner {
    map: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = self.names.len() as u32;
        let owned: Box<str> = name.into();
        self.names.push(owned.clone());
        self.map.insert(owned, id);
        Symbol(id)
    }

    /// Look up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).map(|&id| Symbol(id))
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned labels (|Σ| as seen so far).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("table");
        let b = i.intern("table");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("td");
        let b = i.intern("tr");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "td");
        assert_eq!(i.resolve(b), "tr");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("div").is_none());
        i.intern("div");
        assert!(i.get("div").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let names: Vec<_> = i.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
