//! The immutable document tree and the τ_ur relational view.

use crate::ids::NodeId;
use crate::interner::{Interner, Symbol};
use crate::node::{NodeData, NodeKind};
use crate::order::Order;

/// An immutable unranked ordered labeled tree.
///
/// Construct with [`TreeBuilder`](crate::TreeBuilder) or
/// [`build::from_sexp`](crate::build::from_sexp); parse HTML with the
/// `lixto-html` crate. Once built, a document never changes — pre/post
/// numbering is computed at freeze time, so ancestor and document-order
/// tests are O(1) forever after.
///
/// All τ_ur relations of the paper (Section 2.2) are exposed:
///
/// | paper relation        | accessor                                  |
/// |-----------------------|-------------------------------------------|
/// | `dom`                 | [`Document::node_ids`]                    |
/// | `root`                | [`Document::root`] / [`Document::is_root`]|
/// | `leaf`                | [`Document::is_leaf`]                     |
/// | `lastsibling`         | [`Document::is_last_sibling`]             |
/// | `label_a(x)`          | [`Document::label`] / [`Document::has_label`] |
/// | `firstchild(x,y)`     | [`Document::first_child`]                 |
/// | `nextsibling(x,y)`    | [`Document::next_sibling`]                |
/// | document order ≺      | [`Document::doc_before`] / [`Order`]      |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) interner: Interner,
    pub(crate) order: Order,
}

impl Document {
    /// Number of nodes (|dom|).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Documents are never empty — trees have at least one node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all node ids in arena order (which is preorder for
    /// builder-produced documents, but do not rely on that — use
    /// [`Order::preorder`] when order matters).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// τ_ur `root(x)`.
    #[inline]
    pub fn is_root(&self, n: NodeId) -> bool {
        n == NodeId::ROOT
    }

    /// τ_ur `leaf(x)` — true iff the node has no children.
    #[inline]
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.node(n).first_child.is_none()
    }

    /// τ_ur `lastsibling(x)` — true iff the node is the rightmost child of
    /// some node. Following the paper, the root is *not* a last sibling.
    #[inline]
    pub fn is_last_sibling(&self, n: NodeId) -> bool {
        let d = self.node(n);
        d.parent.is_some() && d.next_sibling.is_none()
    }

    /// True iff the node is the leftmost child of some node (the unary
    /// `Firstsibling` predicate of Section 4).
    #[inline]
    pub fn is_first_sibling(&self, n: NodeId) -> bool {
        let d = self.node(n);
        d.parent.is_some() && d.prev_sibling.is_none()
    }

    /// The node's interned label.
    #[inline]
    pub fn label(&self, n: NodeId) -> Symbol {
        self.node(n).label
    }

    /// The node's label as a string.
    #[inline]
    pub fn label_str(&self, n: NodeId) -> &str {
        self.interner.resolve(self.node(n).label)
    }

    /// τ_ur `label_a(x)` by string; false if `a` never occurs in the
    /// document at all.
    pub fn has_label(&self, n: NodeId, a: &str) -> bool {
        match self.interner.get(a) {
            Some(sym) => self.node(n).label == sym,
            None => false,
        }
    }

    /// The document's label interner.
    #[inline]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// τ_ur `firstchild(x, y)` as a partial function x → y.
    #[inline]
    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).first_child
    }

    /// Rightmost child, if any.
    #[inline]
    pub fn last_child(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).last_child
    }

    /// τ_ur `nextsibling(x, y)` as a partial function x → y.
    #[inline]
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).next_sibling
    }

    /// Inverse of `nextsibling`.
    #[inline]
    pub fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).prev_sibling
    }

    /// Inverse of `firstchild ∪ nextsibling⁺` composition: the parent.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).parent
    }

    /// The node's kind (element or text).
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.node(n).kind
    }

    /// Character data of a text node (None for elements).
    pub fn text(&self, n: NodeId) -> Option<&str> {
        self.node(n).text.as_deref()
    }

    /// Attribute value by name, if present on this element.
    pub fn attr(&self, n: NodeId, name: &str) -> Option<&str> {
        let sym = self.interner.get(name)?;
        self.node(n)
            .attrs
            .iter()
            .find(|(k, _)| *k == sym)
            .map(|(_, v)| v.as_ref())
    }

    /// All attributes of an element, in source order.
    pub fn attrs(&self, n: NodeId) -> impl Iterator<Item = (&str, &str)> {
        self.node(n)
            .attrs
            .iter()
            .map(move |(k, v)| (self.interner.resolve(*k), v.as_ref()))
    }

    /// Children of `n`, left to right.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.node(n).first_child,
        }
    }

    /// Number of children.
    pub fn child_count(&self, n: NodeId) -> usize {
        self.children(n).count()
    }

    /// Descendants of `n` in document order, excluding `n` itself.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (start, end) = self.order.subtree_range(n);
        self.order.preorder()[start + 1..end].iter().copied()
    }

    /// `n` and its descendants in document order.
    pub fn descendants_or_self(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (start, end) = self.order.subtree_range(n);
        self.order.preorder()[start..end].iter().copied()
    }

    /// Ancestors of `n` from parent up to the root.
    pub fn ancestors(&self, n: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.node(n).parent,
        }
    }

    /// `child*(a, b)`: is `a` an ancestor of `b` or equal to it? O(1).
    #[inline]
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        self.order.is_ancestor_or_self(a, b)
    }

    /// `child+(a, b)`: is `a` a proper ancestor of `b`? O(1).
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.order.is_ancestor_or_self(a, b)
    }

    /// Document order test `a ≺ b` (strict). O(1).
    #[inline]
    pub fn doc_before(&self, a: NodeId, b: NodeId) -> bool {
        self.order.pre(a) < self.order.pre(b)
    }

    /// XPath `following(a, b)`: `b` starts after the subtree of `a` ends.
    /// Equivalently (paper, Section 4): ∃z1,z2 with child*(z1,a),
    /// nextsibling+(z1,z2), child*(z2,b). O(1).
    #[inline]
    pub fn is_following(&self, a: NodeId, b: NodeId) -> bool {
        self.order.subtree_range(a).1 <= self.order.pre(b) as usize
    }

    /// Pre/post numbering and preorder sequence.
    #[inline]
    pub fn order(&self) -> &Order {
        &self.order
    }

    /// Concatenated text of all text nodes in the subtree of `n`, in
    /// document order. This is the "element text" that Elog's string
    /// conditions and `subtext` extraction operate on.
    pub fn text_content(&self, n: NodeId) -> String {
        let mut out = String::new();
        for d in self.descendants_or_self(n) {
            if let Some(t) = self.node(d).text.as_deref() {
                out.push_str(t);
            }
        }
        out
    }

    /// Depth of `n` (root has depth 0).
    pub fn depth(&self, n: NodeId) -> usize {
        self.ancestors(n).count()
    }

    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }
}

/// Iterator over a node's children (see [`Document::children`]).
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// Iterator over a node's ancestors (see [`Document::ancestors`]).
pub struct Ancestors<'d> {
    doc: &'d Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).parent;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::build::from_sexp;

    #[test]
    fn tau_ur_relations_of_figure_1() {
        // Figure 1 of the paper: root n1 with children n2..; we encode
        //        n1
        //      / | \
        //    n2 n3 n6    with n3 having children n4 n5
        let doc = from_sexp("(n1 (n2) (n3 (n4) (n5)) (n6))").unwrap();
        let n1 = doc.root();
        let kids: Vec<_> = doc.children(n1).collect();
        assert_eq!(kids.len(), 3);
        let (n2, n3, n6) = (kids[0], kids[1], kids[2]);
        assert_eq!(doc.first_child(n1), Some(n2));
        assert_eq!(doc.next_sibling(n2), Some(n3));
        assert_eq!(doc.next_sibling(n3), Some(n6));
        assert_eq!(doc.next_sibling(n6), None);
        assert!(doc.is_last_sibling(n6));
        assert!(!doc.is_last_sibling(n1), "root is not a last sibling");
        assert!(doc.is_leaf(n2));
        assert!(!doc.is_leaf(n3));
        let grandkids: Vec<_> = doc.children(n3).collect();
        assert_eq!(doc.label_str(grandkids[0]), "n4");
        assert!(doc.is_first_sibling(n2));
        assert!(!doc.is_first_sibling(n3));
    }

    #[test]
    fn ancestor_and_following_are_consistent_with_definitions() {
        let doc = from_sexp("(a (b (c) (d)) (e (f)))").unwrap();
        let ids: Vec<_> = doc.order().preorder().to_vec();
        // preorder: a b c d e f
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        assert!(doc.is_ancestor(a, c));
        assert!(doc.is_ancestor_or_self(a, a));
        assert!(!doc.is_ancestor(a, a));
        assert!(!doc.is_ancestor(c, a));
        // following: everything strictly after the subtree
        assert!(doc.is_following(b, e));
        assert!(doc.is_following(c, d));
        assert!(!doc.is_following(b, c), "descendants are not following");
        assert!(!doc.is_following(e, b));
        assert!(doc.is_following(d, f));
        // doc order
        assert!(doc.doc_before(a, b) && doc.doc_before(d, e) && doc.doc_before(e, f));
    }

    #[test]
    fn text_content_concatenates_in_document_order() {
        let doc = from_sexp(r#"(tr (td "1 " (b "bid")) (td "now"))"#).unwrap();
        assert_eq!(doc.text_content(doc.root()), "1 bidnow");
    }

    #[test]
    fn attrs_are_accessible() {
        let doc = from_sexp(r#"(table bgcolor="green" width="100%")"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "bgcolor"), Some("green"));
        assert_eq!(doc.attr(doc.root(), "width"), Some("100%"));
        assert_eq!(doc.attr(doc.root(), "missing"), None);
        assert_eq!(doc.attrs(doc.root()).count(), 2);
    }

    #[test]
    fn descendants_iterate_in_document_order() {
        let doc = from_sexp("(a (b (c)) (d))").unwrap();
        let labels: Vec<_> = doc
            .descendants(doc.root())
            .map(|n| doc.label_str(n).to_string())
            .collect();
        assert_eq!(labels, vec!["b", "c", "d"]);
        let labels2: Vec<_> = doc
            .descendants_or_self(doc.root())
            .map(|n| doc.label_str(n).to_string())
            .collect();
        assert_eq!(labels2, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn depth_counts_edges_to_root() {
        let doc = from_sexp("(a (b (c)))").unwrap();
        let c = doc.descendants(doc.root()).last().unwrap();
        assert_eq!(doc.depth(doc.root()), 0);
        assert_eq!(doc.depth(c), 2);
    }
}
