//! Document construction.
//!
//! [`TreeBuilder`] is the event-style interface used by the HTML parser and
//! the synthetic workload generators; [`from_sexp`] is a compact literal
//! syntax for tests and documentation:
//!
//! ```
//! let doc = lixto_tree::build::from_sexp(
//!     r#"(table (tr (td bgcolor="green" "price") (td "$ 9.99")))"#,
//! ).unwrap();
//! assert_eq!(doc.text_content(doc.root()), "price$ 9.99");
//! ```

use crate::document::Document;
use crate::ids::NodeId;
use crate::interner::Interner;
use crate::node::NodeData;
use crate::order::Order;
use crate::TEXT_LABEL;

/// Incremental, event-driven construction of a [`Document`].
///
/// The builder enforces the tree discipline: exactly one root element, every
/// `open` matched by a `close`, text only inside an open element.
pub struct TreeBuilder {
    nodes: Vec<NodeData>,
    interner: Interner,
    /// Stack of currently open elements.
    open: Vec<NodeId>,
    finished_root: bool,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        TreeBuilder {
            nodes: Vec::new(),
            interner: Interner::new(),
            open: Vec::new(),
            finished_root: false,
        }
    }

    /// Open an element with the given label. Returns its node id.
    ///
    /// # Panics
    /// Panics if a complete root subtree has already been closed (documents
    /// are single trees).
    pub fn open(&mut self, label: &str) -> NodeId {
        assert!(
            !self.finished_root,
            "cannot add a second root to a document"
        );
        let sym = self.interner.intern(label);
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData::new_element(sym));
        self.attach(id);
        self.open.push(id);
        id
    }

    /// Add an attribute to the innermost open element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn attr(&mut self, name: &str, value: &str) {
        let &cur = self.open.last().expect("attr outside any open element");
        let sym = self.interner.intern(name);
        self.nodes[cur.index()].attrs.push((sym, value.into()));
    }

    /// Append a text node to the innermost open element. Empty strings are
    /// ignored (they would create meaningless leaves). Returns the id if a
    /// node was created.
    pub fn text(&mut self, data: &str) -> Option<NodeId> {
        if data.is_empty() {
            return None;
        }
        let &_cur = self.open.last().expect("text outside any open element");
        let sym = self.interner.intern(TEXT_LABEL);
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData::new_text(sym, data.into()));
        self.attach(id);
        Some(id)
    }

    /// Close the innermost open element.
    ///
    /// # Panics
    /// Panics if nothing is open.
    pub fn close(&mut self) {
        self.open.pop().expect("close without matching open");
        if self.open.is_empty() {
            self.finished_root = true;
        }
    }

    /// Label of the innermost open element, if any — used by forgiving
    /// parsers to decide on implied end tags.
    pub fn current_label(&self) -> Option<&str> {
        self.open
            .last()
            .map(|&n| self.interner.resolve(self.nodes[n.index()].label))
    }

    /// Depth of the open-element stack.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Finish construction. Closes any still-open elements (forgiving-HTML
    /// behaviour) and freezes the document, computing its [`Order`].
    ///
    /// # Panics
    /// Panics if no node was ever added — trees have at least one node.
    pub fn finish(mut self) -> Document {
        while !self.open.is_empty() {
            self.close();
        }
        assert!(!self.nodes.is_empty(), "a document needs at least one node");
        let order = Order::compute(&self.nodes);
        Document {
            nodes: self.nodes,
            interner: self.interner,
            order,
        }
    }

    fn attach(&mut self, id: NodeId) {
        if let Some(&parent) = self.open.last() {
            self.nodes[id.index()].parent = Some(parent);
            let p = &mut self.nodes[parent.index()];
            match p.last_child {
                None => {
                    p.first_child = Some(id);
                    p.last_child = Some(id);
                }
                Some(prev) => {
                    p.last_child = Some(id);
                    self.nodes[prev.index()].next_sibling = Some(id);
                    self.nodes[id.index()].prev_sibling = Some(prev);
                }
            }
        } else {
            assert_eq!(
                id,
                NodeId::ROOT,
                "only the first node may be parentless (the root)"
            );
        }
    }
}

/// Error from [`from_sexp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SexpError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SexpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "s-expression error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for SexpError {}

/// Parse a document literal:
///
/// ```text
/// doc      := element
/// element  := '(' name (attr | child)* ')'
/// attr     := name '=' '"' chars '"'
/// child    := element | '"' chars '"'      (a text node)
/// ```
///
/// Whitespace between tokens is insignificant. `\"` and `\\` escapes are
/// supported inside strings.
pub fn from_sexp(input: &str) -> Result<Document, SexpError> {
    let mut p = SexpParser {
        bytes: input.as_bytes(),
        pos: 0,
        builder: TreeBuilder::new(),
    };
    p.skip_ws();
    p.element()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document"));
    }
    Ok(p.builder.finish())
}

struct SexpParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    builder: TreeBuilder,
}

impl SexpParser<'_> {
    fn err(&self, msg: &str) -> SexpError {
        SexpError {
            at: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn element(&mut self) -> Result<(), SexpError> {
        if self.bytes.get(self.pos) != Some(&b'(') {
            return Err(self.err("expected '('"));
        }
        self.pos += 1;
        self.skip_ws();
        let name = self.name()?;
        self.builder.open(&name);
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b')') => {
                    self.pos += 1;
                    self.builder.close();
                    return Ok(());
                }
                Some(b'(') => self.element()?,
                Some(b'"') => {
                    let s = self.string()?;
                    self.builder.text(&s);
                }
                Some(_) => {
                    // attribute: name = "value"
                    let name = self.name()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let val = self.string()?;
                    self.builder.attr(&name, &val);
                }
                None => return Err(self.err("unexpected end of input inside element")),
            }
        }
    }

    fn name(&mut self) -> Result<String, SexpError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() || b == b'(' || b == b')' || b == b'=' || b == b'"' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("name is not UTF-8"))?
            .to_string())
    }

    fn string(&mut self) -> Result<String, SexpError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            match b {
                b'"' => return String::from_utf8(out).map_err(|_| self.err("string is not UTF-8")),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    out.push(esc);
                }
                _ => out.push(b),
            }
        }
        Err(self.err("unterminated string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn builder_produces_sibling_chain() {
        let mut b = TreeBuilder::new();
        b.open("ul");
        for i in 0..3 {
            b.open("li");
            b.text(&format!("item {i}"));
            b.close();
        }
        let doc = b.finish();
        let kids: Vec<_> = doc.children(doc.root()).collect();
        assert_eq!(kids.len(), 3);
        assert!(doc.is_first_sibling(kids[0]));
        assert!(doc.is_last_sibling(kids[2]));
        assert_eq!(doc.text_content(kids[1]), "item 1");
    }

    #[test]
    fn finish_closes_dangling_elements() {
        let mut b = TreeBuilder::new();
        b.open("html");
        b.open("body");
        b.open("p");
        b.text("hello");
        let doc = b.finish();
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.text_content(doc.root()), "hello");
    }

    #[test]
    #[should_panic(expected = "second root")]
    fn two_roots_panic() {
        let mut b = TreeBuilder::new();
        b.open("a");
        b.close();
        b.open("b");
    }

    #[test]
    fn sexp_roundtrip_with_attrs_and_text() {
        let doc = from_sexp(r#"(a href="x.html" (b "bold") " tail")"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "href"), Some("x.html"));
        let kids: Vec<_> = doc.children(doc.root()).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.kind(kids[1]), NodeKind::Text);
        assert_eq!(doc.text(kids[1]), Some(" tail"));
    }

    #[test]
    fn sexp_escapes() {
        let doc = from_sexp(r#"(t "say \"hi\" \\ ok")"#).unwrap();
        assert_eq!(doc.text_content(doc.root()), r#"say "hi" \ ok"#);
    }

    #[test]
    fn sexp_rejects_garbage() {
        assert!(from_sexp("(a").is_err());
        assert!(from_sexp("(a) (b)").is_err());
        assert!(from_sexp("a").is_err());
        assert!(from_sexp(r#"(a x=)"#).is_err());
        assert!(from_sexp(r#"(a "unterminated)"#).is_err());
    }

    #[test]
    fn empty_text_is_skipped() {
        let mut b = TreeBuilder::new();
        b.open("p");
        assert!(b.text("").is_none());
        let doc = b.finish();
        assert_eq!(doc.len(), 1);
    }
}
