//! Compact node identifiers.
//!
//! Node ids are indices into the [`Document`](crate::Document) arena. They
//! are only meaningful relative to the document that produced them; mixing
//! ids across documents is a logic error (caught by debug assertions in the
//! accessors, not by the type system — wrappers routinely process millions
//! of nodes and a document handle per id would double the footprint).

/// Identifier of a node within one [`Document`](crate::Document).
///
/// Internally an index into the document's node arena. `u32` keeps hot
/// node-set structures small (the performance guides' "smaller integers"
/// advice); 4 billion nodes per document is far beyond any wrapping
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The id of a document's root node. Documents always have at least one
    /// node (trees in the paper are non-empty), and the builder materializes
    /// the root first.
    pub const ROOT: NodeId = NodeId(0);

    /// Index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for de-serialization and for
    /// iterating over `0..doc.len()`; out-of-range ids panic on use.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_index_zero() {
        assert_eq!(NodeId::ROOT.index(), 0);
    }

    #[test]
    fn roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }

    #[test]
    fn ordering_follows_arena_order() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
