//! Rendering documents back to text — s-expressions for tests and debug
//! output, and an indented outline for human inspection.

use crate::document::Document;
use crate::ids::NodeId;
use crate::node::NodeKind;

/// Render the whole document as the s-expression dialect accepted by
/// [`build::from_sexp`](crate::build::from_sexp).
pub fn to_sexp(doc: &Document) -> String {
    let mut out = String::new();
    write_sexp(doc, doc.root(), &mut out);
    out
}

/// Render the subtree rooted at `n` as an s-expression.
pub fn subtree_to_sexp(doc: &Document, n: NodeId) -> String {
    let mut out = String::new();
    write_sexp(doc, n, &mut out);
    out
}

fn write_sexp(doc: &Document, n: NodeId, out: &mut String) {
    match doc.kind(n) {
        NodeKind::Text => {
            out.push('"');
            escape_into(doc.text(n).unwrap_or_default(), out);
            out.push('"');
        }
        NodeKind::Element => {
            out.push('(');
            out.push_str(doc.label_str(n));
            for (k, v) in doc.attrs(n) {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_into(v, out);
                out.push('"');
            }
            for c in doc.children(n) {
                out.push(' ');
                write_sexp(doc, c, out);
            }
            out.push(')');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(ch),
        }
    }
}

/// Render an indented outline, one node per line — the "program tree view"
/// style of Figure 4, useful in examples and debugging.
pub fn to_outline(doc: &Document) -> String {
    let mut out = String::new();
    let mut stack = vec![(doc.root(), 0usize)];
    while let Some((n, depth)) = stack.pop() {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match doc.kind(n) {
            NodeKind::Text => {
                let t = doc.text(n).unwrap_or_default();
                let shown: String = t.chars().take(40).collect();
                out.push_str(&format!("#text {shown:?}\n"));
            }
            NodeKind::Element => {
                out.push_str(doc.label_str(n));
                let attrs: Vec<String> = doc.attrs(n).map(|(k, v)| format!("{k}={v:?}")).collect();
                if !attrs.is_empty() {
                    out.push_str(&format!(" [{}]", attrs.join(" ")));
                }
                out.push('\n');
            }
        }
        let kids: Vec<_> = doc.children(n).collect();
        for &k in kids.iter().rev() {
            stack.push((k, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::from_sexp;

    #[test]
    fn sexp_roundtrips() {
        let src = r#"(html (body (table border="1" (tr (td "a \"quoted\" cell")))))"#;
        let doc = from_sexp(src).unwrap();
        let rendered = to_sexp(&doc);
        let doc2 = from_sexp(&rendered).unwrap();
        assert_eq!(rendered, to_sexp(&doc2));
        assert_eq!(doc.len(), doc2.len());
    }

    #[test]
    fn outline_contains_every_label() {
        let doc = from_sexp(r#"(a (b "hi") (c x="1"))"#).unwrap();
        let outline = to_outline(&doc);
        assert!(outline.contains("a\n"));
        assert!(outline.contains("  b\n"));
        assert!(outline.contains("c [x=\"1\"]"));
        assert!(outline.contains("#text \"hi\""));
    }

    #[test]
    fn subtree_rendering() {
        let doc = from_sexp("(a (b (c)) (d))").unwrap();
        let b = doc.children(doc.root()).next().unwrap();
        assert_eq!(subtree_to_sexp(&doc, b), "(b (c))");
    }
}
