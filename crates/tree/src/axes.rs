//! Navigational axes over documents.
//!
//! Section 4 of the paper studies query languages over the axis relations
//! `Child`, `Child+`, `Child*`, `Nextsibling`, `Nextsibling+`,
//! `Nextsibling*`, and `Following`. This module gives each axis a uniform
//! interface: enumerate partners of a node, and test membership of a pair.
//! The XPath axes (`parent`, `ancestor`, `preceding`, …) are included since
//! `lixto-xpath` is built on the same enumeration.

use crate::document::Document;
use crate::ids::NodeId;

/// An axis relation between two nodes of a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The node itself.
    SelfAxis,
    /// `Child(x, y)`: y is a child of x.
    Child,
    /// `Child+(x, y)`: y is a proper descendant of x.
    Descendant,
    /// `Child*(x, y)`: y is x or a descendant of x.
    DescendantOrSelf,
    /// Inverse of `Child`.
    Parent,
    /// Inverse of `Child+`.
    Ancestor,
    /// Inverse of `Child*`.
    AncestorOrSelf,
    /// `Nextsibling(x, y)`: y is the sibling immediately right of x.
    NextSibling,
    /// `Nextsibling+(x, y)`: y is a sibling strictly right of x.
    FollowingSibling,
    /// `Nextsibling*(x, y)`: y is x or a sibling right of x.
    FollowingSiblingOrSelf,
    /// Inverse of `NextSibling`.
    PrevSibling,
    /// Inverse of `Nextsibling+` (XPath `preceding-sibling`).
    PrecedingSibling,
    /// Inverse of `Nextsibling*`.
    PrecedingSiblingOrSelf,
    /// `Following(x, y)` — after x in document order, not a descendant of x.
    Following,
    /// Inverse of `Following` (XPath `preceding`).
    Preceding,
    /// `Firstchild(x, y)`: y is the leftmost child of x.
    FirstChild,
    /// Inverse of `Firstchild`.
    FirstChildInv,
}

impl Axis {
    /// The inverse axis, satisfying `axis(x,y) ⇔ inverse(y,x)`.
    pub fn inverse(self) -> Axis {
        use Axis::*;
        match self {
            SelfAxis => SelfAxis,
            Child => Parent,
            Parent => Child,
            Descendant => Ancestor,
            Ancestor => Descendant,
            DescendantOrSelf => AncestorOrSelf,
            AncestorOrSelf => DescendantOrSelf,
            NextSibling => PrevSibling,
            PrevSibling => NextSibling,
            FollowingSibling => PrecedingSibling,
            PrecedingSibling => FollowingSibling,
            FollowingSiblingOrSelf => PrecedingSiblingOrSelf,
            PrecedingSiblingOrSelf => FollowingSiblingOrSelf,
            Following => Preceding,
            Preceding => Following,
            FirstChild => FirstChildInv,
            FirstChildInv => FirstChild,
        }
    }

    /// Name as it appears in XPath / the paper.
    pub fn name(self) -> &'static str {
        use Axis::*;
        match self {
            SelfAxis => "self",
            Child => "child",
            Descendant => "descendant",
            DescendantOrSelf => "descendant-or-self",
            Parent => "parent",
            Ancestor => "ancestor",
            AncestorOrSelf => "ancestor-or-self",
            NextSibling => "nextsibling",
            FollowingSibling => "following-sibling",
            FollowingSiblingOrSelf => "following-sibling-or-self",
            PrevSibling => "prevsibling",
            PrecedingSibling => "preceding-sibling",
            PrecedingSiblingOrSelf => "preceding-sibling-or-self",
            Following => "following",
            Preceding => "preceding",
            FirstChild => "firstchild",
            FirstChildInv => "firstchild-inverse",
        }
    }

    /// Membership test `axis(x, y)`; O(1) thanks to pre/post numbering
    /// except for sibling-transitive axes which are O(#siblings between).
    pub fn holds(self, doc: &Document, x: NodeId, y: NodeId) -> bool {
        use Axis::*;
        match self {
            SelfAxis => x == y,
            Child => doc.parent(y) == Some(x),
            Descendant => doc.is_ancestor(x, y),
            DescendantOrSelf => doc.is_ancestor_or_self(x, y),
            Parent => doc.parent(x) == Some(y),
            Ancestor => doc.is_ancestor(y, x),
            AncestorOrSelf => doc.is_ancestor_or_self(y, x),
            NextSibling => doc.next_sibling(x) == Some(y),
            PrevSibling => doc.prev_sibling(x) == Some(y),
            FollowingSibling => {
                doc.parent(x).is_some() && doc.parent(x) == doc.parent(y) && doc.doc_before(x, y)
            }
            PrecedingSibling => Axis::FollowingSibling.holds(doc, y, x),
            FollowingSiblingOrSelf => x == y || Axis::FollowingSibling.holds(doc, x, y),
            PrecedingSiblingOrSelf => x == y || Axis::PrecedingSibling.holds(doc, x, y),
            Following => doc.is_following(x, y),
            Preceding => doc.is_following(y, x),
            FirstChild => doc.first_child(x) == Some(y),
            FirstChildInv => doc.first_child(y) == Some(x),
        }
    }

    /// Enumerate all `y` with `axis(x, y)`, in document order.
    pub fn partners(self, doc: &Document, x: NodeId) -> Vec<NodeId> {
        use Axis::*;
        match self {
            SelfAxis => vec![x],
            Child => doc.children(x).collect(),
            Descendant => doc.descendants(x).collect(),
            DescendantOrSelf => doc.descendants_or_self(x).collect(),
            Parent => doc.parent(x).into_iter().collect(),
            Ancestor => {
                let mut v: Vec<_> = doc.ancestors(x).collect();
                v.reverse(); // document order: root first
                v
            }
            AncestorOrSelf => {
                let mut v: Vec<_> = doc.ancestors(x).collect();
                v.reverse();
                v.push(x);
                v
            }
            NextSibling => doc.next_sibling(x).into_iter().collect(),
            PrevSibling => doc.prev_sibling(x).into_iter().collect(),
            FollowingSibling => {
                let mut v = Vec::new();
                let mut cur = doc.next_sibling(x);
                while let Some(s) = cur {
                    v.push(s);
                    cur = doc.next_sibling(s);
                }
                v
            }
            PrecedingSibling => {
                let mut v = Vec::new();
                let mut cur = doc.prev_sibling(x);
                while let Some(s) = cur {
                    v.push(s);
                    cur = doc.prev_sibling(s);
                }
                v.reverse();
                v
            }
            FollowingSiblingOrSelf => {
                let mut v = vec![x];
                v.extend(Axis::FollowingSibling.partners(doc, x));
                v
            }
            PrecedingSiblingOrSelf => {
                let mut v = Axis::PrecedingSibling.partners(doc, x);
                v.push(x);
                v
            }
            Following => {
                let (_, end) = doc.order().subtree_range(x);
                doc.order().preorder()[end..].to_vec()
            }
            Preceding => {
                // Nodes before x in document order that are not ancestors.
                let upto = doc.order().pre(x) as usize;
                doc.order().preorder()[..upto]
                    .iter()
                    .copied()
                    .filter(|&y| !doc.is_ancestor(y, x))
                    .collect()
            }
            FirstChild => doc.first_child(x).into_iter().collect(),
            FirstChildInv => {
                // y such that firstchild(y) == x, i.e. x's parent if x is a
                // first sibling.
                match doc.parent(x) {
                    Some(p) if doc.first_child(p) == Some(x) => vec![p],
                    _ => vec![],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::from_sexp;

    fn all_axes() -> Vec<Axis> {
        use Axis::*;
        vec![
            SelfAxis,
            Child,
            Descendant,
            DescendantOrSelf,
            Parent,
            Ancestor,
            AncestorOrSelf,
            NextSibling,
            PrevSibling,
            FollowingSibling,
            PrecedingSibling,
            FollowingSiblingOrSelf,
            PrecedingSiblingOrSelf,
            Following,
            Preceding,
            FirstChild,
            FirstChildInv,
        ]
    }

    #[test]
    fn partners_agree_with_holds() {
        let doc = from_sexp("(a (b (c) (d) (e)) (f (g)) (h))").unwrap();
        for axis in all_axes() {
            for x in doc.node_ids() {
                let partners = axis.partners(&doc, x);
                for y in doc.node_ids() {
                    assert_eq!(
                        partners.contains(&y),
                        axis.holds(&doc, x, y),
                        "axis {} x={x} y={y}",
                        axis.name()
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_is_an_involution_and_flips_pairs() {
        let doc = from_sexp("(a (b (c)) (d))").unwrap();
        for axis in all_axes() {
            assert_eq!(axis.inverse().inverse(), axis);
            for x in doc.node_ids() {
                for y in doc.node_ids() {
                    assert_eq!(
                        axis.holds(&doc, x, y),
                        axis.inverse().holds(&doc, y, x),
                        "axis {}",
                        axis.name()
                    );
                }
            }
        }
    }

    #[test]
    fn following_matches_paper_definition() {
        // Following(x,y) := ∃z1,z2 Child*(z1,x) ∧ Nextsibling+(z1,z2)
        //                   ∧ Child*(z2,y)    (Section 4)
        let doc = from_sexp("(a (b (c) (d)) (e (f)) (g))").unwrap();
        for x in doc.node_ids() {
            for y in doc.node_ids() {
                let mut by_def = false;
                for z1 in doc.node_ids() {
                    for z2 in doc.node_ids() {
                        if doc.is_ancestor_or_self(z1, x)
                            && Axis::FollowingSibling.holds(&doc, z1, z2)
                            && doc.is_ancestor_or_self(z2, y)
                        {
                            by_def = true;
                        }
                    }
                }
                // z1 ancestor-or-self of x — note direction: Child*(z1,x)
                assert_eq!(Axis::Following.holds(&doc, x, y), by_def, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn partners_are_in_document_order() {
        let doc = from_sexp("(a (b (c) (d)) (e (f)) (g))").unwrap();
        for axis in all_axes() {
            for x in doc.node_ids() {
                let ps = axis.partners(&doc, x);
                for w in ps.windows(2) {
                    assert!(
                        doc.doc_before(w[0], w[1]),
                        "axis {} from {x}: {} !< {}",
                        axis.name(),
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }
}
