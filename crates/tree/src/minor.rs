//! Tree minor computation — turning unary predicate assignments into an
//! output tree.
//!
//! Section 2.1 of the paper: given information extraction functions that
//! assign unary predicates to nodes, "the output tree contains a node if a
//! predicate corresponding to an information extraction function was
//! computed for it, and contains an edge from node v to node w if there is a
//! directed path from v to w in the input tree, both v and w were assigned
//! information extraction predicates, and there is no node on the path from
//! v to w (other than v and w) that was assigned information extraction
//! predicates", preserving document order.
//!
//! A node may be relabeled (typically with the pattern name); nodes assigned
//! no predicate are filtered out but their selected descendants are spliced
//! up to the closest selected ancestor.

use crate::build::TreeBuilder;
use crate::document::Document;
use crate::ids::NodeId;
use crate::node::NodeKind;

/// A relabeling decision for one selected node.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The selected input node.
    pub node: NodeId,
    /// Its label in the output tree (e.g. the pattern name).
    pub new_label: String,
}

/// Options controlling the minor computation.
#[derive(Debug, Clone)]
pub struct MinorOptions {
    /// Label of the synthetic root emitted when the selection does not
    /// contain a unique topmost node. The paper's XML Transformer emits a
    /// document element for exactly this reason.
    pub synthetic_root: String,
    /// If true, the text content of selected *leaf-of-selection* nodes is
    /// copied into the output as a text child (the way Lixto materializes
    /// extracted values).
    pub copy_text_of_leaves: bool,
}

impl Default for MinorOptions {
    fn default() -> Self {
        MinorOptions {
            synthetic_root: "result".to_string(),
            copy_text_of_leaves: true,
        }
    }
}

/// Compute the tree minor of `doc` induced by `selections`, without copying
/// any text payloads (structure only).
///
/// Duplicate selections of the same node are allowed (a node matching
/// several patterns); the *first* selection's label wins and the rest are
/// ignored, mirroring the paper's remark that the pattern name acts as a
/// default node label "in case a node matches only one pattern".
///
/// Complexity: O(|dom| + |selections|).
pub fn tree_minor(doc: &Document, selections: &[Selection], opts: &MinorOptions) -> Document {
    let opts = MinorOptions {
        copy_text_of_leaves: false,
        ..opts.clone()
    };
    tree_minor_with_values(doc, selections, &opts)
}

/// [`tree_minor`] plus value materialization: selections with no selected
/// node strictly below them ("selection leaves") get their input text
/// content attached as a text child.
///
/// This is the variant the Lixto XML Transformer uses: `<price>$ 9.99</price>`
/// rather than an empty `<price/>`.
pub fn tree_minor_with_values(
    doc: &Document,
    selections: &[Selection],
    opts: &MinorOptions,
) -> Document {
    let mut chosen: Vec<Option<&str>> = vec![None; doc.len()];
    for sel in selections {
        let slot = &mut chosen[sel.node.index()];
        if slot.is_none() {
            *slot = Some(&sel.new_label);
        }
    }
    // A selected node is a "selection leaf" if no selected node is a proper
    // descendant. One pass over preorder with a counter stack suffices.
    let mut has_selected_desc = vec![false; doc.len()];
    {
        let mut stack: Vec<NodeId> = Vec::new();
        for &n in doc.order().preorder() {
            while let Some(&top) = stack.last() {
                if doc.is_ancestor_or_self(top, n) {
                    break;
                }
                stack.pop();
            }
            if chosen[n.index()].is_some() {
                for &anc in &stack {
                    has_selected_desc[anc.index()] = true;
                }
                stack.push(n);
            }
        }
    }

    let mut b = TreeBuilder::new();
    b.open(&opts.synthetic_root);
    let mut open_stack: Vec<NodeId> = Vec::new();
    let preorder = doc.order().preorder().to_vec();
    for n in preorder {
        while let Some(&top) = open_stack.last() {
            if doc.is_ancestor_or_self(top, n) {
                break;
            }
            b.close();
            open_stack.pop();
        }
        if let Some(label) = chosen[n.index()] {
            b.open(label);
            if doc.kind(n) == NodeKind::Element {
                for (k, v) in doc.attrs(n) {
                    b.attr(k, v);
                }
            }
            if opts.copy_text_of_leaves && !has_selected_desc[n.index()] {
                let txt = match doc.kind(n) {
                    NodeKind::Text => doc.text(n).unwrap_or_default().to_string(),
                    NodeKind::Element => doc.text_content(n),
                };
                let trimmed = txt.trim();
                if !trimmed.is_empty() {
                    b.text(trimmed);
                }
            }
            open_stack.push(n);
        }
    }
    while open_stack.pop().is_some() {
        b.close();
    }
    b.close();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::from_sexp;
    use crate::render::to_sexp;

    fn sel(doc: &Document, label_in: &str, label_out: &str) -> Vec<Selection> {
        doc.node_ids()
            .filter(|&n| doc.label_str(n) == label_in)
            .map(|node| Selection {
                node,
                new_label: label_out.to_string(),
            })
            .collect()
    }

    #[test]
    fn edges_skip_unselected_intermediate_nodes() {
        // table > tr > td: select table and td; tr vanishes, td hangs
        // directly under table in the output.
        let doc = from_sexp(r#"(table (tr (td "a") (td "b")))"#).unwrap();
        let mut sels = sel(&doc, "table", "record");
        sels.extend(sel(&doc, "td", "field"));
        let out = tree_minor_with_values(&doc, &sels, &MinorOptions::default());
        assert_eq!(
            to_sexp(&out),
            r#"(result (record (field "a") (field "b")))"#
        );
    }

    #[test]
    fn document_order_is_preserved() {
        let doc = from_sexp("(r (x (a \"1\")) (y (a \"2\")) (a \"3\"))").unwrap();
        let out = tree_minor_with_values(&doc, &sel(&doc, "a", "v"), &MinorOptions::default());
        assert_eq!(to_sexp(&out), r#"(result (v "1") (v "2") (v "3"))"#);
    }

    #[test]
    fn unselected_document_yields_bare_root() {
        let doc = from_sexp("(a (b))").unwrap();
        let out = tree_minor_with_values(&doc, &[], &MinorOptions::default());
        assert_eq!(to_sexp(&out), "(result)");
    }

    #[test]
    fn first_selection_label_wins_for_multimatched_nodes() {
        let doc = from_sexp("(a (b \"x\"))").unwrap();
        let b_node = doc.children(doc.root()).next().unwrap();
        let sels = vec![
            Selection {
                node: b_node,
                new_label: "first".into(),
            },
            Selection {
                node: b_node,
                new_label: "second".into(),
            },
        ];
        let out = tree_minor_with_values(&doc, &sels, &MinorOptions::default());
        assert_eq!(to_sexp(&out), r#"(result (first "x"))"#);
    }

    #[test]
    fn nested_selections_keep_hierarchy() {
        let doc =
            from_sexp(r#"(page (rec (price "$1") (bids "3")) (rec (price "$2") (bids "0")))"#)
                .unwrap();
        let mut sels = sel(&doc, "rec", "item");
        sels.extend(sel(&doc, "price", "price"));
        sels.extend(sel(&doc, "bids", "bids"));
        let out = tree_minor_with_values(&doc, &sels, &MinorOptions::default());
        assert_eq!(
            to_sexp(&out),
            r#"(result (item (price "$1") (bids "3")) (item (price "$2") (bids "0")))"#
        );
    }

    #[test]
    fn attributes_carry_through() {
        let doc = from_sexp(r#"(a (img src="cover.png"))"#).unwrap();
        let out =
            tree_minor_with_values(&doc, &sel(&doc, "img", "cover"), &MinorOptions::default());
        assert_eq!(to_sexp(&out), r#"(result (cover src="cover.png"))"#);
    }
}
