//! Per-node storage.

use crate::ids::NodeId;
use crate::interner::Symbol;

/// What kind of node this is.
///
/// The relational view of the paper does not distinguish kinds — text is
/// just a `#text`-labeled leaf — but wrappers need the payloads, and the
/// HTML tree builder needs to know which nodes may have children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element (HTML/XML tag). Carries attributes, may have children.
    Element,
    /// A text leaf. Carries its character data in `NodeData::text`.
    Text,
}

/// Arena entry for one node.
///
/// The five structural links realize the binary relations of τ_ur and their
/// inverses (firstchild / firstchild⁻¹ via `parent`+`prev_sibling == None`,
/// nextsibling / nextsibling⁻¹) in O(1). `last_child` accelerates the
/// builder and the `lastsibling` unary relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    pub(crate) label: Symbol,
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    /// Character data for text nodes; `None` for elements.
    pub(crate) text: Option<Box<str>>,
    /// Attribute list for elements, in source order. Linear scan is right:
    /// real HTML elements carry a handful of attributes.
    pub(crate) attrs: Vec<(Symbol, Box<str>)>,
}

impl NodeData {
    pub(crate) fn new_element(label: Symbol) -> Self {
        NodeData {
            label,
            kind: NodeKind::Element,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            text: None,
            attrs: Vec::new(),
        }
    }

    pub(crate) fn new_text(label: Symbol, text: Box<str>) -> Self {
        NodeData {
            label,
            kind: NodeKind::Text,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            text: Some(text),
            attrs: Vec::new(),
        }
    }

    /// The node's interned label.
    #[inline]
    pub fn label(&self) -> Symbol {
        self.label
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }
}
