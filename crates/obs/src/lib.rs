//! # lixto_obs
//!
//! Dependency-free observability primitives shared by every layer of the
//! stack: trace identifiers and per-request span records ([`TraceId`],
//! [`SpanRecord`], [`StageTimes`]), a bounded buffer of recent and
//! slowest spans ([`SpanBuffer`]), per-rule execution telemetry
//! ([`RuleStats`]), a leveled JSON line logger ([`log_fields`] and
//! the [`log_event!`](crate::log_event) family) configured by the `LIXTO_LOG` environment
//! variable, a fixed-interval metrics history ring ([`TimeSeries`]) and
//! an SLO watchdog rule engine ([`Watchdog`]) for continuous
//! monitoring.
//!
//! The crate sits at the bottom of the dependency graph — it depends on
//! nothing but `std`, so the Elog executor, the extraction server and
//! the HTTP gateway can all record into it without cycles. Every hot
//! path primitive is allocation-free and lock-free (atomic slot arrays,
//! fixed stage arrays); locks appear only on cold paths such as slow-span
//! admission and log emission.

#![forbid(unsafe_code)]

mod alert;
mod log;
mod ring;
mod rule;
mod timeseries;
mod trace;

pub use crate::alert::{AlertRule, AlertTransition, Direction, RuleSnapshot, Severity, Watchdog};
pub use crate::log::{
    captured_lines, enabled, escape_json, log_fields, set_capture, set_log_file, set_max_level,
    set_stderr, FieldValue, Level,
};
pub use crate::ring::SpanBuffer;
pub use crate::rule::{RuleStat, RuleStats};
pub use crate::timeseries::{
    FieldKind, FieldSpec, FieldStats, FieldWindow, Sample, TimeSeries, WindowStats,
};
pub use crate::trace::{unix_millis, SpanRecord, Stage, StageTimes, TraceId, STAGE_COUNT};
