//! SLO watchdog: threshold rules with hysteresis over sampled metrics.
//!
//! A [`Watchdog`] holds a fixed set of [`AlertRule`]s, each naming one
//! derived metric (an error rate, a saturation ratio, a latency
//! quantile…) that the owner computes per evaluation tick — typically
//! from [`crate::timeseries`] windows — and feeds to
//! [`evaluate`](Watchdog::evaluate). The engine is deliberately
//! value-agnostic: it never reads metrics itself, so the same rules work
//! against any sampler.
//!
//! Flap suppression is two-sided:
//!
//! * a rule must breach for [`for_ticks`](AlertRule::for_ticks)
//!   *consecutive* evaluations before it fires, and
//! * once firing it resolves only after the value crosses back past the
//!   [`clear`](AlertRule::clear) threshold (not merely back under the
//!   firing threshold — the band between `clear` and `degraded` is the
//!   hysteresis band, where a firing rule stays firing) for
//!   [`clear_ticks`](AlertRule::clear_ticks) consecutive evaluations.
//!
//! Severity escalates immediately (`degraded` → `critical` needs no new
//! streak) and never de-escalates while firing: the rule holds its
//! highest severity until it fully resolves. [`evaluate`] returns the
//! transitions so the caller can log `alert_fired` / `alert_resolved`
//! events and stream them to subscribers; [`snapshot`](Watchdog::snapshot)
//! and [`verdict`](Watchdog::verdict) serve point-in-time health reads.

use std::sync::Mutex;

/// Health of one rule, or of the service as a whole (the worst rule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Within its service-level objective.
    #[default]
    Ok,
    /// Objective breached; service continues with reduced quality.
    Degraded,
    /// Severely breached; intervention likely required.
    Critical,
}

impl Severity {
    /// Stable lower-case identifier (`ok`, `degraded`, `critical`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Degraded => "degraded",
            Severity::Critical => "critical",
        }
    }

    /// Numeric form for gauges: 0 ok, 1 degraded, 2 critical.
    pub fn rank(self) -> u64 {
        match self {
            Severity::Ok => 0,
            Severity::Degraded => 1,
            Severity::Critical => 2,
        }
    }
}

/// Which side of a threshold is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Values at or above the thresholds breach (error rates, latency).
    AboveIsBad,
    /// Values at or below the thresholds breach (hit rates, headroom).
    BelowIsBad,
}

/// One burn-rate-style condition over a named derived metric.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Stable rule identifier (label value in `lixto_alert_*` series).
    pub name: &'static str,
    /// The derived metric this rule watches, matched against the names
    /// passed to [`Watchdog::evaluate`].
    pub metric: &'static str,
    /// Which side of the thresholds is unhealthy.
    pub direction: Direction,
    /// Breaching this fires (or holds) [`Severity::Degraded`].
    pub degraded: f64,
    /// Breaching this fires (or escalates to) [`Severity::Critical`].
    pub critical: f64,
    /// Hysteresis: a firing rule resolves only once the value is strictly
    /// on the healthy side of this (must sit between healthy and
    /// `degraded`).
    pub clear: f64,
    /// Consecutive breaching evaluations required to fire.
    pub for_ticks: u32,
    /// Consecutive cleared evaluations required to resolve.
    pub clear_ticks: u32,
}

impl AlertRule {
    fn breach(&self, value: f64, threshold: f64) -> bool {
        match self.direction {
            Direction::AboveIsBad => value >= threshold,
            Direction::BelowIsBad => value <= threshold,
        }
    }

    fn cleared(&self, value: f64) -> bool {
        match self.direction {
            Direction::AboveIsBad => value < self.clear,
            Direction::BelowIsBad => value > self.clear,
        }
    }

    fn target(&self, value: f64) -> Severity {
        if self.breach(value, self.critical) {
            Severity::Critical
        } else if self.breach(value, self.degraded) {
            Severity::Degraded
        } else {
            Severity::Ok
        }
    }
}

/// A state transition produced by one [`Watchdog::evaluate`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertTransition {
    /// The rule started firing, or escalated to a higher severity.
    Fired {
        /// Rule name.
        rule: &'static str,
        /// Severity it now fires at.
        severity: Severity,
        /// The metric value that fired it.
        value: f64,
    },
    /// The rule returned to [`Severity::Ok`].
    Resolved {
        /// Rule name.
        rule: &'static str,
        /// The metric value that resolved it.
        value: f64,
    },
}

/// Point-in-time view of one rule, for `/debug/health` and the
/// `lixto_alert_*` metric series.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSnapshot {
    /// Rule name.
    pub rule: &'static str,
    /// Watched metric name.
    pub metric: &'static str,
    /// Current severity.
    pub severity: Severity,
    /// Metric value at the last evaluation that saw it (0 before any).
    pub value: f64,
    /// Degraded threshold.
    pub degraded: f64,
    /// Critical threshold.
    pub critical: f64,
    /// Hysteresis clear threshold.
    pub clear: f64,
    /// Unix ms when the rule entered its current severity (0 until the
    /// first transition).
    pub since_ms: u64,
    /// Times the rule fired or escalated since construction.
    pub fired_total: u64,
    /// Times the rule resolved since construction.
    pub resolved_total: u64,
}

#[derive(Debug, Default)]
struct RuleState {
    severity: Severity,
    bad_streak: u32,
    good_streak: u32,
    value: f64,
    seen: bool,
    since_ms: u64,
    fired_total: u64,
    resolved_total: u64,
}

/// A fixed rule set plus its per-rule firing state. See the module docs
/// for the evaluation semantics.
pub struct Watchdog {
    rules: Vec<AlertRule>,
    states: Mutex<Vec<RuleState>>,
}

impl Watchdog {
    /// A watchdog with every rule healthy.
    pub fn new(rules: Vec<AlertRule>) -> Watchdog {
        let states = (0..rules.len()).map(|_| RuleState::default()).collect();
        Watchdog {
            rules,
            states: Mutex::new(states),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Run one evaluation tick. `values` supplies `(metric, value)`
    /// pairs; a rule whose metric is absent is skipped entirely — its
    /// severity and streaks freeze until the metric reappears (used for
    /// rates that are meaningless over an idle window). Returns the
    /// transitions, in rule order.
    pub fn evaluate(&self, now_ms: u64, values: &[(&str, f64)]) -> Vec<AlertTransition> {
        let mut transitions = Vec::new();
        let mut states = self.states.lock().unwrap();
        for (rule, state) in self.rules.iter().zip(states.iter_mut()) {
            let Some(&(_, value)) = values.iter().find(|(name, _)| *name == rule.metric) else {
                continue;
            };
            state.value = value;
            state.seen = true;
            let target = rule.target(value);
            if target > Severity::Ok {
                state.good_streak = 0;
                state.bad_streak = state.bad_streak.saturating_add(1);
                let fires =
                    state.severity == Severity::Ok && state.bad_streak >= rule.for_ticks.max(1);
                let escalates = state.severity > Severity::Ok && target > state.severity;
                if fires || escalates {
                    state.severity = target;
                    state.since_ms = now_ms;
                    state.fired_total += 1;
                    transitions.push(AlertTransition::Fired {
                        rule: rule.name,
                        severity: target,
                        value,
                    });
                }
            } else {
                state.bad_streak = 0;
                if state.severity > Severity::Ok {
                    if rule.cleared(value) {
                        state.good_streak = state.good_streak.saturating_add(1);
                        if state.good_streak >= rule.clear_ticks.max(1) {
                            state.severity = Severity::Ok;
                            state.since_ms = now_ms;
                            state.good_streak = 0;
                            state.resolved_total += 1;
                            transitions.push(AlertTransition::Resolved {
                                rule: rule.name,
                                value,
                            });
                        }
                    } else {
                        // Hysteresis band: healthy side of the firing
                        // threshold but not past `clear` — hold firing,
                        // restart the clear streak.
                        state.good_streak = 0;
                    }
                }
            }
        }
        transitions
    }

    /// Per-rule state, in rule order.
    pub fn snapshot(&self) -> Vec<RuleSnapshot> {
        let states = self.states.lock().unwrap();
        self.rules
            .iter()
            .zip(states.iter())
            .map(|(rule, state)| RuleSnapshot {
                rule: rule.name,
                metric: rule.metric,
                severity: state.severity,
                value: if state.seen { state.value } else { 0.0 },
                degraded: rule.degraded,
                critical: rule.critical,
                clear: rule.clear,
                since_ms: state.since_ms,
                fired_total: state.fired_total,
                resolved_total: state.resolved_total,
            })
            .collect()
    }

    /// The worst current severity across all rules.
    pub fn verdict(&self) -> Severity {
        let states = self.states.lock().unwrap();
        states
            .iter()
            .map(|s| s.severity)
            .max()
            .unwrap_or(Severity::Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(for_ticks: u32, clear_ticks: u32) -> AlertRule {
        AlertRule {
            name: "err",
            metric: "error_rate",
            direction: Direction::AboveIsBad,
            degraded: 0.05,
            critical: 0.25,
            clear: 0.02,
            for_ticks,
            clear_ticks,
        }
    }

    fn eval(w: &Watchdog, t: u64, v: f64) -> Vec<AlertTransition> {
        w.evaluate(t, &[("error_rate", v)])
    }

    #[test]
    fn fires_only_after_consecutive_breaches() {
        let w = Watchdog::new(vec![rule(2, 1)]);
        assert!(eval(&w, 1, 0.10).is_empty()); // streak 1 of 2
        assert!(eval(&w, 2, 0.01).is_empty()); // streak broken
        assert!(eval(&w, 3, 0.10).is_empty());
        let t = eval(&w, 4, 0.10);
        assert_eq!(
            t,
            vec![AlertTransition::Fired {
                rule: "err",
                severity: Severity::Degraded,
                value: 0.10,
            }]
        );
        assert_eq!(w.verdict(), Severity::Degraded);
        assert_eq!(w.snapshot()[0].since_ms, 4);
    }

    #[test]
    fn escalates_immediately_and_holds_highest() {
        let w = Watchdog::new(vec![rule(1, 1)]);
        eval(&w, 1, 0.10);
        let t = eval(&w, 2, 0.90);
        assert_eq!(
            t,
            vec![AlertTransition::Fired {
                rule: "err",
                severity: Severity::Critical,
                value: 0.90,
            }]
        );
        // Back to merely-degraded values: stays critical (no de-escalation).
        assert!(eval(&w, 3, 0.10).is_empty());
        assert_eq!(w.verdict(), Severity::Critical);
        assert_eq!(w.snapshot()[0].fired_total, 2);
    }

    #[test]
    fn hysteresis_band_holds_firing() {
        let w = Watchdog::new(vec![rule(1, 2)]);
        eval(&w, 1, 0.10);
        // 0.03 is under `degraded` but not under `clear` — stays firing.
        assert!(eval(&w, 2, 0.03).is_empty());
        // One cleared tick is not enough (clear_ticks = 2)…
        assert!(eval(&w, 3, 0.01).is_empty());
        // …and dipping back into the band restarts the clear streak.
        assert!(eval(&w, 4, 0.03).is_empty());
        assert!(eval(&w, 5, 0.01).is_empty());
        let t = eval(&w, 6, 0.01);
        assert_eq!(
            t,
            vec![AlertTransition::Resolved {
                rule: "err",
                value: 0.01,
            }]
        );
        assert_eq!(w.verdict(), Severity::Ok);
        let snap = &w.snapshot()[0];
        assert_eq!((snap.fired_total, snap.resolved_total), (1, 1));
        assert_eq!(snap.since_ms, 6);
    }

    #[test]
    fn below_is_bad_direction() {
        let w = Watchdog::new(vec![AlertRule {
            name: "cache",
            metric: "hit_rate",
            direction: Direction::BelowIsBad,
            degraded: 0.10,
            critical: -1.0, // unreachable
            clear: 0.25,
            for_ticks: 1,
            clear_ticks: 1,
        }]);
        let t = w.evaluate(1, &[("hit_rate", 0.05)]);
        assert!(matches!(t[0], AlertTransition::Fired { .. }));
        // 0.2 is above `degraded` but not above `clear`: holds firing.
        assert!(w.evaluate(2, &[("hit_rate", 0.20)]).is_empty());
        let t = w.evaluate(3, &[("hit_rate", 0.40)]);
        assert!(matches!(t[0], AlertTransition::Resolved { .. }));
    }

    #[test]
    fn missing_metric_freezes_state() {
        let w = Watchdog::new(vec![rule(1, 1)]);
        eval(&w, 1, 0.10);
        assert_eq!(w.verdict(), Severity::Degraded);
        // Metric absent: no resolve, no streak movement.
        assert!(w.evaluate(2, &[]).is_empty());
        assert_eq!(w.verdict(), Severity::Degraded);
        assert_eq!(w.snapshot()[0].value, 0.10);
    }
}
