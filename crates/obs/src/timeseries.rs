//! Fixed-interval metrics history: a bounded ring of samples with
//! windowed rate and quantile queries.
//!
//! A [`TimeSeries`] is declared once with a schema — an ordered list of
//! [`FieldSpec`]s, each a monotone [`Counter`](FieldKind::Counter) or an
//! instantaneous [`Gauge`](FieldKind::Gauge) — and then fed one
//! [`record`](TimeSeries::record) call per sampling tick by a background
//! sampler. Retention is bounded: once `capacity` samples are held, the
//! oldest is dropped per new tick, so memory is `O(capacity × fields)`
//! regardless of uptime.
//!
//! Window queries are deliberately simple and exactly reproducible:
//!
//! * **Counters** report the *increase* over the window, computed
//!   pairwise between consecutive samples with Prometheus-style reset
//!   handling — when a sample is smaller than its predecessor the
//!   counter is assumed to have restarted from zero, so the new value
//!   *is* the delta. The sample at-or-before the window start is the
//!   baseline; the earliest retained sample contributes nothing when it
//!   has no predecessor (its absolute value is cumulative since process
//!   start, not since the window opened). This makes deltas additive:
//!   tiling a window into steps and summing the step deltas yields the
//!   window delta exactly.
//! * **Gauges** report last/min/max/mean and nearest-rank p50/p99 over
//!   the samples inside the window.
//!
//! The module depends on nothing but `std` and takes one short lock per
//! record or query; it is shared infrastructure for the gateway's
//! `/metrics/history` endpoint and the SLO watchdog ([`crate::alert`]).

use std::collections::VecDeque;
use std::sync::Mutex;

/// How a field's samples are interpreted by window queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Monotone non-decreasing except across process restarts; windows
    /// report reset-aware deltas and rates.
    Counter,
    /// Instantaneous value; windows report last/min/max/mean/quantiles.
    Gauge,
}

/// One column of the series: a stable name plus its [`FieldKind`].
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Stable identifier, used as the JSON key by consumers.
    pub name: &'static str,
    /// Counter or gauge semantics.
    pub kind: FieldKind,
}

impl FieldSpec {
    /// A counter field.
    pub fn counter(name: &'static str) -> FieldSpec {
        FieldSpec {
            name,
            kind: FieldKind::Counter,
        }
    }

    /// A gauge field.
    pub fn gauge(name: &'static str) -> FieldSpec {
        FieldSpec {
            name,
            kind: FieldKind::Gauge,
        }
    }
}

/// One sampling tick: a timestamp plus one value per declared field, in
/// schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Wall-clock milliseconds since the Unix epoch at sampling time.
    pub unix_ms: u64,
    /// Field values in [`TimeSeries::fields`] order.
    pub values: Vec<u64>,
}

/// Windowed statistics for one field; which variant applies is fixed by
/// the field's [`FieldKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldStats {
    /// Counter increase over the window.
    Counter {
        /// Reset-aware increase across the window.
        delta: u64,
        /// `delta` scaled to per-second over the window span.
        rate_per_sec: f64,
    },
    /// Gauge distribution over the window's samples.
    Gauge {
        /// Value of the newest in-window sample (0 if none).
        last: u64,
        /// Minimum in-window value (0 if none).
        min: u64,
        /// Maximum in-window value (0 if none).
        max: u64,
        /// Arithmetic mean of in-window values (0 if none).
        mean: f64,
        /// Nearest-rank median.
        p50: u64,
        /// Nearest-rank 99th percentile.
        p99: u64,
    },
}

/// A named field's [`FieldStats`] within one window.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldWindow {
    /// The field's schema name.
    pub name: &'static str,
    /// The computed statistics.
    pub stats: FieldStats,
}

/// The result of a window query: per-field stats over `(from_ms, to_ms]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window start (exclusive), unix milliseconds.
    pub from_ms: u64,
    /// Window end (inclusive), unix milliseconds.
    pub to_ms: u64,
    /// Samples that fell inside the window.
    pub samples: usize,
    /// One entry per schema field, in schema order.
    pub fields: Vec<FieldWindow>,
}

/// Nearest-rank quantile over an ascending-sorted slice: the smallest
/// value whose rank covers fraction `q` of the population (`q` clamped
/// to `[0, 1]`; 0 for an empty slice).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Pairwise counter delta with reset detection: a drop means the counter
/// restarted, so the new value is the whole increase.
fn counter_delta(prev: u64, next: u64) -> u64 {
    if next >= prev {
        next - prev
    } else {
        next
    }
}

/// A bounded, fixed-schema ring of metric samples. See the module docs
/// for query semantics.
pub struct TimeSeries {
    fields: Vec<FieldSpec>,
    interval_ms: u64,
    capacity: usize,
    ring: Mutex<VecDeque<Sample>>,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` samples (at least 2,
    /// so a window can always straddle one delta). `interval_ms` is
    /// advisory — it records the sampler's configured cadence for
    /// consumers; `record` accepts whatever timestamps it is given.
    pub fn new(fields: Vec<FieldSpec>, interval_ms: u64, capacity: usize) -> TimeSeries {
        let capacity = capacity.max(2);
        TimeSeries {
            fields,
            interval_ms: interval_ms.max(1),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The declared schema, in column order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// The sampler cadence this series was declared with.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one tick. `values` must match the schema length; the
    /// oldest sample is dropped once `capacity` is reached. Out-of-order
    /// timestamps are tolerated (the ring is strictly append-ordered).
    pub fn record(&self, unix_ms: u64, values: &[u64]) {
        assert_eq!(
            values.len(),
            self.fields.len(),
            "sample width must match the declared schema"
        );
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Sample {
            unix_ms,
            values: values.to_vec(),
        });
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<Sample> {
        self.ring.lock().unwrap().back().cloned()
    }

    /// A copy of every retained sample, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Per-field stats over the window `(from_ms, to_ms]`.
    pub fn window(&self, from_ms: u64, to_ms: u64) -> WindowStats {
        let samples = self.samples();
        self.window_of(&samples, from_ms, to_ms)
    }

    /// Tile `(from_ms, to_ms]` into consecutive `step_ms` windows
    /// (oldest first; the final step is truncated to `to_ms`) and
    /// compute each. Counter deltas across the steps sum to the whole
    /// window's delta.
    ///
    /// The retained samples are copied out under one short lock (they
    /// are bounded by `capacity`) and the tiling runs lock-free, so a
    /// large query never blocks the sampler's `record` or concurrent
    /// window queries. The step count is the caller's responsibility:
    /// tiling is `O(steps × capacity × fields)`, so bound
    /// `(to_ms - from_ms) / step_ms` before serving untrusted input
    /// (the gateway clamps it to the ring's retention).
    pub fn steps(&self, from_ms: u64, to_ms: u64, step_ms: u64) -> Vec<WindowStats> {
        let step_ms = step_ms.max(1);
        let samples = self.samples();
        let mut out = Vec::new();
        let mut start = from_ms;
        while start < to_ms {
            let end = start.saturating_add(step_ms).min(to_ms);
            out.push(self.window_of(&samples, start, end));
            start = end;
        }
        out
    }

    fn window_of(&self, samples: &[Sample], from_ms: u64, to_ms: u64) -> WindowStats {
        // Baseline for counters: the newest sample at-or-before the
        // window start. Samples are append-ordered, which tracks
        // timestamp order for a monotone sampler clock.
        let mut baseline: Option<&Sample> = None;
        let mut inside: Vec<&Sample> = Vec::new();
        for sample in samples {
            if sample.unix_ms <= from_ms {
                baseline = Some(sample);
            } else if sample.unix_ms <= to_ms {
                inside.push(sample);
            }
        }
        let span_secs = (to_ms.saturating_sub(from_ms)) as f64 / 1000.0;
        let fields = self
            .fields
            .iter()
            .enumerate()
            .map(|(col, spec)| {
                let stats = match spec.kind {
                    FieldKind::Counter => {
                        let mut delta = 0u64;
                        let mut prev = baseline.map(|s| s.values[col]);
                        for sample in &inside {
                            let next = sample.values[col];
                            if let Some(prev) = prev {
                                delta += counter_delta(prev, next);
                            }
                            prev = Some(next);
                        }
                        let rate_per_sec = if span_secs > 0.0 {
                            delta as f64 / span_secs
                        } else {
                            0.0
                        };
                        FieldStats::Counter {
                            delta,
                            rate_per_sec,
                        }
                    }
                    FieldKind::Gauge => {
                        let mut values: Vec<u64> = inside.iter().map(|s| s.values[col]).collect();
                        let last = values.last().copied().unwrap_or(0);
                        values.sort_unstable();
                        let (min, max) = match (values.first(), values.last()) {
                            (Some(&min), Some(&max)) => (min, max),
                            _ => (0, 0),
                        };
                        let mean = if values.is_empty() {
                            0.0
                        } else {
                            values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
                        };
                        FieldStats::Gauge {
                            last,
                            min,
                            max,
                            mean,
                            p50: nearest_rank(&values, 0.50),
                            p99: nearest_rank(&values, 0.99),
                        }
                    }
                };
                FieldWindow {
                    name: spec.name,
                    stats,
                }
            })
            .collect();
        WindowStats {
            from_ms,
            to_ms,
            samples: inside.len(),
            fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(
            vec![FieldSpec::counter("reqs"), FieldSpec::gauge("depth")],
            1000,
            8,
        )
    }

    #[test]
    fn counter_window_is_reset_aware() {
        let ts = series();
        ts.record(1000, &[10, 1]);
        ts.record(2000, &[25, 2]);
        ts.record(3000, &[5, 3]); // restart: 25 → 5 counts as +5
        ts.record(4000, &[9, 4]);
        let w = ts.window(1000, 4000);
        assert_eq!(w.samples, 3);
        match &w.fields[0].stats {
            FieldStats::Counter {
                delta,
                rate_per_sec,
            } => {
                assert_eq!(*delta, 15 + 5 + 4);
                assert!((rate_per_sec - 24.0 / 3.0).abs() < 1e-9);
            }
            other => panic!("expected counter stats, got {other:?}"),
        }
    }

    #[test]
    fn earliest_retained_sample_contributes_no_delta() {
        let ts = series();
        ts.record(1000, &[1_000_000, 0]); // cumulative-since-start value
        ts.record(2000, &[1_000_003, 0]);
        let w = ts.window(0, 2000);
        match &w.fields[0].stats {
            FieldStats::Counter { delta, .. } => assert_eq!(*delta, 3),
            other => panic!("expected counter stats, got {other:?}"),
        }
    }

    #[test]
    fn step_deltas_sum_to_window_delta() {
        let ts = series();
        for i in 0..8u64 {
            ts.record(i * 1000, &[i * i, i]);
        }
        let whole = ts.window(0, 7000);
        let steps = ts.steps(0, 7000, 3000);
        assert_eq!(steps.len(), 3);
        let whole_delta = match &whole.fields[0].stats {
            FieldStats::Counter { delta, .. } => *delta,
            _ => unreachable!(),
        };
        let sum: u64 = steps
            .iter()
            .map(|s| match &s.fields[0].stats {
                FieldStats::Counter { delta, .. } => *delta,
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(sum, whole_delta);
    }

    #[test]
    fn gauge_window_reports_distribution() {
        let ts = series();
        for (t, v) in [(1000, 4), (2000, 1), (3000, 9), (4000, 2)] {
            ts.record(t, &[0, v]);
        }
        let w = ts.window(0, 4000);
        match &w.fields[1].stats {
            FieldStats::Gauge {
                last,
                min,
                max,
                mean,
                p50,
                p99,
            } => {
                assert_eq!((*last, *min, *max), (2, 1, 9));
                assert!((mean - 4.0).abs() < 1e-9);
                assert_eq!(*p50, 2);
                assert_eq!(*p99, 9);
            }
            other => panic!("expected gauge stats, got {other:?}"),
        }
    }

    #[test]
    fn retention_drops_oldest() {
        let ts = TimeSeries::new(vec![FieldSpec::gauge("g")], 1000, 3);
        for i in 0..5u64 {
            ts.record(i, &[i]);
        }
        assert_eq!(ts.len(), 3);
        let kept: Vec<u64> = ts.samples().iter().map(|s| s.unix_ms).collect();
        assert_eq!(kept, [2, 3, 4]);
        assert_eq!(ts.latest().unwrap().values, [4]);
    }

    #[test]
    fn empty_window_is_zeroed() {
        let ts = series();
        let w = ts.window(0, 1000);
        assert_eq!(w.samples, 0);
        match &w.fields[1].stats {
            FieldStats::Gauge { last, max, p99, .. } => {
                assert_eq!((*last, *max, *p99), (0, 0, 0));
            }
            other => panic!("expected gauge stats, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn record_rejects_wrong_width() {
        series().record(0, &[1]);
    }

    #[test]
    fn steps_tolerate_extreme_bounds() {
        let ts = series();
        ts.record(1000, &[1, 1]);
        // A step wider than the window must not overflow the cursor:
        // one truncated tile covers the whole range.
        let steps = ts.steps(0, u64::MAX, u64::MAX);
        assert_eq!(steps.len(), 1);
        assert_eq!((steps[0].from_ms, steps[0].to_ms), (0, u64::MAX));
    }
}
