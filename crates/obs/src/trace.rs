//! Trace identifiers, pipeline stages, and per-request span records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (span timestamps).
pub fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// A request trace identifier: either minted by the gateway or accepted
/// from a client-supplied `X-Request-Id` header after validation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceId(String);

/// Longest client-supplied id accepted before we mint our own.
const MAX_CLIENT_ID: usize = 64;

impl TraceId {
    /// Mint a fresh process-unique id: 16 lowercase hex digits mixing
    /// wall-clock time, the process id, and a monotone counter through a
    /// 64-bit finalizer, so concurrent gateways produce distinct ids
    /// without coordination.
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mixed =
            splitmix64(now ^ seq.rotate_left(32) ^ u64::from(std::process::id()).rotate_left(48));
        TraceId(format!("{mixed:016x}"))
    }

    /// Accept a client-supplied id if it is 1–64 visible ASCII
    /// characters (no spaces or control bytes); `None` otherwise, in
    /// which case the caller mints one instead.
    pub fn from_client(raw: &str) -> Option<TraceId> {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.len() > MAX_CLIENT_ID {
            return None;
        }
        if !trimmed.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
            return None;
        }
        Some(TraceId(trimmed.to_string()))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64 finalizer: a cheap bijective bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of traced pipeline stages.
pub const STAGE_COUNT: usize = 7;

/// One stage of the request pipeline, in execution order. Stage wall
/// times are measured independently and may overlap: `Parse` time is
/// spent *inside* `PlanExec` (the executor parses fetched documents),
/// so the end-to-end total is not the sum of all stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Enqueue → worker pickup.
    QueueWait,
    /// Entry-document fetch from the web source.
    Fetch,
    /// HTML parsing (inside plan execution).
    Parse,
    /// Cache lookup plus change-detection revalidation.
    CacheLookup,
    /// Compiled wrapper plan execution (fixpoint over rules).
    PlanExec,
    /// Result → XML serialization.
    Serialize,
    /// Completion-notify → event-loop dispatch (wake latency).
    Wake,
}

impl Stage {
    /// All stages in declaration order; indexes agree with
    /// [`StageTimes`] slots.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::QueueWait,
        Stage::Fetch,
        Stage::Parse,
        Stage::CacheLookup,
        Stage::PlanExec,
        Stage::Serialize,
        Stage::Wake,
    ];

    /// Stable snake_case name used in JSON, Prometheus labels and docs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Fetch => "fetch",
            Stage::Parse => "parse",
            Stage::CacheLookup => "cache",
            Stage::PlanExec => "exec",
            Stage::Serialize => "serialize",
            Stage::Wake => "wake",
        }
    }

    /// Dense index into [`StageTimes`]-shaped arrays (declaration
    /// order; `Stage::ALL[s.index()] == s`).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Fixed per-stage wall times for one request: a plain array of
/// nanosecond counters plus a touched bitmask, so stages that never ran
/// (e.g. `PlanExec` on a cache hit) are distinguishable from stages
/// that ran in under a nanosecond.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    ns: [u64; STAGE_COUNT],
    touched: u8,
}

impl StageTimes {
    /// All stages untouched.
    pub fn new() -> StageTimes {
        StageTimes::default()
    }

    /// Add `elapsed` to a stage and mark it touched.
    pub fn add(&mut self, stage: Stage, elapsed: Duration) {
        self.add_ns(stage, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Add raw nanoseconds to a stage and mark it touched.
    pub fn add_ns(&mut self, stage: Stage, ns: u64) {
        self.ns[stage.index()] = self.ns[stage.index()].saturating_add(ns);
        self.touched |= 1 << stage.index();
    }

    /// Nanoseconds recorded for a stage (0 if untouched).
    pub fn ns(&self, stage: Stage) -> u64 {
        self.ns[stage.index()]
    }

    /// Whether the stage ran at all this request.
    pub fn touched(&self, stage: Stage) -> bool {
        self.touched & (1 << stage.index()) != 0
    }

    /// `(stage, nanoseconds)` for every touched stage, in pipeline
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL
            .into_iter()
            .filter(|s| self.touched(*s))
            .map(|s| (s, self.ns(s)))
    }
}

/// The completed-request record kept in the [`crate::SpanBuffer`] and
/// served by `/debug/requests/{id}` and `/debug/slow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace id; batch items are suffixed `#i`.
    pub id: String,
    /// Wrapper name ("" when the request never resolved one).
    pub wrapper: String,
    /// Wrapper version (0 when unresolved).
    pub version: u32,
    /// HTTP status the gateway answered with.
    pub status: u16,
    /// Whether the result came from the cache tier.
    pub cache_hit: bool,
    /// End-to-end gateway wall time in nanoseconds.
    pub total_ns: u64,
    /// Per-stage wall times.
    pub stages: StageTimes,
    /// Completion timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_distinct_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_eq!(a.as_str().len(), 16);
        assert!(a.as_str().bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn client_ids_are_validated() {
        assert_eq!(
            TraceId::from_client("  abc-123  ").map(|t| t.to_string()),
            Some("abc-123".to_string())
        );
        assert!(TraceId::from_client("").is_none());
        assert!(TraceId::from_client("   ").is_none());
        assert!(TraceId::from_client("has space").is_none());
        assert!(TraceId::from_client("ctl\x07byte").is_none());
        assert!(TraceId::from_client("exotic\u{e9}").is_none());
        assert!(TraceId::from_client(&"x".repeat(65)).is_none());
        assert!(TraceId::from_client(&"x".repeat(64)).is_some());
    }

    #[test]
    fn stage_times_track_touched() {
        let mut t = StageTimes::new();
        assert!(!t.touched(Stage::PlanExec));
        t.add(Stage::PlanExec, Duration::ZERO);
        t.add_ns(Stage::QueueWait, 250);
        assert!(t.touched(Stage::PlanExec));
        assert_eq!(t.ns(Stage::PlanExec), 0);
        assert_eq!(t.ns(Stage::QueueWait), 250);
        assert!(!t.touched(Stage::Fetch));
        let seen: Vec<(Stage, u64)> = t.iter().collect();
        assert_eq!(seen, vec![(Stage::QueueWait, 250), (Stage::PlanExec, 0)]);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }
}
