//! Bounded buffers of completed spans: a ring of the most recent and a
//! sorted list of the slowest.
//!
//! The recent ring is the hot path: one atomic cursor bump plus one
//! uncontended per-slot mutex store (each slot has its own lock, so two
//! writers only contend when the ring wraps onto the same slot). The
//! slowest list is guarded by an atomic admission floor — the common
//! fast request reads one atomic and never takes the list lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::SpanRecord;

/// Recent + slowest completed spans, bounded in memory.
pub struct SpanBuffer {
    recent: Vec<Mutex<Option<Arc<SpanRecord>>>>,
    cursor: AtomicUsize,
    slowest: Mutex<Vec<Arc<SpanRecord>>>,
    slow_cap: usize,
    /// Admission floor: a span slower than this may enter `slowest`.
    /// Zero until the slowest list fills.
    floor_ns: AtomicU64,
}

impl SpanBuffer {
    /// A buffer keeping the `recent_cap` most recent and `slow_cap`
    /// slowest spans (each at least 1).
    pub fn new(recent_cap: usize, slow_cap: usize) -> SpanBuffer {
        SpanBuffer {
            recent: (0..recent_cap.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            slowest: Mutex::new(Vec::new()),
            slow_cap: slow_cap.max(1),
            floor_ns: AtomicU64::new(0),
        }
    }

    /// Record a completed span.
    pub fn record(&self, span: Arc<SpanRecord>) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.recent.len();
        *self.recent[i].lock().unwrap() = Some(span.clone());
        if span.total_ns <= self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut slow = self.slowest.lock().unwrap();
        let at = slow
            .binary_search_by(|s| span.total_ns.cmp(&s.total_ns))
            .unwrap_or_else(|e| e);
        slow.insert(at, span);
        slow.truncate(self.slow_cap);
        let floor = if slow.len() == self.slow_cap {
            slow.last().map_or(0, |s| s.total_ns)
        } else {
            0
        };
        self.floor_ns.store(floor, Ordering::Relaxed);
    }

    /// Most recent spans, newest first.
    pub fn recent(&self) -> Vec<Arc<SpanRecord>> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let n = self.recent.len();
        let mut out = Vec::new();
        for back in 1..=n {
            let slot = (cursor + n - back) % n;
            if let Some(span) = self.recent[slot].lock().unwrap().clone() {
                out.push(span);
            }
        }
        out
    }

    /// Slowest spans, slowest first.
    pub fn slowest(&self) -> Vec<Arc<SpanRecord>> {
        self.slowest.lock().unwrap().clone()
    }

    /// Look up a span by id among the retained recent and slowest
    /// records (spans age out of both buffers).
    pub fn find(&self, id: &str) -> Option<Arc<SpanRecord>> {
        for slot in &self.recent {
            if let Some(span) = slot.lock().unwrap().as_ref() {
                if span.id == id {
                    return Some(span.clone());
                }
            }
        }
        self.slowest
            .lock()
            .unwrap()
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StageTimes;

    fn span(id: &str, total_ns: u64) -> Arc<SpanRecord> {
        Arc::new(SpanRecord {
            id: id.to_string(),
            wrapper: "w".to_string(),
            version: 1,
            status: 200,
            cache_hit: false,
            total_ns,
            stages: StageTimes::new(),
            unix_ms: 0,
        })
    }

    #[test]
    fn recent_ring_keeps_newest_first() {
        let buf = SpanBuffer::new(3, 3);
        for i in 0..5 {
            buf.record(span(&format!("s{i}"), i));
        }
        let ids: Vec<String> = buf.recent().iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids, ["s4", "s3", "s2"]);
    }

    #[test]
    fn slowest_keeps_top_k_sorted() {
        let buf = SpanBuffer::new(2, 3);
        for (id, ns) in [("a", 50), ("b", 500), ("c", 10), ("d", 300), ("e", 400)] {
            buf.record(span(id, ns));
        }
        let got: Vec<(String, u64)> = buf
            .slowest()
            .iter()
            .map(|s| (s.id.clone(), s.total_ns))
            .collect();
        assert_eq!(
            got,
            vec![
                ("b".to_string(), 500),
                ("e".to_string(), 400),
                ("d".to_string(), 300)
            ]
        );
    }

    #[test]
    fn find_checks_recent_then_slowest() {
        let buf = SpanBuffer::new(1, 2);
        buf.record(span("slow", 900));
        buf.record(span("newer", 1)); // evicts "slow" from recent
        assert_eq!(buf.find("newer").unwrap().total_ns, 1);
        assert_eq!(buf.find("slow").unwrap().total_ns, 900);
        assert!(buf.find("missing").is_none());
    }
}
