//! Bounded buffers of completed spans: a ring of the most recent and a
//! sorted list of the slowest.
//!
//! The recent ring is the hot path: one atomic cursor bump plus one
//! uncontended per-slot mutex store (each slot has its own lock, so two
//! writers only contend when the ring wraps onto the same slot). The
//! slowest list is guarded by an atomic admission floor — the common
//! fast request reads one atomic and never takes the list lock.
//!
//! The slowest list is *time-windowed*: entries older than
//! [`with_slow_window_ms`](SpanBuffer::with_slow_window_ms) (relative to
//! the spans' own `unix_ms` timestamps) are aged out as new spans
//! arrive, and a floor that has not been recomputed for half the window
//! stops short-circuiting admission. Without this, one pathological
//! burst would ratchet the floor so high the list froze as an all-time
//! top-k and `/debug/slow` went permanently stale.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::SpanRecord;

/// Default slowest-list retention: 5 minutes.
const DEFAULT_SLOW_WINDOW_MS: u64 = 300_000;

/// Recent + slowest completed spans, bounded in memory.
pub struct SpanBuffer {
    recent: Vec<Mutex<Option<Arc<SpanRecord>>>>,
    cursor: AtomicUsize,
    slowest: Mutex<Vec<Arc<SpanRecord>>>,
    slow_cap: usize,
    slow_window_ms: u64,
    /// Admission floor: a span slower than this may enter `slowest`.
    /// Zero until the slowest list fills.
    floor_ns: AtomicU64,
    /// `unix_ms` of the span that last recomputed the floor; once the
    /// floor is older than half the window it is treated as stale and
    /// admission takes the slow path so expired entries age out.
    floor_at_ms: AtomicU64,
}

impl SpanBuffer {
    /// A buffer keeping the `recent_cap` most recent and `slow_cap`
    /// slowest spans (each at least 1), with the default 5-minute
    /// slowest-list window.
    pub fn new(recent_cap: usize, slow_cap: usize) -> SpanBuffer {
        SpanBuffer {
            recent: (0..recent_cap.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            slowest: Mutex::new(Vec::new()),
            slow_cap: slow_cap.max(1),
            slow_window_ms: DEFAULT_SLOW_WINDOW_MS,
            floor_ns: AtomicU64::new(0),
            floor_at_ms: AtomicU64::new(0),
        }
    }

    /// Set how long a span may stay in the slowest list, measured
    /// against newer spans' `unix_ms` timestamps (at least 1 ms).
    pub fn with_slow_window_ms(mut self, window_ms: u64) -> SpanBuffer {
        self.slow_window_ms = window_ms.max(1);
        self
    }

    /// Record a completed span.
    pub fn record(&self, span: Arc<SpanRecord>) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.recent.len();
        *self.recent[i].lock().unwrap() = Some(span.clone());
        let now_ms = span.unix_ms;
        let floor_fresh = now_ms
            < self
                .floor_at_ms
                .load(Ordering::Relaxed)
                .saturating_add(self.slow_window_ms / 2);
        if span.total_ns <= self.floor_ns.load(Ordering::Relaxed) && floor_fresh {
            return;
        }
        let mut slow = self.slowest.lock().unwrap();
        // Age out entries the window has passed by before judging the
        // newcomer against what remains.
        slow.retain(|s| s.unix_ms.saturating_add(self.slow_window_ms) > now_ms);
        let at = slow
            .binary_search_by(|s| span.total_ns.cmp(&s.total_ns))
            .unwrap_or_else(|e| e);
        if at < self.slow_cap {
            slow.insert(at, span);
            slow.truncate(self.slow_cap);
        }
        let floor = if slow.len() == self.slow_cap {
            slow.last().map_or(0, |s| s.total_ns)
        } else {
            0
        };
        self.floor_ns.store(floor, Ordering::Relaxed);
        self.floor_at_ms.store(now_ms, Ordering::Relaxed);
    }

    /// Most recent spans, newest first.
    pub fn recent(&self) -> Vec<Arc<SpanRecord>> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let n = self.recent.len();
        let mut out = Vec::new();
        for back in 1..=n {
            let slot = (cursor + n - back) % n;
            if let Some(span) = self.recent[slot].lock().unwrap().clone() {
                out.push(span);
            }
        }
        out
    }

    /// Slowest spans, slowest first.
    pub fn slowest(&self) -> Vec<Arc<SpanRecord>> {
        self.slowest.lock().unwrap().clone()
    }

    /// Look up a span by id among the retained recent and slowest
    /// records (spans age out of both buffers).
    pub fn find(&self, id: &str) -> Option<Arc<SpanRecord>> {
        for slot in &self.recent {
            if let Some(span) = slot.lock().unwrap().as_ref() {
                if span.id == id {
                    return Some(span.clone());
                }
            }
        }
        self.slowest
            .lock()
            .unwrap()
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StageTimes;

    fn span(id: &str, total_ns: u64) -> Arc<SpanRecord> {
        span_at(id, total_ns, 0)
    }

    fn span_at(id: &str, total_ns: u64, unix_ms: u64) -> Arc<SpanRecord> {
        Arc::new(SpanRecord {
            id: id.to_string(),
            wrapper: "w".to_string(),
            version: 1,
            status: 200,
            cache_hit: false,
            total_ns,
            stages: StageTimes::new(),
            unix_ms,
        })
    }

    #[test]
    fn recent_ring_keeps_newest_first() {
        let buf = SpanBuffer::new(3, 3);
        for i in 0..5 {
            buf.record(span(&format!("s{i}"), i));
        }
        let ids: Vec<String> = buf.recent().iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids, ["s4", "s3", "s2"]);
    }

    #[test]
    fn slowest_keeps_top_k_sorted() {
        let buf = SpanBuffer::new(2, 3);
        for (id, ns) in [("a", 50), ("b", 500), ("c", 10), ("d", 300), ("e", 400)] {
            buf.record(span(id, ns));
        }
        let got: Vec<(String, u64)> = buf
            .slowest()
            .iter()
            .map(|s| (s.id.clone(), s.total_ns))
            .collect();
        assert_eq!(
            got,
            vec![
                ("b".to_string(), 500),
                ("e".to_string(), 400),
                ("d".to_string(), 300)
            ]
        );
    }

    /// Regression: a pathological burst used to ratchet the admission
    /// floor permanently, freezing the slowest list as an all-time
    /// top-k. With the time window, later ordinary traffic ages the
    /// burst out and repopulates the list with *recent* slowest spans.
    #[test]
    fn slowest_ages_out_after_burst() {
        let buf = SpanBuffer::new(4, 2).with_slow_window_ms(1_000);
        // A burst of very slow spans at t=0 fills the list and sets a
        // high floor.
        buf.record(span_at("burst1", 9_000_000, 0));
        buf.record(span_at("burst2", 8_000_000, 0));
        assert_eq!(buf.slowest().len(), 2);
        // Shortly after, ordinary traffic below the floor is rejected
        // on the fast path (floor still fresh).
        buf.record(span_at("fast", 1_000, 100));
        let ids: Vec<&str> = vec!["burst1", "burst2"];
        assert_eq!(
            buf.slowest()
                .iter()
                .map(|s| s.id.as_str())
                .collect::<Vec<_>>(),
            ids
        );
        // Past the window, the stale floor stops short-circuiting and
        // the burst entries age out: the list now reflects recent
        // traffic even though every new span is far below the old floor.
        buf.record(span_at("later1", 2_000, 2_000));
        buf.record(span_at("later2", 3_000, 2_100));
        let got: Vec<String> = buf.slowest().iter().map(|s| s.id.clone()).collect();
        assert_eq!(got, ["later2", "later1"]);
    }

    /// The default window is long enough that timestamp-less test spans
    /// (unix_ms = 0) never age out mid-test.
    #[test]
    fn aging_is_inert_without_timestamps() {
        let buf = SpanBuffer::new(2, 2);
        buf.record(span("a", 500));
        buf.record(span("b", 900));
        buf.record(span("c", 100));
        assert_eq!(buf.slowest().len(), 2);
        assert_eq!(buf.slowest()[0].id, "b");
    }

    #[test]
    fn find_checks_recent_then_slowest() {
        let buf = SpanBuffer::new(1, 2);
        buf.record(span("slow", 900));
        buf.record(span("newer", 1)); // evicts "slow" from recent
        assert_eq!(buf.find("newer").unwrap().total_ns, 1);
        assert_eq!(buf.find("slow").unwrap().total_ns, 900);
        assert!(buf.find("missing").is_none());
    }
}
