//! Leveled JSON line logging.
//!
//! One event per line on stderr, shaped
//! `{"ts":<unix_ms>,"level":"warn","event":"store_open_failed",...}`.
//! The maximum emitted level comes from the `LIXTO_LOG` environment
//! variable (`off`, `error`, `warn`, `info`, `debug`; default `warn`)
//! and can be overridden programmatically with [`set_max_level`]. Event
//! names are stable identifiers — grep targets, not prose — and are
//! catalogued in `docs/OBSERVABILITY.md`.
//!
//! Tests swap the stderr sink for an in-memory buffer with
//! [`set_capture`] / [`captured_lines`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not retried.
    Error,
    /// Something was skipped or degraded, but service continues.
    Warn,
    /// Notable lifecycle events.
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 0 = off; 1..=4 = max rank; 0xFF = not yet read from the environment.
static MAX_RANK: AtomicU8 = AtomicU8::new(0xFF);

fn max_rank() -> u8 {
    let cached = MAX_RANK.load(Ordering::Relaxed);
    if cached != 0xFF {
        return cached;
    }
    let from_env = match std::env::var("LIXTO_LOG").as_deref() {
        Ok("off") | Ok("none") => 0,
        Ok("error") => 1,
        Ok("info") => 3,
        Ok("debug") => 4,
        // Unrecognized values and the unset default both mean `warn`.
        _ => 2,
    };
    MAX_RANK.store(from_env, Ordering::Relaxed);
    from_env
}

/// Override the maximum emitted level (`None` silences everything).
/// Takes precedence over `LIXTO_LOG` from then on.
pub fn set_max_level(level: Option<Level>) {
    MAX_RANK.store(level.map_or(0, Level::rank), Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted. Callers with
/// expensive field construction should check this first; the
/// [`log_event!`](crate::log_event) macros do.
pub fn enabled(level: Level) -> bool {
    level.rank() <= max_rank()
}

/// A typed JSON field value. Build via `From`: `"text".into()`,
/// `7u64.into()`, `true.into()`.
#[derive(Debug, Clone)]
pub enum FieldValue<'a> {
    /// A borrowed string (JSON string).
    Str(&'a str),
    /// An owned string (JSON string).
    Owned(String),
    /// JSON number.
    U64(u64),
    /// JSON number.
    I64(i64),
    /// JSON number.
    F64(f64),
    /// JSON boolean.
    Bool(bool),
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}
impl<'a> From<&'a String> for FieldValue<'a> {
    fn from(v: &'a String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue<'_> {
    fn from(v: String) -> Self {
        FieldValue::Owned(v)
    }
}
impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue<'_> {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue<'_> {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue<'_> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue<'_> {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Append `s` to `out` as a JSON string body (no surrounding quotes),
/// escaping `"`, `\` and control characters.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

type Capture = Arc<Mutex<Vec<String>>>;

/// `None` → stderr; `Some(buffer)` → capture (tests).
static SINK: OnceLock<Mutex<Option<Capture>>> = OnceLock::new();

fn sink() -> &'static Mutex<Option<Capture>> {
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirect log output into an in-memory buffer and return it. Global:
/// affects the whole process until called again. Intended for tests.
pub fn set_capture() -> Capture {
    let buffer: Capture = Arc::new(Mutex::new(Vec::new()));
    *sink().lock().unwrap() = Some(buffer.clone());
    buffer
}

/// Drain and return the lines captured since [`set_capture`].
pub fn captured_lines(capture: &Capture) -> Vec<String> {
    std::mem::take(&mut capture.lock().unwrap())
}

/// Emit one structured event if `level` is enabled. Prefer the
/// [`log_event!`](crate::log_event) / `warn_event!` macros, which skip field construction
/// when the level is filtered out.
pub fn log_fields(level: Level, event: &str, fields: &[(&str, FieldValue<'_>)]) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"ts\":");
    line.push_str(&crate::trace::unix_millis().to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.name());
    line.push_str("\",\"event\":\"");
    escape_json(event, &mut line);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_json(key, &mut line);
        line.push_str("\":");
        match value {
            FieldValue::Str(s) => {
                line.push('"');
                escape_json(s, &mut line);
                line.push('"');
            }
            FieldValue::Owned(s) => {
                line.push('"');
                escape_json(s, &mut line);
                line.push('"');
            }
            FieldValue::U64(n) => line.push_str(&n.to_string()),
            FieldValue::I64(n) => line.push_str(&n.to_string()),
            FieldValue::F64(n) if n.is_finite() => line.push_str(&n.to_string()),
            FieldValue::F64(_) => line.push_str("null"),
            FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
    let captured = sink().lock().unwrap();
    match captured.as_ref() {
        Some(buffer) => buffer.lock().unwrap().push(line),
        None => eprintln!("{line}"),
    }
}

/// Emit a structured event: `log_event!(Level::Warn, "event_name",
/// "key" => value, ...)`. Field values go through
/// [`FieldValue::from`]; fields are not evaluated when the level is
/// filtered out.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::log_fields(
                $level,
                $event,
                &[$(($key, $crate::FieldValue::from($val))),*],
            );
        }
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Error`].
#[macro_export]
macro_rules! error_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Error, $event $(, $key => $val)*)
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Warn`].
#[macro_export]
macro_rules! warn_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Warn, $event $(, $key => $val)*)
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Info`].
#[macro_export]
macro_rules! info_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Info, $event $(, $key => $val)*)
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Debug`].
#[macro_export]
macro_rules! debug_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Debug, $event $(, $key => $val)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers the whole logger because the sink and level are
    /// process-global (parallel tests would interleave).
    #[test]
    fn logger_levels_capture_and_escaping() {
        let capture = set_capture();
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error) && enabled(Level::Warn));
        assert!(!enabled(Level::Info));

        crate::warn_event!(
            "corrupt_line",
            "path" => "a\"b\\c\nd",
            "line" => 42u64,
            "fatal" => false,
        );
        crate::info_event!("filtered_out");
        crate::error_event!("boom", "latency_ms" => 1.5f64);

        let lines = captured_lines(&capture);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"corrupt_line\""));
        assert!(lines[0].contains("\"path\":\"a\\\"b\\\\c\\nd\""));
        assert!(lines[0].contains("\"line\":42"));
        assert!(lines[0].contains("\"fatal\":false"));
        assert!(lines[0].starts_with("{\"ts\":"));
        assert!(lines[1].contains("\"level\":\"error\""));
        assert!(lines[1].contains("\"latency_ms\":1.5"));

        set_max_level(None);
        crate::error_event!("silenced");
        assert!(captured_lines(&capture).is_empty());
        set_max_level(Some(Level::Warn));
    }

    #[test]
    fn escape_json_handles_control_chars() {
        let mut out = String::new();
        escape_json("a\u{1}b\tc", &mut out);
        assert_eq!(out, "a\\u0001b\\tc");
    }
}
