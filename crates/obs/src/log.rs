//! Leveled JSON line logging.
//!
//! One event per line on stderr, shaped
//! `{"ts":<unix_ms>,"level":"warn","event":"store_open_failed",...}`.
//! The maximum emitted level comes from the `LIXTO_LOG` environment
//! variable (`off`, `error`, `warn`, `info`, `debug`; default `warn`)
//! and can be overridden programmatically with [`set_max_level`]. Event
//! names are stable identifiers — grep targets, not prose — and are
//! catalogued in `docs/OBSERVABILITY.md`.
//!
//! Tests swap the stderr sink for an in-memory buffer with
//! [`set_capture`] / [`captured_lines`].
//!
//! For durable logs, `LIXTO_LOG_FILE=<path>` (or [`set_log_file`])
//! appends the stream to a file with size-based rotation: when the next
//! line would push the file past `LIXTO_LOG_FILE_MAX_BYTES` (default
//! 8 MiB), the file is atomically renamed to `<path>.1` — replacing any
//! previous generation — and a fresh file is started, so at most two
//! generations exist on disk. If the file cannot be opened or written,
//! logging falls back to stderr with a warning line rather than losing
//! events.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not retried.
    Error,
    /// Something was skipped or degraded, but service continues.
    Warn,
    /// Notable lifecycle events.
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 0 = off; 1..=4 = max rank; 0xFF = not yet read from the environment.
static MAX_RANK: AtomicU8 = AtomicU8::new(0xFF);

fn max_rank() -> u8 {
    let cached = MAX_RANK.load(Ordering::Relaxed);
    if cached != 0xFF {
        return cached;
    }
    let from_env = match std::env::var("LIXTO_LOG").as_deref() {
        Ok("off") | Ok("none") => 0,
        Ok("error") => 1,
        Ok("info") => 3,
        Ok("debug") => 4,
        // Unrecognized values and the unset default both mean `warn`.
        _ => 2,
    };
    MAX_RANK.store(from_env, Ordering::Relaxed);
    from_env
}

/// Override the maximum emitted level (`None` silences everything).
/// Takes precedence over `LIXTO_LOG` from then on.
pub fn set_max_level(level: Option<Level>) {
    MAX_RANK.store(level.map_or(0, Level::rank), Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted. Callers with
/// expensive field construction should check this first; the
/// [`log_event!`](crate::log_event) macros do.
pub fn enabled(level: Level) -> bool {
    level.rank() <= max_rank()
}

/// A typed JSON field value. Build via `From`: `"text".into()`,
/// `7u64.into()`, `true.into()`.
#[derive(Debug, Clone)]
pub enum FieldValue<'a> {
    /// A borrowed string (JSON string).
    Str(&'a str),
    /// An owned string (JSON string).
    Owned(String),
    /// JSON number.
    U64(u64),
    /// JSON number.
    I64(i64),
    /// JSON number.
    F64(f64),
    /// JSON boolean.
    Bool(bool),
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}
impl<'a> From<&'a String> for FieldValue<'a> {
    fn from(v: &'a String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue<'_> {
    fn from(v: String) -> Self {
        FieldValue::Owned(v)
    }
}
impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue<'_> {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue<'_> {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue<'_> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue<'_> {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Append `s` to `out` as a JSON string body (no surrounding quotes),
/// escaping `"`, `\` and control characters.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

type Capture = Arc<Mutex<Vec<String>>>;

/// Default rotation threshold when `LIXTO_LOG_FILE_MAX_BYTES` is unset.
const DEFAULT_LOG_FILE_MAX_BYTES: u64 = 8 * 1024 * 1024;
/// Floor on the rotation threshold — rotating per line is never useful.
const MIN_LOG_FILE_MAX_BYTES: u64 = 1024;

/// An open log file plus the bookkeeping rotation needs.
struct FileSink {
    path: PathBuf,
    max_bytes: u64,
    file: std::fs::File,
    written: u64,
}

impl FileSink {
    fn open(path: PathBuf, max_bytes: u64) -> std::io::Result<FileSink> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(FileSink {
            path,
            max_bytes: max_bytes.max(MIN_LOG_FILE_MAX_BYTES),
            file,
            written,
        })
    }

    /// Append one line, rotating first if it would overflow `max_bytes`.
    /// Rotation renames the live file to `<path>.1` (atomic replace of
    /// the previous generation) and starts a fresh file.
    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        let needed = line.len() as u64 + 1;
        if self.written > 0 && self.written + needed > self.max_bytes {
            self.file.flush()?;
            let mut rotated = self.path.clone().into_os_string();
            rotated.push(".1");
            std::fs::rename(&self.path, PathBuf::from(rotated))?;
            self.file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            self.written = 0;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.written += needed;
        Ok(())
    }
}

enum SinkMode {
    Stderr,
    Capture(Capture),
    File(FileSink),
}

struct SinkState {
    mode: SinkMode,
    /// Whether `LIXTO_LOG_FILE` has been consulted; set by any explicit
    /// sink selection so tests are immune to the ambient environment.
    env_checked: bool,
}

static SINK: OnceLock<Mutex<SinkState>> = OnceLock::new();

fn sink() -> &'static Mutex<SinkState> {
    SINK.get_or_init(|| {
        Mutex::new(SinkState {
            mode: SinkMode::Stderr,
            env_checked: false,
        })
    })
}

/// Emit a logger-internal warning directly to stderr. Used for sink
/// failures, which cannot go through the normal pipeline (the sink lock
/// is held, and the sink itself is what failed).
fn sink_warning(event: &str, path: &std::path::Path, error: &std::io::Error) {
    let mut line = String::new();
    line.push_str("{\"ts\":");
    line.push_str(&crate::trace::unix_millis().to_string());
    line.push_str(",\"level\":\"warn\",\"event\":\"");
    line.push_str(event);
    line.push_str("\",\"path\":\"");
    escape_json(&path.display().to_string(), &mut line);
    line.push_str("\",\"error\":\"");
    escape_json(&error.to_string(), &mut line);
    line.push_str("\"}");
    eprintln!("{line}");
}

impl SinkState {
    /// Resolve `LIXTO_LOG_FILE` on first use (unless a sink was already
    /// chosen programmatically).
    fn init_from_env(&mut self) {
        if self.env_checked {
            return;
        }
        self.env_checked = true;
        let Ok(path) = std::env::var("LIXTO_LOG_FILE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let max_bytes = std::env::var("LIXTO_LOG_FILE_MAX_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_LOG_FILE_MAX_BYTES);
        let path = PathBuf::from(path);
        match FileSink::open(path.clone(), max_bytes) {
            Ok(file) => self.mode = SinkMode::File(file),
            Err(error) => sink_warning("log_file_open_failed", &path, &error),
        }
    }

    fn emit(&mut self, line: String) {
        self.init_from_env();
        match &mut self.mode {
            SinkMode::Capture(buffer) => buffer.lock().unwrap().push(line),
            SinkMode::File(file) => {
                if let Err(error) = file.write_line(&line) {
                    // Degrade to stderr permanently rather than erroring
                    // (or silently dropping) every subsequent event.
                    sink_warning("log_file_write_failed", &file.path, &error);
                    eprintln!("{line}");
                    self.mode = SinkMode::Stderr;
                }
            }
            SinkMode::Stderr => eprintln!("{line}"),
        }
    }
}

/// Redirect log output into an in-memory buffer and return it. Global:
/// affects the whole process until called again. Intended for tests.
pub fn set_capture() -> Capture {
    let buffer: Capture = Arc::new(Mutex::new(Vec::new()));
    let mut state = sink().lock().unwrap();
    state.mode = SinkMode::Capture(buffer.clone());
    state.env_checked = true;
    buffer
}

/// Drain and return the lines captured since [`set_capture`].
pub fn captured_lines(capture: &Capture) -> Vec<String> {
    std::mem::take(&mut capture.lock().unwrap())
}

/// Write the log stream to `path` with size-based rotation at
/// `max_bytes` (see the module docs), replacing any current sink. The
/// programmatic equivalent of `LIXTO_LOG_FILE`; global, like
/// [`set_capture`]. Fails without changing the sink if the file cannot
/// be opened.
pub fn set_log_file(path: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<()> {
    let file = FileSink::open(path.into(), max_bytes)?;
    let mut state = sink().lock().unwrap();
    state.mode = SinkMode::File(file);
    state.env_checked = true;
    Ok(())
}

/// Restore the default stderr sink (and stop consulting
/// `LIXTO_LOG_FILE`). Intended for tests that used [`set_log_file`].
pub fn set_stderr() {
    let mut state = sink().lock().unwrap();
    state.mode = SinkMode::Stderr;
    state.env_checked = true;
}

/// Emit one structured event if `level` is enabled. Prefer the
/// [`log_event!`](crate::log_event) / `warn_event!` macros, which skip field construction
/// when the level is filtered out.
pub fn log_fields(level: Level, event: &str, fields: &[(&str, FieldValue<'_>)]) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"ts\":");
    line.push_str(&crate::trace::unix_millis().to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.name());
    line.push_str("\",\"event\":\"");
    escape_json(event, &mut line);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_json(key, &mut line);
        line.push_str("\":");
        match value {
            FieldValue::Str(s) => {
                line.push('"');
                escape_json(s, &mut line);
                line.push('"');
            }
            FieldValue::Owned(s) => {
                line.push('"');
                escape_json(s, &mut line);
                line.push('"');
            }
            FieldValue::U64(n) => line.push_str(&n.to_string()),
            FieldValue::I64(n) => line.push_str(&n.to_string()),
            FieldValue::F64(n) if n.is_finite() => line.push_str(&n.to_string()),
            FieldValue::F64(_) => line.push_str("null"),
            FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
    sink().lock().unwrap().emit(line);
}

/// Emit a structured event: `log_event!(Level::Warn, "event_name",
/// "key" => value, ...)`. Field values go through
/// [`FieldValue::from`]; fields are not evaluated when the level is
/// filtered out.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::log_fields(
                $level,
                $event,
                &[$(($key, $crate::FieldValue::from($val))),*],
            );
        }
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Error`].
#[macro_export]
macro_rules! error_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Error, $event $(, $key => $val)*)
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Warn`].
#[macro_export]
macro_rules! warn_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Warn, $event $(, $key => $val)*)
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Info`].
#[macro_export]
macro_rules! info_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Info, $event $(, $key => $val)*)
    };
}

/// [`log_event!`](crate::log_event) at [`Level::Debug`].
#[macro_export]
macro_rules! debug_event {
    ($event:expr $(, $key:literal => $val:expr)* $(,)?) => {
        $crate::log_event!($crate::Level::Debug, $event $(, $key => $val)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers the whole logger because the sink and level are
    /// process-global (parallel tests would interleave).
    #[test]
    fn logger_levels_capture_and_escaping() {
        let capture = set_capture();
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error) && enabled(Level::Warn));
        assert!(!enabled(Level::Info));

        crate::warn_event!(
            "corrupt_line",
            "path" => "a\"b\\c\nd",
            "line" => 42u64,
            "fatal" => false,
        );
        crate::info_event!("filtered_out");
        crate::error_event!("boom", "latency_ms" => 1.5f64);

        let lines = captured_lines(&capture);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"corrupt_line\""));
        assert!(lines[0].contains("\"path\":\"a\\\"b\\\\c\\nd\""));
        assert!(lines[0].contains("\"line\":42"));
        assert!(lines[0].contains("\"fatal\":false"));
        assert!(lines[0].starts_with("{\"ts\":"));
        assert!(lines[1].contains("\"level\":\"error\""));
        assert!(lines[1].contains("\"latency_ms\":1.5"));

        set_max_level(None);
        crate::error_event!("silenced");
        assert!(captured_lines(&capture).is_empty());
        set_max_level(Some(Level::Warn));

        // File sink: lines land in the file and rotation moves the
        // full generation aside as `<path>.1`.
        let dir = std::env::temp_dir().join(format!("lixto_log_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        let rotated = dir.join("events.log.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        // MIN_LOG_FILE_MAX_BYTES floors the threshold, so emit lines
        // padded past 1 KiB to force a rotation on the second write.
        set_log_file(&path, 1).unwrap();
        let pad = "x".repeat(1100);
        crate::warn_event!("file_one", "pad" => pad.as_str());
        crate::warn_event!("file_two", "pad" => pad.as_str());
        set_stderr();
        let live = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rotated).unwrap();
        assert!(old.contains("\"event\":\"file_one\""), "rotated: {old}");
        assert!(live.contains("\"event\":\"file_two\""), "live: {live}");
        assert!(!live.contains("file_one"));
        // Reopening appends rather than truncating.
        set_log_file(&path, DEFAULT_LOG_FILE_MAX_BYTES).unwrap();
        crate::warn_event!("file_three");
        set_stderr();
        let live = std::fs::read_to_string(&path).unwrap();
        assert!(live.contains("file_two") && live.contains("file_three"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escape_json_handles_control_chars() {
        let mut out = String::new();
        escape_json("a\u{1}b\tc", &mut out);
        assert_eq!(out, "a\\u0001b\\tc");
    }
}
