//! Per-rule execution telemetry: atomic slot arrays indexed by the
//! plan's dense rule ids.
//!
//! One `RuleStats` is attached to each registered wrapper version. The
//! executor records `(rule, matches, nanos)` with three relaxed atomic
//! adds — no allocation, no locks — so telemetry can stay on in
//! production. Snapshots are taken by the debug endpoints and the
//! Prometheus exporter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-rule counters for one compiled wrapper plan.
pub struct RuleStats {
    labels: Vec<String>,
    invocations: Vec<AtomicU64>,
    matches: Vec<AtomicU64>,
    nanos: Vec<AtomicU64>,
}

impl RuleStats {
    /// Counters for `labels.len()` rules; `labels[i]` names rule `i`
    /// (by convention the target pattern name).
    pub fn new(labels: Vec<String>) -> RuleStats {
        let n = labels.len();
        RuleStats {
            labels,
            invocations: (0..n).map(|_| AtomicU64::new(0)).collect(),
            matches: (0..n).map(|_| AtomicU64::new(0)).collect(),
            nanos: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of rules tracked.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Record one rule invocation that produced `matches` new instances
    /// in `ns` nanoseconds. Out-of-range ids are ignored.
    pub fn record(&self, rule: usize, matches: u64, ns: u64) {
        if rule >= self.labels.len() {
            return;
        }
        self.invocations[rule].fetch_add(1, Ordering::Relaxed);
        self.matches[rule].fetch_add(matches, Ordering::Relaxed);
        self.nanos[rule].fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of every rule's counters.
    pub fn snapshot(&self) -> Vec<RuleStat> {
        (0..self.labels.len())
            .map(|i| RuleStat {
                rule: i,
                label: self.labels[i].clone(),
                invocations: self.invocations[i].load(Ordering::Relaxed),
                matches: self.matches[i].load(Ordering::Relaxed),
                total_ns: self.nanos[i].load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// One rule's counters, copied out of a [`RuleStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleStat {
    /// Dense rule id within the plan.
    pub rule: usize,
    /// Rule label (target pattern name).
    pub label: String,
    /// Times the rule body was evaluated.
    pub invocations: u64,
    /// New pattern instances the rule produced.
    pub matches: u64,
    /// Cumulative evaluation wall time in nanoseconds.
    pub total_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_rule() {
        let stats = RuleStats::new(vec!["item".to_string(), "price".to_string()]);
        stats.record(0, 3, 1_000);
        stats.record(0, 2, 500);
        stats.record(1, 0, 250);
        stats.record(9, 7, 7); // out of range: ignored
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0],
            RuleStat {
                rule: 0,
                label: "item".to_string(),
                invocations: 2,
                matches: 5,
                total_ns: 1_500,
            }
        );
        assert_eq!((snap[1].invocations, snap[1].matches), (1, 0));
        assert_eq!(snap[1].total_ns, 250);
    }

    #[test]
    fn empty_plan_is_empty() {
        let stats = RuleStats::new(Vec::new());
        assert!(stats.is_empty());
        assert_eq!(stats.len(), 0);
        assert!(stats.snapshot().is_empty());
    }
}
