//! # lixto-html
//!
//! HTML parsing substrate: turns HTML source into the unranked ordered
//! labeled trees (`lixto_tree::Document`) that wrappers run on.
//!
//! The paper's pipeline (Figure 2) starts from "an HTML document" that the
//! Extractor receives already parsed into a document tree; the commercial
//! Lixto system used a Java HTML/DOM stack. This crate is the from-scratch
//! replacement: a tokenizer ([`tokenizer`]) feeding a *forgiving* tree
//! builder ([`treebuilder`]) that applies the HTML idioms real pages rely
//! on — implied end tags (`<li>`, `<tr>`, `<td>`, `<p>`, …), void elements,
//! raw-text elements (`<script>`, `<style>`), case-insensitive names, and
//! entity decoding ([`entities`]).
//!
//! It is deliberately not a full WHATWG implementation (no foster
//! parenting, no active formatting elements): wrapping workloads — and the
//! synthetic sites in `lixto-workloads` — exercise the table/list/link
//! idioms, which are handled faithfully.
//!
//! # Example
//!
//! ```
//! let doc = lixto_html::parse("<table><tr><td>Item<td>Price</table>");
//! let tds: Vec<_> = doc
//!     .node_ids()
//!     .filter(|&n| doc.label_str(n) == "td")
//!     .collect();
//! assert_eq!(tds.len(), 2, "implied </td> must be inserted");
//! ```

#![forbid(unsafe_code)]

pub mod entities;
pub mod tokenizer;
pub mod treebuilder;

pub use tokenizer::{Token, Tokenizer};
pub use treebuilder::{parse, parse_with_options, ParseOptions};
