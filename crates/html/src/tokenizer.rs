//! HTML tokenizer.
//!
//! Produces a flat token stream; all tree-shaping (implied end tags, void
//! elements) happens in [`treebuilder`](crate::treebuilder). Names are
//! lower-cased, attribute values entity-decoded, raw-text elements
//! (`script`, `style`, `textarea`, `title`) consumed verbatim up to their
//! matching end tag.

use crate::entities::decode;

/// One token of HTML source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" …>`; `self_closing` records a trailing `/`.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order, entity-decoded values.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// Character data between tags, entity-decoded.
    Text(String),
    /// `<!-- … -->`.
    Comment(String),
    /// `<!DOCTYPE …>` — content ignored.
    Doctype,
}

/// Elements whose content is raw text up to the matching end tag.
pub(crate) const RAW_TEXT: &[&str] = &["script", "style", "textarea", "title"];

/// Streaming tokenizer over HTML source.
pub struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
    /// Set when the last start tag opened a raw-text element; the next
    /// token is everything up to its end tag.
    pending_raw: Option<String>,
}

impl<'a> Tokenizer<'a> {
    /// Tokenize `src` from the beginning.
    pub fn new(src: &'a str) -> Tokenizer<'a> {
        Tokenizer {
            src,
            pos: 0,
            pending_raw: None,
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Case-insensitive search for `</name` from the current position.
    fn find_end_tag(&self, name: &str) -> Option<usize> {
        let hay = self.rest().as_bytes();
        let needle_len = name.len() + 2;
        if hay.len() < needle_len {
            return None;
        }
        'outer: for i in 0..=(hay.len() - needle_len) {
            if hay[i] != b'<' || hay[i + 1] != b'/' {
                continue;
            }
            for (j, nb) in name.bytes().enumerate() {
                if hay[i + 2 + j].to_ascii_lowercase() != nb {
                    continue 'outer;
                }
            }
            return Some(self.pos + i);
        }
        None
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        // Raw-text mode: swallow everything up to the matching end tag.
        if let Some(name) = self.pending_raw.take() {
            let end = self.find_end_tag(&name).unwrap_or(self.src.len());
            let text = &self.src[self.pos..end];
            self.pos = end;
            if !text.is_empty() {
                // Raw text is NOT entity-decoded (scripts contain '&&').
                return Some(Token::Text(text.to_string()));
            }
            // fall through to normal tokenization of the end tag
        }
        if self.pos >= self.src.len() {
            return None;
        }
        if self.starts_with("<!--") {
            let start = self.pos + 4;
            let end = self.src[start..]
                .find("-->")
                .map(|p| start + p)
                .unwrap_or(self.src.len());
            let body = self.src[start..end].to_string();
            self.pos = (end + 3).min(self.src.len());
            return Some(Token::Comment(body));
        }
        if self.starts_with("<!") || self.starts_with("<?") {
            // DOCTYPE or processing instruction: skip to '>'.
            let end = self.rest().find('>').map(|p| self.pos + p);
            self.pos = end.map(|e| e + 1).unwrap_or(self.src.len());
            return Some(Token::Doctype);
        }
        if self.starts_with("</") {
            self.pos += 2;
            let name = self.read_name();
            // Skip to '>' (tolerate junk in end tags).
            match self.rest().find('>') {
                Some(p) => self.pos += p + 1,
                None => self.pos = self.src.len(),
            }
            if name.is_empty() {
                return self.next();
            }
            return Some(Token::EndTag { name });
        }
        if self.starts_with("<") {
            // A '<' not followed by a letter is literal text.
            let after = self.rest()[1..].chars().next();
            if !matches!(after, Some(c) if c.is_ascii_alphabetic()) {
                return Some(self.read_text());
            }
            self.pos += 1;
            let name = self.read_name();
            let mut attrs = Vec::new();
            let mut self_closing = false;
            loop {
                self.skip_ws();
                match self.rest().chars().next() {
                    None => break,
                    Some('>') => {
                        self.pos += 1;
                        break;
                    }
                    Some('/') => {
                        self.pos += 1;
                        if self.starts_with(">") {
                            self.pos += 1;
                            self_closing = true;
                            break;
                        }
                    }
                    Some(_) => {
                        if let Some(attr) = self.read_attr() {
                            attrs.push(attr);
                        }
                    }
                }
            }
            if !self_closing && RAW_TEXT.contains(&name.as_str()) {
                self.pending_raw = Some(name.clone());
            }
            return Some(Token::StartTag {
                name,
                attrs,
                self_closing,
            });
        }
        Some(self.read_text())
    }
}

impl Tokenizer<'_> {
    fn read_text(&mut self) -> Token {
        let start = self.pos;
        // Consume at least one char, then up to the next '<'.
        let mut it = self.rest().char_indices();
        it.next();
        let end = it
            .find(|&(_, c)| c == '<')
            .map(|(i, _)| start + i)
            .unwrap_or(self.src.len());
        let raw = &self.src[start..end];
        self.pos = end;
        Token::Text(decode(raw))
    }

    fn read_name(&mut self) -> String {
        let start = self.pos;
        for (i, c) in self.rest().char_indices() {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' {
                continue;
            }
            self.pos = start + i;
            return self.src[start..self.pos].to_ascii_lowercase();
        }
        self.pos = self.src.len();
        self.src[start..].to_ascii_lowercase()
    }

    fn read_attr(&mut self) -> Option<(String, String)> {
        let name = self.read_name();
        if name.is_empty() {
            // Unparseable junk: skip one char to guarantee progress.
            self.pos += self.rest().chars().next().map_or(0, |c| c.len_utf8());
            return None;
        }
        self.skip_ws();
        if !self.starts_with("=") {
            return Some((name, String::new())); // boolean attribute
        }
        self.pos += 1;
        self.skip_ws();
        let value = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => {
                self.pos += 1;
                let end = self
                    .rest()
                    .find(q)
                    .map(|p| self.pos + p)
                    .unwrap_or(self.src.len());
                let v = &self.src[self.pos..end];
                self.pos = (end + 1).min(self.src.len());
                v.to_string()
            }
            _ => {
                let start = self.pos;
                let end = self
                    .rest()
                    .char_indices()
                    .find(|&(_, c)| c.is_whitespace() || c == '>' || c == '/')
                    .map(|(i, _)| start + i)
                    .unwrap_or(self.src.len());
                self.pos = end;
                self.src[start..end].to_string()
            }
        };
        Some((name, decode(&value)))
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        Tokenizer::new(s).collect()
    }

    #[test]
    fn simple_tags_and_text() {
        let t = toks("<p>hi</p>");
        assert_eq!(t.len(), 3);
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "p"));
        assert!(matches!(&t[1], Token::Text(s) if s == "hi"));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "p"));
    }

    #[test]
    fn attributes_all_quote_styles() {
        let t = toks(r#"<a href="x" id='y' class=z disabled>"#);
        if let Token::StartTag { attrs, .. } = &t[0] {
            assert_eq!(
                attrs,
                &vec![
                    ("href".to_string(), "x".to_string()),
                    ("id".to_string(), "y".to_string()),
                    ("class".to_string(), "z".to_string()),
                    ("disabled".to_string(), String::new()),
                ]
            );
        } else {
            panic!("expected start tag");
        }
    }

    #[test]
    fn names_are_lowercased() {
        let t = toks("<TABLE BgColor=red></TABLE>");
        assert!(matches!(&t[0], Token::StartTag { name, attrs, .. }
            if name == "table" && attrs[0].0 == "bgcolor"));
        assert!(matches!(&t[1], Token::EndTag { name } if name == "table"));
    }

    #[test]
    fn self_closing_flag() {
        let t = toks("<br/><img src=x />");
        assert!(matches!(
            &t[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(&t[1], Token::StartTag { name, self_closing: true, .. } if name == "img"));
    }

    #[test]
    fn comments_and_doctype() {
        let t = toks("<!DOCTYPE html><!-- note --><b>x</b>");
        assert!(matches!(&t[0], Token::Doctype));
        assert!(matches!(&t[1], Token::Comment(c) if c == " note "));
    }

    #[test]
    fn raw_text_script_not_parsed() {
        let t = toks("<script>if (a<b && c>d) {}</script><p>x</p>");
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "script"));
        assert!(matches!(&t[1], Token::Text(s) if s.contains("a<b && c>d")));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "script"));
        assert!(matches!(&t[3], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn raw_text_end_tag_case_insensitive() {
        let t = toks("<style>body{}</STYLE>after");
        assert!(matches!(&t[1], Token::Text(s) if s == "body{}"));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "style"));
        assert!(matches!(&t[3], Token::Text(s) if s == "after"));
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let t = toks(r#"<a title="A &amp; B">&euro;5</a>"#);
        assert!(matches!(&t[0], Token::StartTag { attrs, .. } if attrs[0].1 == "A & B"));
        assert!(matches!(&t[1], Token::Text(s) if s == "€5"));
    }

    #[test]
    fn stray_lt_is_text() {
        let t = toks("a < b");
        assert_eq!(t.len(), 2); // "a " and "< b"
        let joined: String = t
            .iter()
            .map(|tok| match tok {
                Token::Text(s) => s.clone(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(joined, "a < b");
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let t = toks("<p>x<a href=");
        assert!(t.len() >= 2);
    }

    #[test]
    fn unterminated_raw_text() {
        let t = toks("<script>never ends");
        assert!(matches!(&t[1], Token::Text(s) if s == "never ends"));
    }
}
