//! Forgiving tree construction from the token stream.
//!
//! Implements the subset of HTML's implied-end-tag rules that data-centric
//! pages exercise: list items, paragraphs, table structure, definition
//! lists, options. Unmatched end tags are dropped; unclosed elements are
//! closed at end of input; everything is rooted under a synthesized `html`
//! element when the source does not provide one (documents are single
//! trees, and Lixto's "root" pattern needs a root node).

use lixto_tree::{Document, TreeBuilder};

use crate::tokenizer::{Token, Tokenizer};

/// Elements that never have children.
const VOID: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Parsing options.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Drop text nodes that consist only of whitespace (default: true).
    /// Inter-tag whitespace carries no information for wrappers and would
    /// roughly double node counts on indented markup.
    pub skip_whitespace_text: bool,
    /// Drop comment tokens entirely (default: true).
    pub skip_comments: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            skip_whitespace_text: true,
            skip_comments: true,
        }
    }
}

/// Parse with default options.
pub fn parse(src: &str) -> Document {
    parse_with_options(src, &ParseOptions::default())
}

/// Parse `src` into a document tree.
///
/// Never fails: HTML parsing is total. Pathological input produces a tree
/// that reflects a browser-like forgiving interpretation.
pub fn parse_with_options(src: &str, opts: &ParseOptions) -> Document {
    let mut b = TreeBuilder::new();
    // Track open element names in parallel with the builder's stack; the
    // builder gives us current_label but we need full-stack searches for
    // end-tag matching.
    let mut stack: Vec<String> = Vec::new();
    let mut saw_root = false;

    let ensure_root = |b: &mut TreeBuilder, stack: &mut Vec<String>, saw_root: &mut bool| {
        if !*saw_root {
            b.open("html");
            stack.push("html".to_string());
            *saw_root = true;
        }
    };

    for tok in Tokenizer::new(src) {
        match tok {
            Token::Doctype => {}
            Token::Comment(_) if opts.skip_comments => {}
            Token::Comment(_) => {}
            Token::Text(t) => {
                if opts.skip_whitespace_text && t.trim().is_empty() {
                    continue;
                }
                ensure_root(&mut b, &mut stack, &mut saw_root);
                b.text(&t);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                if name == "html" && !saw_root {
                    b.open("html");
                    stack.push("html".to_string());
                    saw_root = true;
                    for (k, v) in &attrs {
                        b.attr(k, v);
                    }
                    continue;
                }
                ensure_root(&mut b, &mut stack, &mut saw_root);
                // Implied end tags: close elements the new tag terminates.
                while let Some(top) = stack.last() {
                    if implies_end(top, &name) && stack.len() > 1 {
                        b.close();
                        stack.pop();
                    } else {
                        break;
                    }
                }
                b.open(&name);
                for (k, v) in &attrs {
                    b.attr(k, v);
                }
                if self_closing || VOID.contains(&name.as_str()) {
                    b.close();
                } else {
                    stack.push(name);
                }
            }
            Token::EndTag { name } => {
                // Find the nearest matching open element; if none, ignore.
                if let Some(idx) = stack.iter().rposition(|n| *n == name) {
                    if idx == 0 {
                        // Closing the root: leave it open; finish() closes.
                        continue;
                    }
                    while stack.len() > idx {
                        b.close();
                        stack.pop();
                    }
                }
            }
        }
    }
    if !saw_root {
        b.open("html");
    }
    b.finish()
}

/// Does an open `<open>` element get implicitly closed by a following
/// `<next>` start tag?
fn implies_end(open: &str, next: &str) -> bool {
    match open {
        "li" => next == "li",
        "dt" | "dd" => next == "dt" || next == "dd",
        "option" => next == "option" || next == "optgroup",
        "tr" => next == "tr" || next == "tbody" || next == "thead" || next == "tfoot",
        "td" | "th" => {
            next == "td"
                || next == "th"
                || next == "tr"
                || next == "tbody"
                || next == "thead"
                || next == "tfoot"
        }
        "thead" | "tbody" | "tfoot" => next == "tbody" || next == "tfoot",
        "p" => matches!(
            next,
            "p" | "div"
                | "table"
                | "ul"
                | "ol"
                | "dl"
                | "li"
                | "h1"
                | "h2"
                | "h3"
                | "h4"
                | "h5"
                | "h6"
                | "blockquote"
                | "pre"
                | "form"
                | "hr"
                | "section"
                | "article"
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_tree::render::to_sexp;

    fn sexp(src: &str) -> String {
        to_sexp(&parse(src))
    }

    #[test]
    fn well_formed_document() {
        assert_eq!(
            sexp("<html><body><p>hi</p></body></html>"),
            r#"(html (body (p "hi")))"#
        );
    }

    #[test]
    fn missing_root_is_synthesized() {
        assert_eq!(sexp("<p>a</p>"), r#"(html (p "a"))"#);
        assert_eq!(sexp("just text"), r#"(html "just text")"#);
        assert_eq!(sexp(""), "(html)");
    }

    #[test]
    fn implied_li_end_tags() {
        assert_eq!(
            sexp("<ul><li>a<li>b<li>c</ul>"),
            r#"(html (ul (li "a") (li "b") (li "c")))"#
        );
    }

    #[test]
    fn implied_table_cells() {
        assert_eq!(
            sexp("<table><tr><td>1<td>2<tr><td>3</table>"),
            r#"(html (table (tr (td "1") (td "2")) (tr (td "3"))))"#
        );
    }

    #[test]
    fn paragraph_closed_by_block() {
        assert_eq!(
            sexp("<p>one<p>two<div>three</div>"),
            r#"(html (p "one") (p "two") (div "three"))"#
        );
    }

    #[test]
    fn void_elements_take_no_children() {
        // note: <hr> implies </p> (spec behaviour), so it lands as a sibling
        assert_eq!(
            sexp("<p>a<br>b<hr>c</p>"),
            r#"(html (p "a" (br) "b") (hr) "c")"#
        );
        assert_eq!(
            sexp(r#"<img src="x.png">after"#),
            r#"(html (img src="x.png") "after")"#
        );
    }

    #[test]
    fn unmatched_end_tags_ignored() {
        assert_eq!(sexp("<b>x</i></b>"), r#"(html (b "x"))"#);
        assert_eq!(sexp("</div><p>y</p>"), r#"(html (p "y"))"#);
    }

    #[test]
    fn unclosed_elements_closed_at_eof() {
        assert_eq!(sexp("<div><span>deep"), r#"(html (div (span "deep")))"#);
    }

    #[test]
    fn end_tag_closes_intervening_elements() {
        assert_eq!(
            sexp("<div><b>x</div>after"),
            r#"(html (div (b "x")) "after")"#
        );
    }

    #[test]
    fn whitespace_text_skipped_by_default() {
        assert_eq!(
            sexp("<table>\n  <tr>\n    <td>v</td>\n  </tr>\n</table>"),
            r#"(html (table (tr (td "v"))))"#
        );
    }

    #[test]
    fn whitespace_kept_when_requested() {
        let doc = parse_with_options(
            "<p> </p>",
            &ParseOptions {
                skip_whitespace_text: false,
                skip_comments: true,
            },
        );
        assert_eq!(to_sexp(&doc), r#"(html (p " "))"#);
    }

    #[test]
    fn attributes_survive_into_tree() {
        let doc = parse(r#"<table bgcolor="green"><tr><td>x</td></tr></table>"#);
        let table = doc
            .node_ids()
            .find(|&n| doc.label_str(n) == "table")
            .unwrap();
        assert_eq!(doc.attr(table, "bgcolor"), Some("green"));
    }

    #[test]
    fn ebay_like_page_shape() {
        // The Figure 5 wrapper counts on: body > (header table, item
        // tables..., hr).
        let src = r#"<html><body>
          <table><tr><td>item</td></tr></table>
          <table><tr><td><a href="i1">Desc 1</a></td><td>$ 10.00</td><td>3</td></tr></table>
          <table><tr><td><a href="i2">Desc 2</a></td><td>$ 22.50</td><td>0</td></tr></table>
          <hr>
        </body></html>"#;
        let doc = parse(src);
        let body = doc
            .node_ids()
            .find(|&n| doc.label_str(n) == "body")
            .unwrap();
        let kids: Vec<_> = doc
            .children(body)
            .map(|n| doc.label_str(n).to_string())
            .collect();
        assert_eq!(kids, vec!["table", "table", "table", "hr"]);
    }

    #[test]
    fn deep_nesting_does_not_recurse() {
        let mut src = String::new();
        for _ in 0..50_000 {
            src.push_str("<div>");
        }
        src.push('x');
        let doc = parse(&src);
        assert_eq!(doc.len(), 50_002); // html + divs + text
    }

    #[test]
    fn definition_lists() {
        assert_eq!(
            sexp("<dl><dt>t1<dd>d1<dt>t2<dd>d2</dl>"),
            r#"(html (dl (dt "t1") (dd "d1") (dt "t2") (dd "d2")))"#
        );
    }

    #[test]
    fn thead_tbody_sections() {
        assert_eq!(
            sexp("<table><thead><tr><th>h</th></tr><tbody><tr><td>v</td></tr></table>"),
            r#"(html (table (thead (tr (th "h"))) (tbody (tr (td "v")))))"#
        );
    }
}
