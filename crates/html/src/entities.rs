//! Character-reference (entity) decoding.
//!
//! Covers the numeric forms `&#dd;` / `&#xhh;` and the named entities that
//! actually occur on data-centric pages (currency signs, punctuation,
//! accented letters used by the paper's application domains). Unknown
//! entities are passed through verbatim — the forgiving behaviour browsers
//! exhibit and wrappers depend on.

/// Named entities we decode. Kept sorted for the binary search in
/// [`lookup_named`].
const NAMED: &[(&str, char)] = &[
    ("AElig", 'Æ'),
    ("Aacute", 'Á'),
    ("Eacute", 'É'),
    ("Oacute", 'Ó'),
    ("Uacute", 'Ú'),
    ("aacute", 'á'),
    ("agrave", 'à'),
    ("amp", '&'),
    ("apos", '\''),
    ("auml", 'ä'),
    ("bull", '•'),
    ("cent", '¢'),
    ("copy", '©'),
    ("curren", '¤'),
    ("deg", '°'),
    ("eacute", 'é'),
    ("egrave", 'è'),
    ("euro", '€'),
    ("frac12", '½'),
    ("gt", '>'),
    ("hellip", '…'),
    ("iexcl", '¡'),
    ("laquo", '«'),
    ("ldquo", '“'),
    ("lsquo", '‘'),
    ("lt", '<'),
    ("mdash", '—'),
    ("middot", '·'),
    ("nbsp", '\u{a0}'),
    ("ndash", '–'),
    ("ouml", 'ö'),
    ("para", '¶'),
    ("plusmn", '±'),
    ("pound", '£'),
    ("quot", '"'),
    ("raquo", '»'),
    ("rdquo", '”'),
    ("reg", '®'),
    ("rsquo", '’'),
    ("sect", '§'),
    ("szlig", 'ß'),
    ("times", '×'),
    ("trade", '™'),
    ("uacute", 'ú'),
    ("uuml", 'ü'),
    ("yen", '¥'),
];

fn lookup_named(name: &str) -> Option<char> {
    NAMED
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .map(|i| NAMED[i].1)
}

/// Decode all character references in `input`.
///
/// Handles `&name;`, `&#decimal;`, `&#xhex;` (and `&#Xhex;`). A reference
/// that does not parse — unknown name, bad number, missing `;` — is copied
/// through unchanged.
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy one full UTF-8 char.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the ';' within a reasonable window.
        let end = bytes[i + 1..]
            .iter()
            .take(32)
            .position(|&b| b == b';')
            .map(|p| i + 1 + p);
        let Some(end) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let body = &input[i + 1..end];
        let decoded = if let Some(num) = body.strip_prefix('#') {
            let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
                u32::from_str_radix(hex, 16).ok()
            } else {
                num.parse::<u32>().ok()
            };
            code.and_then(char::from_u32)
        } else {
            lookup_named(body)
        };
        match decoded {
            Some(c) => {
                out.push(c);
                i = end + 1;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode("a &amp; b &lt;c&gt;"), "a & b <c>");
        assert_eq!(decode("&euro;45 &nbsp;"), "€45 \u{a0}");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode("&#65;&#x42;&#X43;"), "ABC");
        assert_eq!(decode("&#8364;"), "€");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(
            decode("&bogus; &noSemicolonEver"),
            "&bogus; &noSemicolonEver"
        );
        assert_eq!(decode("x & y"), "x & y");
    }

    #[test]
    fn invalid_numeric_pass_through() {
        assert_eq!(decode("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode("&#;"), "&#;");
    }

    #[test]
    fn table_is_sorted_for_binary_search() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn no_ampersand_fast_path() {
        assert_eq!(decode("plain text"), "plain text");
    }

    #[test]
    fn multibyte_around_entities() {
        assert_eq!(decode("é&amp;ü"), "é&ü");
    }
}
