//! Instance-level diffs between consecutive extractions.
//!
//! The paper's §6 information pipes deliver results "only if the status
//! changed between consecutive requests" — and what changed, not just
//! *that* something changed. [`ChangeDetector`](crate::ChangeDetector)
//! answers the boolean; this module answers the delta: two
//! [`ExtractionSnapshot`]s (the extracted pattern instances of one run,
//! in document order) diff into an [`InstanceDiff`] of added, removed
//! and changed instances keyed by pattern + text — never raw-HTML byte
//! equality, so irrelevant markup churn that extracts identically
//! produces an empty diff.
//!
//! The diff is a per-pattern multiset comparison: instances present in
//! both snapshots (same pattern, same text) are unchanged regardless of
//! position; leftover old instances pair up positionally with leftover
//! new ones of the same pattern as *changed* (a record whose text
//! mutated in place); the unpaired remainder is *added* / *removed*.
//! The result is deterministic — patterns in first-appearance order,
//! entries in document order — so a reference recompute matches exactly.

use std::collections::HashMap;

/// One extracted instance: which pattern matched, and the matched text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInstance {
    /// Pattern name.
    pub pattern: String,
    /// The instance's extracted text.
    pub text: String,
}

/// The instance-level state of one extraction run: every pattern
/// instance in document order. This is the unit the watch layer stores
/// per subscription and diffs across consecutive runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractionSnapshot {
    /// All instances, in document order.
    pub instances: Vec<SnapshotInstance>,
}

impl ExtractionSnapshot {
    /// A snapshot from `(pattern, text)` pairs in document order.
    pub fn from_pairs<P, T>(pairs: impl IntoIterator<Item = (P, T)>) -> ExtractionSnapshot
    where
        P: Into<String>,
        T: Into<String>,
    {
        ExtractionSnapshot {
            instances: pairs
                .into_iter()
                .map(|(pattern, text)| SnapshotInstance {
                    pattern: pattern.into(),
                    text: text.into(),
                })
                .collect(),
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the run extracted nothing.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

/// An instance that appeared or disappeared between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Pattern name.
    pub pattern: String,
    /// The instance text.
    pub text: String,
}

/// An instance whose text mutated in place: one leftover old instance
/// paired with one leftover new instance of the same pattern, in
/// document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangedEntry {
    /// Pattern name.
    pub pattern: String,
    /// Text before the change.
    pub before: String,
    /// Text after the change.
    pub after: String,
}

/// The delta between two consecutive extractions of one source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstanceDiff {
    /// Instances present only in the new snapshot.
    pub added: Vec<DiffEntry>,
    /// Instances present only in the old snapshot.
    pub removed: Vec<DiffEntry>,
    /// Instances whose text mutated (paired old/new leftovers).
    pub changed: Vec<ChangedEntry>,
}

impl InstanceDiff {
    /// True when the two snapshots extract identically — the
    /// "unchanged tick delivers nothing" condition.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total entries across the three sets.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }
}

/// Diff two snapshots per pattern:
///
/// 1. instances with the same pattern and text in both snapshots cancel
///    out (multiset intersection — reordering alone is not a change);
/// 2. the leftovers pair up positionally per pattern as `changed`;
/// 3. unpaired leftovers land in `added` (new side) or `removed` (old
///    side).
pub fn diff_snapshots(old: &ExtractionSnapshot, new: &ExtractionSnapshot) -> InstanceDiff {
    // Patterns in first-appearance order across both snapshots, so the
    // output order is deterministic and stable under re-runs.
    let mut patterns: Vec<&str> = Vec::new();
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for inst in old.instances.iter().chain(&new.instances) {
        if seen.insert(inst.pattern.as_str(), ()).is_none() {
            patterns.push(inst.pattern.as_str());
        }
    }
    let mut out = InstanceDiff::default();
    for pattern in patterns {
        let old_texts: Vec<&str> = old
            .instances
            .iter()
            .filter(|i| i.pattern == pattern)
            .map(|i| i.text.as_str())
            .collect();
        let new_texts: Vec<&str> = new
            .instances
            .iter()
            .filter(|i| i.pattern == pattern)
            .map(|i| i.text.as_str())
            .collect();
        // Multiset intersection: count the old texts, consume matches
        // from the new side; what cannot be consumed is surplus.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in &old_texts {
            *counts.entry(t).or_insert(0) += 1;
        }
        let mut new_surplus: Vec<&str> = Vec::new();
        for t in &new_texts {
            match counts.get_mut(t) {
                Some(c) if *c > 0 => *c -= 1,
                _ => new_surplus.push(t),
            }
        }
        // Leftover counts name the old-side surplus; walk the old list
        // so surplus instances keep document order.
        let mut old_surplus: Vec<&str> = Vec::new();
        for t in &old_texts {
            if let Some(c) = counts.get_mut(t) {
                if *c > 0 {
                    *c -= 1;
                    old_surplus.push(t);
                }
            }
        }
        let paired = old_surplus.len().min(new_surplus.len());
        for i in 0..paired {
            out.changed.push(ChangedEntry {
                pattern: pattern.to_string(),
                before: old_surplus[i].to_string(),
                after: new_surplus[i].to_string(),
            });
        }
        for t in &old_surplus[paired..] {
            out.removed.push(DiffEntry {
                pattern: pattern.to_string(),
                text: t.to_string(),
            });
        }
        for t in &new_surplus[paired..] {
            out.added.push(DiffEntry {
                pattern: pattern.to_string(),
                text: t.to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, &str)]) -> ExtractionSnapshot {
        ExtractionSnapshot::from_pairs(pairs.iter().map(|&(p, t)| (p, t)))
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = snap(&[("offer", "beans"), ("price", "3.50")]);
        let d = diff_snapshots(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn reordering_is_not_a_change() {
        let a = snap(&[("offer", "beans"), ("offer", "grinder")]);
        let b = snap(&[("offer", "grinder"), ("offer", "beans")]);
        assert!(diff_snapshots(&a, &b).is_empty());
    }

    #[test]
    fn added_and_removed_instances() {
        let a = snap(&[("offer", "beans")]);
        let b = snap(&[("offer", "beans"), ("offer", "kettle"), ("price", "9")]);
        let d = diff_snapshots(&a, &b);
        assert_eq!(
            d.added,
            vec![
                DiffEntry {
                    pattern: "offer".into(),
                    text: "kettle".into()
                },
                DiffEntry {
                    pattern: "price".into(),
                    text: "9".into()
                },
            ]
        );
        assert!(d.removed.is_empty());
        assert!(d.changed.is_empty());
        let back = diff_snapshots(&b, &a);
        assert_eq!(back.removed.len(), 2);
        assert!(back.added.is_empty());
    }

    #[test]
    fn in_place_mutation_pairs_as_changed() {
        let a = snap(&[("status", "on time"), ("gate", "B12")]);
        let b = snap(&[("status", "delayed"), ("gate", "B12")]);
        let d = diff_snapshots(&a, &b);
        assert_eq!(
            d.changed,
            vec![ChangedEntry {
                pattern: "status".into(),
                before: "on time".into(),
                after: "delayed".into(),
            }]
        );
        assert!(d.added.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn duplicate_texts_diff_by_count() {
        let a = snap(&[("offer", "beans"), ("offer", "beans")]);
        let b = snap(&[("offer", "beans")]);
        let d = diff_snapshots(&a, &b);
        assert!(d.added.is_empty() && d.changed.is_empty());
        assert_eq!(d.removed.len(), 1);
    }

    #[test]
    fn surplus_beyond_pairing_splits_into_added() {
        let a = snap(&[("offer", "beans")]);
        let b = snap(&[("offer", "kettle"), ("offer", "mug")]);
        let d = diff_snapshots(&a, &b);
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.changed[0].before, "beans");
        assert_eq!(d.changed[0].after, "kettle");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].text, "mug");
        assert!(d.removed.is_empty());
    }

    #[test]
    fn empty_snapshots() {
        let none = ExtractionSnapshot::default();
        assert!(none.is_empty());
        assert!(diff_snapshots(&none, &none).is_empty());
        let some = snap(&[("offer", "beans")]);
        assert_eq!(diff_snapshots(&none, &some).added.len(), 1);
        assert_eq!(diff_snapshots(&some, &none).removed.len(), 1);
    }
}
