//! Pipe execution.
//!
//! Two runtimes share the component semantics:
//!
//! * [`run_ticks`] — a deterministic scheduler: at each tick, boundary
//!   wrappers whose trigger fires re-acquire their sources, and documents
//!   propagate through the DAG in topological order. Used by tests and the
//!   E12/E13 experiments, where determinism matters.
//! * [`run_threaded`] — one thread per component connected by
//!   crossbeam channels, the push-based streaming architecture the paper
//!   describes ("push-based information systems architectures in which
//!   wrappers are connected to pipelines of postprocessors").

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, Sender};
use lixto_elog::WebSource;
use lixto_xml::Element;

use crate::component::{integrate, Component, DeliveredMessage};
use crate::pipe::InfoPipe;
use crate::trigger::ChangeDetector;

/// Run `pipe` for `ticks` scheduler ticks against `web_at` (a function
/// giving the web state at each tick — sources change over time).
/// Returns every delivered message with its tick.
pub fn run_ticks(
    pipe: &InfoPipe,
    ticks: u64,
    web_at: &dyn Fn(u64) -> Box<dyn WebSource>,
) -> Vec<(u64, DeliveredMessage)> {
    let order = pipe.topo_order().expect("pipe must be acyclic");
    let mut delivered = Vec::new();
    let mut change: HashMap<usize, ChangeDetector> = HashMap::new();
    // Latest output per node (persisting between ticks, so slow sources
    // keep serving their last acquisition).
    let mut latest: HashMap<usize, Element> = HashMap::new();
    for tick in 0..ticks {
        let web = web_at(tick);
        for &i in &order {
            let node = &pipe.nodes[i];
            match &node.component {
                Component::Wrapper(w) => {
                    if node.trigger.fires(tick) {
                        latest.insert(i, w.acquire(web.as_ref()));
                    }
                }
                Component::Integrate { root } => {
                    let inputs: Vec<Element> = node
                        .inputs
                        .iter()
                        .filter_map(|j| latest.get(j).cloned())
                        .collect();
                    if !inputs.is_empty() {
                        latest.insert(i, integrate(root, &inputs));
                    }
                }
                Component::Transform(f) => {
                    let inputs: Vec<Element> = node
                        .inputs
                        .iter()
                        .filter_map(|j| latest.get(j).cloned())
                        .collect();
                    if !inputs.is_empty() {
                        if let Some(out) = f(&inputs) {
                            latest.insert(i, out);
                        }
                    }
                }
                Component::Deliver {
                    channel,
                    only_on_change,
                } => {
                    let inputs: Vec<Element> = node
                        .inputs
                        .iter()
                        .filter_map(|j| latest.get(j).cloned())
                        .collect();
                    if let Some(doc) = inputs.first() {
                        let body = lixto_xml::to_string(doc);
                        let fire = if *only_on_change {
                            change.entry(i).or_default().changed(&body)
                        } else {
                            true
                        };
                        if fire {
                            delivered.push((
                                tick,
                                DeliveredMessage {
                                    channel: channel.clone(),
                                    body,
                                },
                            ));
                        }
                    }
                }
            }
        }
    }
    delivered
}

/// Handle over a running threaded pipe: an explicit shutdown signal plus
/// the worker join handles.
///
/// Before this existed, a threaded pipe could only be torn down by
/// letting the wrappers exhaust their rounds and the channel disconnects
/// cascade downstream — with a slow source that could take arbitrarily
/// long. The controller makes teardown deterministic: [`request_stop`]
/// flips a flag every wrapper checks between acquisitions, and
/// [`shutdown`] additionally joins every component thread.
///
/// [`request_stop`]: PipeController::request_stop
/// [`shutdown`]: PipeController::shutdown
pub struct PipeController {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl PipeController {
    /// Signal every wrapper to stop after its current acquisition. The
    /// disconnects then cascade through the interior components.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Number of component threads.
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Signal stop and join every component thread; returns how many
    /// threads were joined. Callers must keep draining (or drop) the
    /// delivery receiver so deliverers are never blocked on a full
    /// channel.
    pub fn shutdown(self) -> usize {
        self.request_stop();
        let n = self.handles.len();
        for h in self.handles {
            let _ = h.join();
        }
        n
    }
}

/// Streaming execution: each component runs on its own thread; wrappers
/// push `rounds` acquisitions downstream; deliverers send to the returned
/// channel. The web is shared and static for the run.
///
/// Threads are detached; the run ends when the wrappers exhaust their
/// rounds. Use [`run_threaded_controlled`] to stop a pipe early and join
/// its threads.
pub fn run_threaded(
    pipe: InfoPipe,
    rounds: usize,
    web: impl WebSource + Send + Sync + 'static,
) -> Receiver<DeliveredMessage> {
    let (rx, _controller) = run_threaded_controlled(pipe, rounds, web);
    // Dropping the controller detaches the threads (legacy behavior).
    rx
}

/// [`run_threaded`], returning a [`PipeController`] for explicit,
/// deterministic shutdown alongside the delivery channel.
pub fn run_threaded_controlled(
    pipe: InfoPipe,
    rounds: usize,
    web: impl WebSource + Send + Sync + 'static,
) -> (Receiver<DeliveredMessage>, PipeController) {
    let order = pipe.topo_order().expect("pipe must be acyclic");
    let n = pipe.nodes.len();
    // Channels: one per edge (producer index -> consumers).
    let mut senders: Vec<Vec<Sender<Element>>> = (0..n).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Receiver<Element>>> = (0..n).map(|_| Vec::new()).collect();
    for (j, node) in pipe.nodes.iter().enumerate() {
        for &i in &node.inputs {
            let (tx, rx) = bounded::<Element>(16);
            senders[i].push(tx);
            receivers[j].push(rx);
        }
    }
    let (dtx, drx) = bounded::<DeliveredMessage>(1024);
    let web = Arc::new(web);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(n);

    // Spawn in reverse topological order so consumers exist first (not
    // strictly necessary with channels, but tidy).
    let mut nodes: Vec<Option<crate::pipe::PipeNode>> = pipe.nodes.into_iter().map(Some).collect();
    for &i in order.iter().rev() {
        let node = nodes[i].take().expect("each node spawned once");
        let outs = std::mem::take(&mut senders[i]);
        let ins = std::mem::take(&mut receivers[i]);
        let dtx = dtx.clone();
        let web = web.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            match node.component {
                Component::Wrapper(w) => {
                    for _ in 0..rounds {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let doc = w.acquire(web.as_ref());
                        for o in &outs {
                            if o.send(doc.clone()).is_err() {
                                return;
                            }
                        }
                    }
                }
                Component::Integrate { root } => {
                    // One output per synchronized round of inputs.
                    'rounds: loop {
                        let mut batch = Vec::new();
                        for rx in &ins {
                            match rx.recv() {
                                Ok(d) => batch.push(d),
                                Err(_) => break 'rounds,
                            }
                        }
                        let out = integrate(&root, &batch);
                        for o in &outs {
                            if o.send(out.clone()).is_err() {
                                return;
                            }
                        }
                    }
                }
                Component::Transform(f) => loop {
                    let mut batch = Vec::new();
                    for rx in &ins {
                        match rx.recv() {
                            Ok(d) => batch.push(d),
                            Err(_) => return,
                        }
                    }
                    if let Some(out) = f(&batch) {
                        for o in &outs {
                            if o.send(out.clone()).is_err() {
                                return;
                            }
                        }
                    }
                },
                Component::Deliver {
                    channel,
                    only_on_change,
                } => {
                    let mut detector = ChangeDetector::default();
                    loop {
                        let mut batch = Vec::new();
                        for rx in &ins {
                            match rx.recv() {
                                Ok(d) => batch.push(d),
                                Err(_) => return,
                            }
                        }
                        if let Some(doc) = batch.first() {
                            let body = lixto_xml::to_string(doc);
                            if (!only_on_change || detector.changed(&body))
                                && dtx
                                    .send(DeliveredMessage {
                                        channel: channel.clone(),
                                        body,
                                    })
                                    .is_err()
                            {
                                return;
                            }
                        }
                    }
                }
            }
        }));
    }
    drop(dtx);
    (drx, PipeController { stop, handles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::WrapperComponent;
    use crate::trigger::Trigger;
    use lixto_core::XmlDesign;
    use lixto_elog::parse_program;

    /// Books pipeline of Figure 7: two shop wrappers → integrator →
    /// transformer (cheap books) → deliverer.
    fn books_pipe() -> InfoPipe {
        let mut pipe = InfoPipe::new();
        let a = pipe.source(
            Component::Wrapper(WrapperComponent {
                program: parse_program(lixto_workloads::books::SHOP_A_WRAPPER).unwrap(),
                design: XmlDesign::new().root("shopA"),
            }),
            Trigger::EveryTick,
        );
        let b = pipe.source(
            Component::Wrapper(WrapperComponent {
                program: parse_program(lixto_workloads::books::SHOP_B_WRAPPER).unwrap(),
                design: XmlDesign::new().root("shopB"),
            }),
            Trigger::EveryTick,
        );
        let merged = pipe.stage(
            Component::Integrate {
                root: "books".into(),
            },
            vec![a, b],
        );
        let filtered = pipe.stage(
            Component::Transform(Box::new(|inputs: &[Element]| {
                let mut out = Element::new("books");
                for e in inputs[0].children_named("book") {
                    out.push_element(e.clone());
                }
                Some(out)
            })),
            vec![merged],
        );
        pipe.stage(
            Component::Deliver {
                channel: "portal".into(),
                only_on_change: false,
            },
            vec![filtered],
        );
        pipe
    }

    #[test]
    fn deterministic_books_pipeline() {
        let pipe = books_pipe();
        let delivered = run_ticks(&pipe, 2, &|_tick| {
            Box::new(lixto_workloads::books::site(5, 4).0)
        });
        assert_eq!(delivered.len(), 2);
        let doc = lixto_xml::parse(&delivered[0].1.body).unwrap();
        // 4 books from each shop.
        assert_eq!(doc.children_named("book").count(), 8);
    }

    #[test]
    fn threaded_books_pipeline_streams() {
        let pipe = books_pipe();
        let rx = run_threaded(pipe, 3, lixto_workloads::books::site(5, 2).0);
        let got: Vec<_> = rx.iter().collect();
        assert_eq!(got.len(), 3);
        for m in got {
            assert_eq!(m.channel, "portal");
            let doc = lixto_xml::parse(&m.body).unwrap();
            assert_eq!(doc.children_named("book").count(), 4);
        }
    }

    /// A web source whose fetches take real wall time — stands in for a
    /// slow remote site.
    struct SlowWeb {
        inner: lixto_elog::StaticWeb,
        delay: std::time::Duration,
    }

    impl lixto_elog::WebSource for SlowWeb {
        fn fetch(&self, url: &str) -> Option<String> {
            std::thread::sleep(self.delay);
            self.inner.fetch(url)
        }
    }

    #[test]
    fn controlled_shutdown_terminates_slow_source_deterministically() {
        // 10_000 rounds at ≥20ms per acquisition would run for minutes;
        // the explicit stop signal must end the pipe after the in-flight
        // round instead of waiting for channel-drop teardown.
        let pipe = books_pipe();
        let web = SlowWeb {
            inner: lixto_workloads::books::site(5, 2).0,
            delay: std::time::Duration::from_millis(20),
        };
        let (rx, controller) = run_threaded_controlled(pipe, 10_000, web);
        assert_eq!(controller.thread_count(), 5);
        // Let at least one delivery through, then stop.
        let first = rx.recv().expect("one delivery before shutdown");
        assert_eq!(first.channel, "portal");
        let start = std::time::Instant::now();
        controller.request_stop();
        // Keep draining so no deliverer can block on a full channel; the
        // iterator ends once every component thread has exited.
        let drained: Vec<_> = rx.iter().collect();
        let joined = controller.shutdown();
        assert_eq!(joined, 5);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "shutdown took {:?}",
            start.elapsed()
        );
        // Far fewer than the requested rounds were executed.
        assert!(drained.len() < 100, "pipe kept running after stop");
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let pipe = books_pipe();
        let web = SlowWeb {
            inner: lixto_workloads::books::site(5, 2).0,
            delay: std::time::Duration::from_millis(10),
        };
        let (rx, controller) = run_threaded_controlled(pipe, 10_000, web);
        rx.recv().expect("one delivery before shutdown");
        // Drain concurrently so deliverers never block while we join.
        let drainer = std::thread::spawn(move || rx.iter().count());
        let joined = controller.shutdown();
        assert_eq!(joined, 5, "every component thread joined");
        drainer.join().unwrap();
    }

    #[test]
    fn change_detection_suppresses_unchanged_flights() {
        let mut pipe = InfoPipe::new();
        let w = pipe.source(
            Component::Wrapper(WrapperComponent {
                program: parse_program(lixto_workloads::flights::FLIGHT_WRAPPER).unwrap(),
                design: XmlDesign::new().root("flights"),
            }),
            Trigger::EveryTick,
        );
        pipe.stage(
            Component::Deliver {
                channel: "sms".into(),
                only_on_change: true,
            },
            vec![w],
        );
        // Web identical at ticks 0–1, then jumps at ticks 2–3 (status
        // tick 5 advances every flight regardless of its speed 1..3).
        let delivered = run_ticks(&pipe, 4, &|tick| {
            Box::new(lixto_workloads::flights::site(
                11,
                3,
                if tick < 2 { 0 } else { 5 },
            ))
        });
        // tick 0: first delivery; tick 1: same page, suppressed; tick 2:
        // statuses moved → delivery; tick 3: suppressed.
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].0, 0);
        assert_eq!(delivered[1].0, 2);
    }
}
