//! Pipeline components.
//!
//! "Each stage within the Transformation Server accepts XML documents
//! (except for the wrapper component, which accepts HTML documents),
//! performs its specific task, and produces an XML document as result."

use lixto_core::{to_xml, XmlDesign};
use lixto_elog::{ElogProgram, Extractor, WebSource};
use lixto_xml::Element;

/// A message delivered at a pipe boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredMessage {
    /// The deliverer's channel name (stands in for SMS/HTTP/RMI).
    pub channel: String,
    /// The payload (serialized XML).
    pub body: String,
}

/// An arbitrary XML→XML transformation, boxed for storage in a pipe node.
pub type TransformFn = Box<dyn Fn(&[Element]) -> Option<Element> + Send>;

/// A pipeline component: consumes zero or more input XML documents and
/// produces one output document (or None to emit nothing this round).
pub enum Component {
    /// Source component: runs an Elog wrapper against the web and emits
    /// the wrapped XML. Self-activating (a boundary component).
    Wrapper(WrapperComponent),
    /// Integrator: merges the children of all inputs under one root
    /// ("integrate it").
    Integrate {
        /// Output document element name.
        root: String,
    },
    /// Transformer: an arbitrary XML→XML function ("transform it").
    Transform(TransformFn),
    /// Deliverer: serializes the input for an output channel; with
    /// `only_on_change`, suppresses deliveries identical to the previous
    /// one (§6.2).
    Deliver {
        /// Channel name.
        channel: String,
        /// Deliver only when the payload changed.
        only_on_change: bool,
    },
}

/// The wrapper (source) component.
pub struct WrapperComponent {
    /// The Elog program to run.
    pub program: ElogProgram,
    /// Output mapping.
    pub design: XmlDesign,
}

impl WrapperComponent {
    /// Run the wrapper against `web` and return the XML document.
    pub fn acquire(&self, web: &dyn WebSource) -> Element {
        let result = Extractor::new(self.program.clone(), web).run();
        to_xml(&result, &self.design)
    }
}

/// Merge inputs: a new element named `root` whose children are the
/// concatenated children of every input, in input order.
pub fn integrate(root: &str, inputs: &[Element]) -> Element {
    let mut out = Element::new(root);
    for i in inputs {
        for c in &i.children {
            out.children.push(c.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrate_merges_children_in_order() {
        let a = Element::new("a").with_child_text("x", "1");
        let b = Element::new("b")
            .with_child_text("y", "2")
            .with_child_text("z", "3");
        let m = integrate("all", &[a, b]);
        assert_eq!(m.name, "all");
        assert_eq!(m.child_elements().count(), 3);
        assert_eq!(m.child_text("x"), Some("1"));
        assert_eq!(m.child_text("z"), Some("3"));
    }

    #[test]
    fn wrapper_component_acquires_xml() {
        let (web, records) = lixto_workloads::ebay::site(8, 3);
        let w = WrapperComponent {
            program: lixto_elog::parse_program(lixto_elog::EBAY_PROGRAM).unwrap(),
            design: XmlDesign::new().auxiliary("tableseq").root("auctions"),
        };
        let xml = w.acquire(&web);
        assert_eq!(xml.children_named("record").count(), records.len());
    }
}
