//! The information pipe: a DAG of components with "very complex
//! unidirectional information flows" (Figure 7).

use crate::component::Component;
use crate::trigger::Trigger;

/// Index of a component in a pipe.
pub type NodeId = usize;

/// One node of the pipe.
pub struct PipeNode {
    /// The component.
    pub component: Component,
    /// Upstream inputs, in order.
    pub inputs: Vec<NodeId>,
    /// Activation strategy (only meaningful for boundary components —
    /// wrappers activate themselves; deliverers fire when inputs arrive).
    pub trigger: Trigger,
}

/// An information pipe.
#[derive(Default)]
pub struct InfoPipe {
    /// The nodes; edges are encoded in `inputs`.
    pub nodes: Vec<PipeNode>,
}

impl InfoPipe {
    /// Empty pipe.
    pub fn new() -> InfoPipe {
        InfoPipe::default()
    }

    /// Add a source (wrapper) component with a trigger strategy.
    pub fn source(&mut self, c: Component, trigger: Trigger) -> NodeId {
        self.nodes.push(PipeNode {
            component: c,
            inputs: vec![],
            trigger,
        });
        self.nodes.len() - 1
    }

    /// Add an interior/boundary component fed by `inputs`.
    pub fn stage(&mut self, c: Component, inputs: Vec<NodeId>) -> NodeId {
        self.nodes.push(PipeNode {
            component: c,
            inputs,
            trigger: Trigger::Never,
        });
        self.nodes.len() - 1
    }

    /// Topological order (nodes are added upstream-first in practice, but
    /// integration pipes may interleave; returns None on a cycle).
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for node in &self.nodes {
            for &_i in &node.inputs {
                // edge i -> node
            }
        }
        for (j, node) in self.nodes.iter().enumerate() {
            let _ = j;
            for &_i in &node.inputs {}
        }
        let mut outs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, node) in self.nodes.iter().enumerate() {
            for &i in &node.inputs {
                outs[i].push(j);
                indeg[j] += 1;
            }
        }
        let mut q: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = q.pop() {
            order.push(u);
            for &w in &outs[u] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    q.push(w);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Component {
        Component::Integrate {
            root: "x".to_string(),
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut p = InfoPipe::new();
        let a = p.source(dummy(), Trigger::EveryTick);
        let b = p.source(dummy(), Trigger::EveryTick);
        let m = p.stage(dummy(), vec![a, b]);
        let d = p.stage(dummy(), vec![m]);
        let order = p.topo_order().unwrap();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(a) < pos(m));
        assert!(pos(b) < pos(m));
        assert!(pos(m) < pos(d));
    }

    #[test]
    fn cycle_detected() {
        let mut p = InfoPipe::new();
        let a = p.source(dummy(), Trigger::EveryTick);
        let b = p.stage(dummy(), vec![a]);
        p.nodes[a].inputs.push(b); // make a cycle
        assert!(p.topo_order().is_none());
    }
}
