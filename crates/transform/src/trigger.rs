//! Activation strategies and change detection.

/// When a boundary component activates itself ("boundary components have
/// the ability to activate themselves according to a user specified
/// strategy"). Periods are in scheduler ticks — the §6.1 groups (radio
/// seconds / chart hours / lyrics days) map to periods 1 / n / m.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Activate every tick.
    EveryTick,
    /// Activate every `n` ticks (tick % n == 0).
    Every(u64),
    /// Never self-activate (interior components).
    Never,
}

impl Trigger {
    /// Does the component fire at `tick`?
    pub fn fires(self, tick: u64) -> bool {
        match self {
            Trigger::EveryTick => true,
            Trigger::Every(n) => n != 0 && tick.is_multiple_of(n),
            Trigger::Never => false,
        }
    }
}

/// Deliver-only-on-change state (§6.2: "only if the status changed between
/// consecutive requests").
#[derive(Debug, Default, Clone)]
pub struct ChangeDetector {
    last: Option<Payload>,
}

/// What the detector last saw: a textual payload or a word-sized content
/// address. A transition between the two kinds counts as a change (the
/// kinds address different value spaces, so equality across them is
/// meaningless).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Payload {
    Text(String),
    Word(u64),
}

impl ChangeDetector {
    /// Record `payload`; true iff it differs from the previous one.
    pub fn changed(&mut self, payload: &str) -> bool {
        if matches!(&self.last, Some(Payload::Text(last)) if last == payload) {
            false
        } else {
            self.last = Some(Payload::Text(payload.to_string()));
            true
        }
    }

    /// Word-sized variant of [`changed`](ChangeDetector::changed) for hot
    /// paths that already hold a content address: compares and stores the
    /// raw `u64` — no formatting, no allocation, ever.
    pub fn changed_u64(&mut self, payload: u64) -> bool {
        if self.last == Some(Payload::Word(payload)) {
            false
        } else {
            self.last = Some(Payload::Word(payload));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_schedules() {
        assert!(Trigger::EveryTick.fires(0));
        assert!(Trigger::EveryTick.fires(7));
        assert!(Trigger::Every(3).fires(0));
        assert!(!Trigger::Every(3).fires(2));
        assert!(Trigger::Every(3).fires(6));
        assert!(!Trigger::Never.fires(0));
        assert!(!Trigger::Every(0).fires(0));
    }

    #[test]
    fn change_detection() {
        let mut d = ChangeDetector::default();
        assert!(d.changed("a"));
        assert!(!d.changed("a"));
        assert!(d.changed("b"));
        assert!(d.changed("a"));
    }

    #[test]
    fn change_detection_word_sized() {
        let mut d = ChangeDetector::default();
        assert!(d.changed_u64(7));
        assert!(!d.changed_u64(7));
        assert!(d.changed_u64(8));
        assert!(d.changed_u64(7));
    }

    #[test]
    fn change_detection_kind_transition_counts_as_change() {
        let mut d = ChangeDetector::default();
        assert!(d.changed("7"));
        // Same digits, different value space: a change both ways.
        assert!(d.changed_u64(7));
        assert!(!d.changed_u64(7));
        assert!(d.changed("7"));
    }
}
