//! # lixto-transform
//!
//! The Lixto Transformation Server (Section 5 of the PODS 2004 paper).
//!
//! "The overall task of information processing is composed into stages
//! that can be used as building blocks for assembling an information
//! processing pipeline which we call *information pipe*. The stages are to
//! (1) acquire the required content from the source locations; (2)
//! integrate it, (3) transform it, and (4) deliver results to the end
//! users. […] The actual data flow within the Transformation Server is
//! realized by handing over XML documents."
//!
//! * [`component`] — the four component kinds (source/wrapper,
//!   integrator, transformer, deliverer), each mapping XML to XML;
//! * [`pipe`] — the information pipe: a DAG of components; "components
//!   which are not on the boundaries of the network are only activated by
//!   their neighboring components. Boundary components have the ability to
//!   activate themselves according to a user specified strategy";
//! * [`runtime`] — a threaded streaming runtime over crossbeam channels,
//!   plus a deterministic single-threaded scheduler for tests;
//! * [`trigger`] — activation strategies (every tick / every n ticks) and
//!   change detection (the §6.2 flight service "sends the actual flight
//!   status to the user …, but only if the status changed between
//!   consecutive requests");
//! * [`diff`] — instance-level deltas between consecutive extractions
//!   (added/removed/changed pattern instances), the payload the
//!   continuous-delivery layer ships when the detector fires.

#![forbid(unsafe_code)]

pub mod component;
pub mod diff;
pub mod pipe;
pub mod runtime;
pub mod trigger;

pub use component::{Component, DeliveredMessage, WrapperComponent};
pub use diff::{
    diff_snapshots, ChangedEntry, DiffEntry, ExtractionSnapshot, InstanceDiff, SnapshotInstance,
};
pub use pipe::{InfoPipe, NodeId as PipeNodeId};
pub use runtime::{run_threaded, run_threaded_controlled, run_ticks, PipeController};
pub use trigger::{ChangeDetector, Trigger};
