//! # lixto-bench
//!
//! Benchmark harness: regenerates every figure and testable claim of the
//! paper (see DESIGN.md §4 for the experiment index, EXPERIMENTS.md for
//! recorded results). Criterion benches live in `benches/`; the
//! `experiments` binary prints the paper-shaped tables for E1…E14.

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use lixto_core::XmlDesign;
use lixto_server::WrapperRegistry;
use lixto_workloads::traffic::{self, WrapperProfile};

/// The XML design a workload wrapper profile declares (root element plus
/// auxiliary patterns).
pub fn workload_design(profile: &WrapperProfile) -> XmlDesign {
    let mut design = XmlDesign::new().root(profile.root);
    for aux in profile.auxiliary {
        design = design.auxiliary(aux);
    }
    design
}

/// A registry with every workload wrapper profile registered — the
/// shared setup of the serving-layer examples, tests, benches and
/// experiments.
pub fn workload_registry() -> Arc<WrapperRegistry> {
    let registry = Arc::new(WrapperRegistry::new());
    for p in traffic::profiles() {
        registry
            .register_source(p.name, p.program, workload_design(&p))
            .expect("workload wrapper compiles");
    }
    registry
}

/// Median wall time of `f` over `reps` runs, in microseconds.
pub fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A right-aligned table printer for the experiment reports.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>w$} |", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for r in rows {
        println!("{}", line(r));
    }
}
