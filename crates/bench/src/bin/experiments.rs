//! The experiment runner: prints the paper-shaped table/series for every
//! experiment E1…E14 of DESIGN.md §4. Run with `--release`:
//!
//! ```text
//! cargo run --release -p lixto-bench --bin experiments          # all
//! cargo run --release -p lixto-bench --bin experiments e4 e8    # a subset
//! ```

use lixto_bench::{print_table, time_us};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    if want("e1") {
        e1_monadic_datalog_linear();
    }
    if want("e2") {
        e2_tmnf_translation();
    }
    if want("e3") {
        e3_general_vs_tree();
    }
    if want("e4") {
        e4_xpath_exponential_vs_ptime();
    }
    if want("e5") {
        e5_core_xpath_linear();
    }
    if want("e6") {
        e6_negation_ablation();
    }
    if want("e7") {
        e7_xpath_to_tmnf();
    }
    if want("e8") {
        e8_cq_dichotomy();
    }
    if want("e9") {
        e9_ebay_wrapper();
    }
    if want("e10") {
        e10_robustness();
    }
    if want("e11") {
        e11_induction_vs_visual();
    }
    if want("e12") {
        e12_pipeline();
    }
    if want("e13") {
        e13_now_playing_and_flights();
    }
    if want("e13_server") {
        e13_server_throughput();
    }
    if want("e14") {
        e14_mso_equivalence();
    }
    if want("e14_http") {
        e14_http_throughput();
    }
    if want("e15_plan") {
        e15_plan_compile();
    }
    if want("e16_multiplex") {
        e16_multiplex();
    }
    if want("e17_persistence") {
        e17_persistence();
    }
    if want("e18_observability") {
        e18_observability();
    }
    if want("e19_watchdog") {
        e19_watchdog();
    }
    if want("e20_optimizer") {
        e20_optimizer();
    }
    if want("e21_watch") {
        e21_watch();
    }
}

/// A deep/wide synthetic document of ~n nodes (nested lists of tables).
fn synth_doc(n: usize) -> lixto_tree::Document {
    let mut html = String::with_capacity(n * 24);
    html.push_str("<html><body>");
    let rows = n / 4;
    for i in 0..rows {
        if i % 7 == 0 {
            html.push_str("<table>");
        }
        html.push_str(&format!("<tr><td><i>x{i}</i></td></tr>"));
        if i % 7 == 6 {
            html.push_str("</table>");
        }
    }
    html.push_str("</body></html>");
    lixto_html::parse(&html)
}

fn e1_monadic_datalog_linear() {
    // Theorem 2.4: O(|P|·|dom|). Fixed program, growing document; fixed
    // document, growing program.
    let program = lixto_datalog::parse_program(
        r#"italic(X) :- label(X, "i").
           italic(X) :- italic(X0), firstchild(X0, X).
           italic(X) :- italic(X0), nextsibling(X0, X).
           cell(X) :- label(X, "td").
           marked(X) :- cell(X), italic(X)."#,
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut base = None;
    for n in [4_000usize, 16_000, 64_000, 256_000] {
        let doc = synth_doc(n);
        let us = time_us(5, || {
            let r = lixto_datalog::MonadicEvaluator::new(&doc)
                .eval(&program)
                .unwrap();
            std::hint::black_box(r);
        });
        let per_node = us / doc.len() as f64;
        let rel = *base.get_or_insert(per_node);
        rows.push(vec![
            doc.len().to_string(),
            format!("{us:.0}"),
            format!("{:.3}", per_node),
            format!("{:.2}x", per_node / rel),
        ]);
    }
    print_table(
        "E1a — monadic datalog over trees: time vs |dom| (Theorem 2.4; expect flat µs/node)",
        &["nodes", "µs", "µs/node", "rel"],
        &rows,
    );

    let doc = synth_doc(32_000);
    let mut rows = Vec::new();
    let mut base = None;
    for k in [8usize, 32, 128, 512] {
        // k chained copy rules.
        let mut src = String::from("p0(X) :- label(X, \"td\").\n");
        for i in 1..k {
            src.push_str(&format!("p{i}(X) :- p{}(X0), nextsibling(X0, X).\n", i - 1));
        }
        let program = lixto_datalog::parse_program(&src).unwrap();
        let us = time_us(3, || {
            let r = lixto_datalog::MonadicEvaluator::new(&doc)
                .eval(&program)
                .unwrap();
            std::hint::black_box(r);
        });
        let per_rule = us / k as f64;
        let rel = *base.get_or_insert(per_rule);
        rows.push(vec![
            k.to_string(),
            format!("{us:.0}"),
            format!("{per_rule:.1}"),
            format!("{:.2}x", per_rule / rel),
        ]);
    }
    print_table(
        "E1b — monadic datalog over trees: time vs |P| (expect flat µs/rule)",
        &["rules", "µs", "µs/rule", "rel"],
        &rows,
    );
}

fn e2_tmnf_translation() {
    // Theorem 2.7: TMNF translation in O(|P|).
    let mut rows = Vec::new();
    let mut base = None;
    for k in [8usize, 64, 512, 4096] {
        let mut src = String::new();
        for i in 0..k {
            src.push_str(&format!(
                "q{i}(X) :- label(R, \"tr\"), child(R, C), label(C, \"td\"), child(C, X).\n"
            ));
        }
        let program = lixto_datalog::parse_program(&src).unwrap();
        let mut out_size = 0;
        let us = time_us(3, || {
            let t = lixto_datalog::tmnf::to_tmnf(
                &program,
                lixto_datalog::tmnf::TmnfOptions {
                    eliminate_child: true,
                },
            )
            .unwrap();
            out_size = t.program.size();
            std::hint::black_box(&t);
        });
        let per_rule = us / k as f64;
        let rel = *base.get_or_insert(per_rule);
        rows.push(vec![
            k.to_string(),
            program.size().to_string(),
            out_size.to_string(),
            format!("{us:.0}"),
            format!("{:.2}x", per_rule / rel),
        ]);
    }
    print_table(
        "E2 — TMNF rewriting: linear time and linear output size (Theorem 2.7)",
        &["rules", "|P| in", "|P'| out", "µs", "µs/rule rel"],
        &rows,
    );
}

fn e3_general_vs_tree() {
    // Prop 2.3 vs Thm 2.4: one rule = a conjunctive query; over arbitrary
    // structures evaluation explodes with rule size, over trees it stays
    // linear.
    let mut rows = Vec::new();
    for k in [8usize, 10, 12, 14] {
        // 3-coloring structure; body = a k-chain of "different color"
        // constraints followed by a K4 (which is NOT 3-colorable). The
        // nested-loop join enumerates all ~2^k chain colorings before each
        // K4 failure — the NP-side blow-up of Proposition 2.3.
        let mut db = lixto_datalog::Database::new();
        for a in ["c0", "c1", "c2"] {
            for b in ["c0", "c1", "c2"] {
                if a != b {
                    db.add_fact("ok", &[a, b]);
                }
            }
        }
        db.add_fact("any", &["c0"]);
        let mut body = vec!["any(X0)".to_string()];
        for i in 0..k {
            body.push(format!("ok(X{i}, X{})", i + 1));
        }
        // K4 on Xk, Y1, Y2, Y3 — unsatisfiable with 3 colors.
        for (a, b) in [("Y1", "Y2"), ("Y1", "Y3"), ("Y2", "Y3")] {
            body.push(format!("ok({a}, {b})"));
        }
        for y in ["Y1", "Y2", "Y3"] {
            body.push(format!("ok(X{k}, {y})"));
        }
        let src = format!("sat(X0) :- {}.", body.join(", "));
        let program = lixto_datalog::parse_program(&src).unwrap();
        let us = time_us(3, || {
            let r = lixto_datalog::seminaive::eval(&db, &program).unwrap();
            std::hint::black_box(r.count("sat"));
        });
        // Trees: a same-size chain program over a 10k-node doc.
        let doc = synth_doc(10_000);
        let mut src2 = String::from("t0(X) :- label(X, \"td\").\n");
        for i in 1..=k {
            src2.push_str(&format!("t{i}(X) :- t{}(X0), child(X0, X).\n", i - 1));
        }
        let program2 = lixto_datalog::parse_program(&src2).unwrap();
        let tree_us = time_us(3, || {
            let r = lixto_datalog::MonadicEvaluator::new(&doc)
                .eval(&program2)
                .unwrap();
            std::hint::black_box(r);
        });
        rows.push(vec![
            k.to_string(),
            format!("{us:.0}"),
            format!("{tree_us:.0}"),
        ]);
    }
    print_table(
        "E3 — combined complexity: general structures (NP, Prop 2.3) vs trees (linear, Thm 2.4)",
        &["query size k", "general µs (grows)", "tree µs (flat-ish)"],
        &rows,
    );
}

fn e4_xpath_exponential_vs_ptime() {
    // Theorem 4.1 + [15]: naive 2002-style evaluation explodes; the
    // polynomial evaluator doesn't.
    let doc = lixto_html::parse(&format!("<div>{}</div>", "<a>x</a>".repeat(4)));
    let mut rows = Vec::new();
    for depth in [4usize, 6, 8, 10, 12] {
        let q = lixto_xpath::parse(&lixto_xpath::naive::pathological_query(depth)).unwrap();
        let naive_us = time_us(3, || {
            let r = lixto_xpath::naive::eval_naive(&doc, &q);
            std::hint::black_box(r.len());
        });
        let cvt_us = time_us(3, || {
            let r = lixto_xpath::cvt::eval(&doc, &q).unwrap();
            std::hint::black_box(r.len());
        });
        rows.push(vec![
            depth.to_string(),
            format!("{naive_us:.0}"),
            format!("{cvt_us:.0}"),
        ]);
    }
    print_table(
        "E4 — XPath: naive per-context evaluation vs polynomial evaluation (Theorem 4.1)",
        &["query depth", "naive µs (exponential)", "poly µs (flat)"],
        &rows,
    );
}

fn e5_core_xpath_linear() {
    let q = lixto_xpath::parse("//tr[td/i and not(th)]/td").unwrap();
    let mut rows = Vec::new();
    let mut base = None;
    for n in [4_000usize, 16_000, 64_000, 256_000] {
        let doc = synth_doc(n);
        let us = time_us(5, || {
            let r = lixto_xpath::core::eval_core(&doc, &q).unwrap();
            std::hint::black_box(r.len());
        });
        let per_node = us / doc.len() as f64;
        let rel = *base.get_or_insert(per_node);
        rows.push(vec![
            doc.len().to_string(),
            format!("{us:.0}"),
            format!("{:.2}x", per_node / rel),
        ]);
    }
    print_table(
        "E5 — Core XPath: linear in document size ([15])",
        &["nodes", "µs", "µs/node rel"],
        &rows,
    );
}

fn e6_negation_ablation() {
    // Theorems 4.2/4.3: negation forces complement sweeps; the positive
    // fragment avoids them.
    let doc = synth_doc(64_000);
    let mut rows = Vec::new();
    for negs in [0usize, 1, 2, 4] {
        let mut pred = String::from("td/i");
        for _ in 0..negs {
            pred = format!("not({pred})");
        }
        let q = lixto_xpath::parse(&format!("//tr[{pred}]")).unwrap();
        let us = time_us(5, || {
            let r = lixto_xpath::core::eval_core(&doc, &q).unwrap();
            std::hint::black_box(r.len());
        });
        rows.push(vec![
            negs.to_string(),
            lixto_xpath::positive::is_positive_core(&q).to_string(),
            format!("{us:.0}"),
        ]);
    }
    print_table(
        "E6 — negation ablation in Core XPath predicates (positive fragment = Theorem 4.3)",
        &["not() count", "positive?", "µs"],
        &rows,
    );
}

fn e7_xpath_to_tmnf() {
    // Theorem 4.6: linear translation, equivalent answers.
    let doc = synth_doc(8_000);
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let q = lixto_xpath::parse(&format!("//tr{}", "[td]/td/parent::tr".repeat(k))).unwrap();
        let t = lixto_xpath::to_tmnf::core_to_datalog(&q).unwrap();
        let trans_us = time_us(5, || {
            let t = lixto_xpath::to_tmnf::core_to_datalog(&q).unwrap();
            std::hint::black_box(t.program.size());
        });
        let direct = lixto_xpath::core::eval_core(&doc, &q).unwrap();
        let translated = lixto_xpath::to_tmnf::eval_translated(&doc, &t).unwrap();
        rows.push(vec![
            q.size().to_string(),
            t.program.size().to_string(),
            format!("{trans_us:.0}"),
            (direct == translated).to_string(),
        ]);
    }
    print_table(
        "E7 — Core XPath → TMNF: linear translation, equal answers (Theorem 4.6)",
        &["|Q|", "|P| out", "translate µs", "answers equal"],
        &rows,
    );
}

fn e8_cq_dichotomy() {
    // Figure 6 dichotomy: NP-hard gadgets over {Child, Child+} vs
    // same-size acyclic queries over a tractable axis set.
    use lixto_cq::{generate, generic, yannakakis, CqAxis};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rows = Vec::new();
    for k in [3usize, 4, 5, 6] {
        let (doc, cq) = generate::hard_instance(k, 6);
        let hard_nodes = generic::count_search_nodes(&doc, &cq);
        let hard_us = time_us(3, || {
            std::hint::black_box(generic::eval_boolean(&doc, &cq));
        });
        let mut rng = StdRng::seed_from_u64(k as u64);
        let doc2 = generate::random_tree(&mut rng, doc.len(), &["s", "d", "t"]);
        let cq2 = generate::random_acyclic_cq(
            &mut rng,
            1 + 2 * k,
            &[CqAxis::Child, CqAxis::NextSiblingPlus],
            &["s", "d", "t"],
        );
        let easy_us = time_us(3, || {
            std::hint::black_box(yannakakis::eval_boolean(&doc2, &cq2).unwrap());
        });
        rows.push(vec![
            (1 + 2 * k).to_string(),
            hard_nodes.to_string(),
            format!("{hard_us:.0}"),
            format!("{easy_us:.0}"),
        ]);
    }
    print_table(
        "E8 — CQ dichotomy: {Child,Child+} gadgets (NP-hard) vs tractable acyclic CQs ([18], Fig. 6)",
        &["vars", "search nodes", "NP-side µs", "tractable µs"],
        &rows,
    );
}

fn e9_ebay_wrapper() {
    // Figure 5 end to end: accuracy and throughput.
    let program = lixto_elog::parse_program(lixto_elog::EBAY_PROGRAM).unwrap();
    let mut rows = Vec::new();
    for n in [10usize, 50, 250] {
        let (web, records) = lixto_workloads::ebay::site(7, n);
        let mut ok = false;
        let us = time_us(3, || {
            let result = lixto_elog::Extractor::new(program.clone(), &web).run();
            ok = result.texts_of("itemdes").len() == records.len()
                && result.texts_of("price").len() == records.len()
                && result.texts_of("bids").len() == records.len();
            std::hint::black_box(result.base.len());
        });
        rows.push(vec![
            n.to_string(),
            ok.to_string(),
            format!("{us:.0}"),
            format!("{:.1}", n as f64 / (us / 1e6) / 1000.0),
        ]);
    }
    print_table(
        "E9 — the Figure 5 eBay wrapper: perfect extraction, throughput",
        &["records", "all fields correct", "µs", "krecords/s"],
        &rows,
    );
}

fn e10_robustness() {
    use lixto_workloads::perturb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let variants = 200;
    let (_, records) = lixto_workloads::ebay::site(3, 6);
    let page = lixto_workloads::ebay::listing_page(&records);
    let fig5 = lixto_elog::parse_program(lixto_elog::EBAY_PROGRAM).unwrap();
    let robust = lixto_elog::parse_program(lixto_workloads::ebay::EBAY_ROBUST_PROGRAM).unwrap();
    let xq = lixto_xpath::parse("/html/body/table/tr/td/a").unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let (mut s_fig5, mut s_robust, mut s_xpath) = (0, 0, 0);
    for _ in 0..variants {
        let mutated = perturb::apply_random(&page, 3, &mut rng);
        let mut web = lixto_elog::StaticWeb::new();
        web.put("www.ebay.com/", mutated.clone());
        let r1 = lixto_elog::Extractor::new(fig5.clone(), &web).run();
        if r1.texts_of("itemdes").len() == records.len() {
            s_fig5 += 1;
        }
        let r2 = lixto_elog::Extractor::new(robust.clone(), &web).run();
        if r2.texts_of("itemdes").len() == records.len() {
            s_robust += 1;
        }
        let doc = lixto_html::parse(&mutated);
        if lixto_xpath::core::eval_core(&doc, &xq).unwrap().len() == records.len() {
            s_xpath += 1;
        }
    }
    let pct = |s: usize| format!("{:.0}%", 100.0 * s as f64 / variants as f64);
    print_table(
        "E10 — wrapper survival under 200 random layout perturbations (§2.5 robustness claim)",
        &["wrapper", "survival"],
        &[
            vec!["Elog (robust, landmark-based)".into(), pct(s_robust)],
            vec!["Elog (Figure 5 literal)".into(), pct(s_fig5)],
            vec!["absolute-path XPath baseline".into(), pct(s_xpath)],
        ],
    );
}

fn e11_induction_vs_visual() {
    use lixto_workloads::induction::{correct_on, learn, Example};
    // How many labeled pages does LR induction need to generalize to 20
    // held-out pages? Visual specification needs one example document
    // (Section 3.2).
    let make = |seed: u64| -> Example {
        let auctions = lixto_workloads::ebay::auctions(seed, 1 + (seed % 5) as usize);
        let page = lixto_workloads::ebay::listing_page(&auctions);
        let targets = auctions
            .iter()
            .map(|a| format!("{} {:.2}", a.currency, a.amount))
            .collect();
        Example { page, targets }
    };
    let held_out: Vec<Example> = (100..120).map(make).collect();
    let mut rows = Vec::new();
    let mut converged_at: Option<usize> = None;
    for n in 1..=8usize {
        let train: Vec<Example> = (0..n as u64).map(make).collect();
        let acc = match learn(&train) {
            Some(w) => {
                held_out.iter().filter(|e| correct_on(&w, e)).count() as f64 / held_out.len() as f64
            }
            None => 0.0,
        };
        if acc == 1.0 && converged_at.is_none() {
            converged_at = Some(n);
        }
        rows.push(vec![n.to_string(), format!("{:.0}%", acc * 100.0)]);
    }
    print_table(
        "E11 — LR wrapper induction: labeled examples vs held-out accuracy (visual spec needs 1)",
        &["examples", "held-out accuracy"],
        &rows,
    );
    println!(
        "LR induction converges at {} examples; the Pattern Builder needs 1 (see lixto-core tests).",
        converged_at.map_or(">8".to_string(), |n| n.to_string())
    );
}

fn e12_pipeline() {
    use lixto_transform::*;
    use lixto_xml::Element;
    let mut pipe = InfoPipe::new();
    let a = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_A_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopA"),
        }),
        Trigger::EveryTick,
    );
    let b = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_B_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopB"),
        }),
        Trigger::EveryTick,
    );
    let m = pipe.stage(
        Component::Integrate {
            root: "books".into(),
        },
        vec![a, b],
    );
    let f = pipe.stage(
        Component::Transform(Box::new(|inp: &[Element]| {
            let mut out = Element::new("books");
            for e in inp[0].children_named("book") {
                out.push_element(e.clone());
            }
            Some(out)
        })),
        vec![m],
    );
    pipe.stage(
        Component::Deliver {
            channel: "portal".into(),
            only_on_change: false,
        },
        vec![f],
    );
    let mut rows = Vec::new();
    for per_shop in [8usize, 64, 256] {
        let mut items = 0usize;
        let us = time_us(3, || {
            let delivered = run_ticks(&pipe, 1, &|_| {
                Box::new(lixto_workloads::books::site(5, per_shop).0)
            });
            let doc = lixto_xml::parse(&delivered[0].1.body).unwrap();
            items = doc.children_named("book").count();
        });
        rows.push(vec![
            per_shop.to_string(),
            items.to_string(),
            format!("{us:.0}"),
            format!("{:.1}", items as f64 / (us / 1e6) / 1000.0),
        ]);
    }
    print_table(
        "E12 — Figure 7 books pipeline: two wrappers → integrate → transform → deliver",
        &["books/shop", "items delivered", "µs/tick", "kitems/s"],
        &rows,
    );
}

fn e13_now_playing_and_flights() {
    use lixto_transform::*;
    // Now Playing: 8 playlist wrappers, change-gated delivery; playlists
    // rotate every 3 ticks.
    let mut pipe = InfoPipe::new();
    let mut sources = Vec::new();
    for s in lixto_workloads::radio::STATIONS {
        sources.push(
            pipe.source(
                Component::Wrapper(WrapperComponent {
                    program: lixto_elog::parse_program(&lixto_workloads::radio::playlist_wrapper(
                        s,
                    ))
                    .unwrap(),
                    design: lixto_core::XmlDesign::new().root("station"),
                }),
                Trigger::EveryTick,
            ),
        );
    }
    let m = pipe.stage(
        Component::Integrate {
            root: "nowplaying".into(),
        },
        sources,
    );
    pipe.stage(
        Component::Deliver {
            channel: "pda".into(),
            only_on_change: true,
        },
        vec![m],
    );
    let delivered = run_ticks(&pipe, 12, &|tick| {
        Box::new(lixto_workloads::radio::site(3, tick / 3, 0))
    });
    print_table(
        "E13a — Now Playing (§6.1): deliveries to the PDA over 12 ticks (playlists rotate every 3)",
        &["metric", "value"],
        &[
            vec![
                "sources wrapped".into(),
                "8 playlists (site has 14 sources)".into(),
            ],
            vec![
                "deliveries (change-gated)".into(),
                delivered.len().to_string(),
            ],
        ],
    );

    // Flights: SMS only on change (§6.2).
    let mut pipe = InfoPipe::new();
    let w = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::flights::FLIGHT_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("flights"),
        }),
        Trigger::EveryTick,
    );
    pipe.stage(
        Component::Deliver {
            channel: "sms".into(),
            only_on_change: true,
        },
        vec![w],
    );
    let ticks = 20u64;
    let delivered = run_ticks(&pipe, ticks, &|tick| {
        Box::new(lixto_workloads::flights::site(11, 8, tick / 4))
    });
    print_table(
        "E13b — flight status (§6.2): SMS only on change",
        &["metric", "value"],
        &[
            vec!["polls".into(), ticks.to_string()],
            vec!["distinct web states".into(), "5 (every 4 ticks)".into()],
            vec!["SMS deliveries".into(), delivered.len().to_string()],
        ],
    );
}

fn e14_mso_equivalence() {
    use lixto_automata::mso::*;
    // Theorem 2.5 shape: the MSO yardstick agrees with monadic datalog.
    let seed = forall_fo("z", implies(label("z", "i"), member("z", "X")));
    let closed_fc = forall_fo(
        "u",
        forall_fo(
            "v",
            implies(
                and(member("u", "X"), first_child("u", "v")),
                member("v", "X"),
            ),
        ),
    );
    let closed_ns = forall_fo(
        "u",
        forall_fo(
            "v",
            implies(
                and(member("u", "X"), next_sibling("u", "v")),
                member("v", "X"),
            ),
        ),
    );
    let phi = forall_so(
        "X",
        implies(and(seed, and(closed_fc, closed_ns)), member("x", "X")),
    );
    let q = MsoQuery::new("x", phi).unwrap();
    let program = lixto_datalog::parse_program(
        r#"italic(X) :- label(X, "i").
           italic(X) :- italic(X0), firstchild(X0, X).
           italic(X) :- italic(X0), nextsibling(X0, X)."#,
    )
    .unwrap();
    let docs = [
        "<p><i>a</i>d</p>",
        "<p><i>a<b>c</b></i><u>n</u></p>",
        "<div><p>x</p><i><i>y</i></i></div>",
    ];
    let mut rows = Vec::new();
    for html in docs {
        let doc = lixto_html::parse(html);
        let mso_sel = q.eval(&doc);
        let dl_sel = lixto_datalog::MonadicEvaluator::new(&doc)
            .eval_predicate(&program, "italic")
            .unwrap();
        rows.push(vec![
            html.to_string(),
            mso_sel.len().to_string(),
            dl_sel.len().to_string(),
            (mso_sel == dl_sel).to_string(),
        ]);
    }
    print_table(
        "E14 — MSO vs monadic datalog on Example 2.1 (Theorem 2.5: the selections coincide)",
        &["document", "MSO |sel|", "datalog |sel|", "equal"],
        &rows,
    );
    println!("compiled MSO automaton: {} states", q.automaton().n_states);
}

fn e13_server_throughput() {
    use lixto_server::{ExtractionRequest, ExtractionServer, RequestSource, ServerConfig};
    use std::sync::Arc;
    use std::time::Instant;

    const USERS: usize = 32;
    const PER_USER: usize = 25;
    let requests: Vec<ExtractionRequest> =
        lixto_workloads::traffic::requests(2026, USERS, PER_USER)
            .into_iter()
            .map(|r| ExtractionRequest {
                trace: None,
                wrapper: r.wrapper.to_string(),
                version: None,
                source: RequestSource::Inline {
                    url: r.url,
                    html: r.html,
                },
            })
            .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let server = ExtractionServer::start(
            ServerConfig {
                shards,
                workers_per_shard: 1,
                queue_capacity: 64,
                cache_capacity: 64,
                store: None,
            },
            lixto_bench::workload_registry(),
            Arc::new(lixto_elog::StaticWeb::new()),
        );
        let t = Instant::now();
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| server.submit(r.clone()).expect("submit"))
            .collect();
        for ticket in tickets {
            ticket.wait().expect("job completes");
        }
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let snap = server.metrics();
        let rps = requests.len() as f64 / (wall_ms / 1e3);
        rows.push(vec![
            shards.to_string(),
            requests.len().to_string(),
            format!("{wall_ms:.1}"),
            format!("{rps:.0}"),
            snap.p50_us.to_string(),
            snap.p99_us.to_string(),
            format!("{:.0}%", snap.cache.hit_rate() * 100.0),
        ]);
        json_rows.push(format!(
            r#"    {{"shards": {shards}, "requests": {}, "wall_ms": {wall_ms:.3}, "throughput_rps": {rps:.1}, "p50_us": {}, "p99_us": {}, "cache_hits": {}, "cache_misses": {}, "cache_evictions": {}}}"#,
            requests.len(),
            snap.p50_us,
            snap.p99_us,
            snap.cache.hits,
            snap.cache.misses,
            snap.cache.evictions,
        ));
        server.shutdown();
    }
    print_table(
        "E13c — serving layer: mixed traffic (32 users × 25 reqs) through the sharded worker pool",
        &[
            "shards",
            "requests",
            "wall ms",
            "req/s",
            "p50 µs",
            "p99 µs",
            "cache hit",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"experiment\": \"e13_server_throughput\",\n  \"users\": {USERS},\n  \"requests_per_user\": {PER_USER},\n  \"workers_per_shard\": 1,\n  \"runs\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_e13.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e14_http_throughput() {
    use lixto_http::{GatewayConfig, HttpClient, HttpGateway, Json};
    use lixto_server::{ExtractionServer, ServerConfig};
    use std::sync::Arc;
    use std::time::Instant;

    const USERS: usize = 32;
    const PER_USER: usize = 50;
    let requests = lixto_workloads::http_traffic::requests(2026, USERS, PER_USER);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for clients in [2usize, 8, 16, 32] {
        // Fresh pool + gateway per run, so every run's counters start at
        // zero and the metrics-agreement check is exact.
        let server = Arc::new(ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 2,
                queue_capacity: 128,
                cache_capacity: 64,
                store: None,
            },
            lixto_bench::workload_registry(),
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: clients,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .expect("bind gateway");
        let addr = gateway.addr();
        let t = Instant::now();
        // One keep-alive connection per client thread, the stream split
        // between them.
        let hits: usize = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in requests.chunks(requests.len().div_ceil(clients)) {
                handles.push(scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut hits = 0usize;
                    for r in chunk {
                        let response = client.post_json("/extract", &r.body).expect("extract");
                        assert_eq!(response.status, 200, "{}", response.text());
                        hits += response.text().contains("\"cache_hit\":true") as usize;
                    }
                    hits
                }));
            }
            handles.into_iter().map(|h| h.join().expect("client")).sum()
        });
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let rps = requests.len() as f64 / (wall_ms / 1e3);

        // The acceptance check: GET /metrics must agree, counter for
        // counter, with the in-process MetricsSnapshot (both taken at
        // quiescence — serving /metrics itself submits no pool jobs).
        let snap = server.metrics();
        let mut probe = HttpClient::connect(addr).expect("connect");
        let wire = probe
            .get_accept("/metrics", "application/json")
            .expect("metrics")
            .json()
            .expect("metrics json");
        let field = |name: &str| wire.get(name).and_then(Json::as_u64);
        let cache_field = |name: &str| {
            wire.get("cache")
                .and_then(|c| c.get(name))
                .and_then(Json::as_u64)
        };
        let agree = field("submitted") == Some(snap.submitted)
            && field("completed") == Some(snap.completed)
            && field("errors") == Some(snap.errors)
            && field("rejected") == Some(snap.rejected)
            && cache_field("hits") == Some(snap.cache.hits)
            && cache_field("misses") == Some(snap.cache.misses)
            && cache_field("evictions") == Some(snap.cache.evictions)
            && cache_field("invalidations") == Some(snap.cache.invalidations);
        assert!(agree, "GET /metrics diverged from the in-process snapshot");

        rows.push(vec![
            clients.to_string(),
            requests.len().to_string(),
            format!("{wall_ms:.1}"),
            format!("{rps:.0}"),
            snap.p50_us.to_string(),
            snap.p99_us.to_string(),
            format!("{:.0}%", 100.0 * hits as f64 / requests.len() as f64),
            agree.to_string(),
        ]);
        json_rows.push(format!(
            r#"    {{"clients": {clients}, "requests": {}, "wall_ms": {wall_ms:.3}, "throughput_rps": {rps:.1}, "p50_us": {}, "p99_us": {}, "cache_hits": {}, "cache_misses": {}, "http_4xx": {}, "http_5xx": {}, "metrics_agree": {agree}}}"#,
            requests.len(),
            snap.p50_us,
            snap.p99_us,
            snap.cache.hits,
            snap.cache.misses,
            gateway.stats().responses_4xx,
            gateway.stats().responses_5xx,
        ));
        // Close the probe's keep-alive connection before shutdown, or
        // the handler serving it idles out the full timeout first.
        drop(probe);
        gateway.shutdown();
        server.initiate_shutdown();
    }
    print_table(
        "E14 — HTTP gateway: mixed traffic (32 users × 50 reqs) through the loopback HTTP path",
        &[
            "clients",
            "requests",
            "wall ms",
            "req/s",
            "p50 µs",
            "p99 µs",
            "cache hit",
            "metrics agree",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"experiment\": \"e14_http_throughput\",\n  \"users\": {USERS},\n  \"requests_per_user\": {PER_USER},\n  \"pool\": {{\"shards\": 4, \"workers_per_shard\": 2}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_e14.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e15_plan_compile() {
    use lixto_elog::{parse_program, Extractor, SinglePage, WrapperPlan};
    use lixto_server::{ExtractionRequest, ExtractionServer, RequestSource, ServerConfig};
    use lixto_workloads::traffic;
    use std::collections::HashMap;
    use std::sync::Arc;
    use std::time::Instant;

    const USERS: usize = 32;
    const PER_USER: usize = 25;

    // Per-wrapper miss-path microbenchmark: one full extraction of a
    // fresh document, interpreted AST walk vs compiled-plan execution.
    let mut rows = Vec::new();
    let mut wrapper_json = Vec::new();
    for profile in traffic::profiles() {
        let program = parse_program(profile.program).expect("workload program parses");
        let plan = Arc::new(
            WrapperPlan::compile(&program, &lixto_elog::ConceptRegistry::builtin())
                .expect("workload program compiles"),
        );
        let web = SinglePage {
            url: profile.entry_url.to_string(),
            html: traffic::page_for(profile.name, 2026, 0),
        };
        let interpreted_ex = Extractor::new(program.clone(), &web);
        let compiled_ex = Extractor::from_plan(plan.clone(), &web);
        assert_eq!(
            interpreted_ex.run_interpreted(),
            compiled_ex.run(),
            "{}: compiled execution must be result-identical",
            profile.name
        );
        let interp_us = time_us(21, || {
            std::hint::black_box(interpreted_ex.run_interpreted().base.len());
        });
        let plan_us = time_us(21, || {
            std::hint::black_box(compiled_ex.run().base.len());
        });
        let compile_us = time_us(21, || {
            std::hint::black_box(
                WrapperPlan::compile(&program, &lixto_elog::ConceptRegistry::builtin())
                    .expect("compiles")
                    .rules()
                    .len(),
            );
        });
        rows.push(vec![
            profile.name.to_string(),
            format!("{interp_us:.0}"),
            format!("{plan_us:.0}"),
            format!("{compile_us:.1}"),
            format!("{:.2}x", interp_us / plan_us),
        ]);
        wrapper_json.push(format!(
            r#"    {{"wrapper": "{}", "interpreted_us": {interp_us:.1}, "compiled_us": {plan_us:.1}, "compile_once_us": {compile_us:.2}, "speedup": {:.3}}}"#,
            profile.name,
            interp_us / plan_us,
        ));
    }
    print_table(
        "E15a — compile-once plans: miss-path extraction per wrapper (fresh document, no cache)",
        &["wrapper", "interp µs", "plan µs", "compile µs", "speedup"],
        &rows,
    );

    // Long-tail stream: ~0% cache hit rate, so throughput is the miss
    // path. Interpreted baseline is exactly what the pre-plan server did
    // per miss (clone the AST, walk it); compiled is the plan fast path.
    let stream = traffic::long_tail_requests(2026, USERS, PER_USER);
    let programs: HashMap<&str, _> = traffic::profiles()
        .into_iter()
        .map(|p| (p.name, parse_program(p.program).expect("parses")))
        .collect();
    let plans: HashMap<&str, Arc<WrapperPlan>> = programs
        .iter()
        .map(|(name, prog)| {
            (
                *name,
                Arc::new(
                    WrapperPlan::compile(prog, &lixto_elog::ConceptRegistry::builtin())
                        .expect("compiles"),
                ),
            )
        })
        .collect();

    let t = Instant::now();
    let mut interp_instances = 0usize;
    for r in &stream {
        let web = SinglePage {
            url: r.url.clone(),
            html: r.html.clone(),
        };
        let result = Extractor::new(programs[r.wrapper].clone(), &web).run_interpreted();
        interp_instances += result.base.len();
    }
    let interp_wall = t.elapsed().as_secs_f64();
    let interp_rps = stream.len() as f64 / interp_wall;

    let t = Instant::now();
    let mut plan_instances = 0usize;
    for r in &stream {
        let web = SinglePage {
            url: r.url.clone(),
            html: r.html.clone(),
        };
        let result = Extractor::from_plan(plans[r.wrapper].clone(), &web).run();
        plan_instances += result.base.len();
    }
    let plan_wall = t.elapsed().as_secs_f64();
    let plan_rps = stream.len() as f64 / plan_wall;
    assert_eq!(
        interp_instances, plan_instances,
        "both engines must extract the same instances over the long tail"
    );
    let speedup = plan_rps / interp_rps;

    // The same stream through the serving stack (plans end to end).
    let requests: Vec<ExtractionRequest> = stream
        .iter()
        .map(|r| ExtractionRequest {
            trace: None,
            wrapper: r.wrapper.to_string(),
            version: None,
            source: RequestSource::Inline {
                url: r.url.clone(),
                html: r.html.clone(),
            },
        })
        .collect();
    let server = ExtractionServer::start(
        ServerConfig {
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 128,
            cache_capacity: 64,
            store: None,
        },
        lixto_bench::workload_registry(),
        Arc::new(lixto_elog::StaticWeb::new()),
    );
    let t = Instant::now();
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| server.submit(r.clone()).expect("submit"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("job completes");
    }
    let pool_wall = t.elapsed().as_secs_f64();
    let pool_rps = requests.len() as f64 / pool_wall;
    let snap = server.metrics();
    let hit_rate = snap.cache.hit_rate();
    server.shutdown();

    print_table(
        "E15b — long-tail miss-path throughput (32 users × 25 reqs, ~0% hit rate)",
        &["engine", "requests", "wall ms", "req/s", "speedup"],
        &[
            vec![
                "interpreted AST".into(),
                stream.len().to_string(),
                format!("{:.1}", interp_wall * 1e3),
                format!("{interp_rps:.0}"),
                "1.00x".into(),
            ],
            vec![
                "compiled plan".into(),
                stream.len().to_string(),
                format!("{:.1}", plan_wall * 1e3),
                format!("{plan_rps:.0}"),
                format!("{speedup:.2}x"),
            ],
            vec![
                "pool (4x2, plans)".into(),
                requests.len().to_string(),
                format!("{:.1}", pool_wall * 1e3),
                format!("{pool_rps:.0}"),
                format!("{:.2}x", pool_rps / interp_rps),
            ],
        ],
    );
    println!(
        "long-tail cache hit rate through the pool: {:.1}%",
        hit_rate * 100.0
    );

    let json = format!(
        "{{\n  \"experiment\": \"e15_plan_compile\",\n  \"users\": {USERS},\n  \"requests_per_user\": {PER_USER},\n  \"long_tail\": {{\"requests\": {}, \"interpreted_rps\": {interp_rps:.1}, \"compiled_rps\": {plan_rps:.1}, \"speedup\": {speedup:.3}, \"results_identical\": true, \"pool_rps\": {pool_rps:.1}, \"pool_cache_hit_rate\": {hit_rate:.4}}},\n  \"wrappers\": [\n{}\n  ]\n}}\n",
        stream.len(),
        wrapper_json.join(",\n")
    );
    let path = "BENCH_e15.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// E16: the event-driven gateway under three regimes the
/// thread-per-connection design could not serve at once — thousands of
/// mostly-idle keep-alive portal clients, the e14 mixed busy path (no
/// regression allowed), and batched `/extract` on tiny documents.
fn e16_multiplex() {
    use lixto_http::{GatewayConfig, HttpClient, HttpGateway, Json};
    use lixto_server::{ExtractionServer, ServerConfig, WrapperRegistry};
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // ----------------------------------------------------------------
    // Phase 1 — idle capacity: 2,000 concurrent keep-alive connections
    // held by two event loops, every one of them live.
    // ----------------------------------------------------------------
    const IDLE_CONNS: usize = 2000;
    const EVENT_LOOPS: usize = 2;

    let pool_config = ServerConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 128,
        cache_capacity: 64,
        store: None,
    };
    let server = Arc::new(ExtractionServer::start(
        pool_config.clone(),
        lixto_bench::workload_registry(),
        Arc::new(lixto_elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: EVENT_LOOPS,
            max_connections_per_loop: IDLE_CONNS, // 2 loops → headroom over the target
            idle_timeout: Duration::from_secs(300),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .expect("bind gateway");
    let addr = gateway.addr();

    let healthz = b"GET /healthz HTTP/1.1\r\nhost: e16\r\ncontent-length: 0\r\n\r\n";
    let read_one_response = |socket: &mut std::net::TcpStream| -> bool {
        let mut buf = [0u8; 1024];
        let mut seen = Vec::new();
        loop {
            // One healthz response is < 1 KiB; read until the body's
            // closing brace has arrived.
            match socket.read(&mut buf) {
                Ok(0) | Err(_) => return false,
                Ok(n) => {
                    seen.extend_from_slice(&buf[..n]);
                    if seen.windows(15).any(|w| w == b"{\"status\":\"ok\"}") {
                        return true;
                    }
                }
            }
        }
    };

    let t_open = Instant::now();
    let mut idle_conns = Vec::with_capacity(IDLE_CONNS);
    let mut served_on_open = 0usize;
    for _ in 0..IDLE_CONNS {
        let mut socket = std::net::TcpStream::connect(addr).expect("connect idle client");
        socket
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        socket.write_all(healthz).expect("healthz");
        served_on_open += usize::from(read_one_response(&mut socket));
        idle_conns.push(socket);
    }
    let open_wall = t_open.elapsed();

    // Sustained: with all 2,000 still open, sweep every connection with
    // a second request — each must answer, proving none were dropped
    // and the loops still serve under full occupancy.
    let t_sweep = Instant::now();
    let mut served_on_sweep = 0usize;
    for socket in idle_conns.iter_mut() {
        if socket.write_all(healthz).is_ok() {
            served_on_sweep += usize::from(read_one_response(socket));
        }
    }
    let sweep_wall = t_sweep.elapsed();

    // And a busy probe *while* the 2,000 idle connections are parked:
    // mixed extraction traffic must still flow.
    let probe_requests = lixto_workloads::http_traffic::idle_portal_requests(7, 8, 16);
    let t_probe = Instant::now();
    let mut probe = HttpClient::connect(addr).expect("probe connect");
    for r in &probe_requests {
        let response = probe.post_json("/extract", &r.body).expect("probe extract");
        assert_eq!(response.status, 200, "{}", response.text());
    }
    let probe_rps = probe_requests.len() as f64 / t_probe.elapsed().as_secs_f64();
    drop(probe);
    drop(idle_conns);
    let idle_stats = gateway.stats();
    gateway.shutdown();
    server.initiate_shutdown();

    let threads_total =
        EVENT_LOOPS + 1 /* acceptor */ + pool_config.shards * pool_config.workers_per_shard;

    // ----------------------------------------------------------------
    // Phase 2 — busy path: the e14 mixed workload, compared against the
    // committed thread-per-connection baseline in BENCH_e14.json.
    // ----------------------------------------------------------------
    const USERS: usize = 32;
    const PER_USER: usize = 50;
    let requests = lixto_workloads::http_traffic::requests(2026, USERS, PER_USER);
    let mut busy_rows = Vec::new();
    let mut busy_json = Vec::new();
    let baseline: Option<Json> = std::fs::read_to_string("BENCH_e14.json")
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let baseline_rps = |clients: usize| -> Option<f64> {
        baseline
            .as_ref()?
            .get("runs")?
            .as_array()?
            .iter()
            .find(|run| run.get("clients").and_then(Json::as_u64) == Some(clients as u64))?
            .get("throughput_rps")?
            .as_f64()
    };
    let mut worst_ratio = f64::INFINITY;
    for clients in [2usize, 8, 16, 32] {
        let server = Arc::new(ExtractionServer::start(
            pool_config.clone(),
            lixto_bench::workload_registry(),
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind("127.0.0.1:0", GatewayConfig::default(), server.clone())
            .expect("bind gateway");
        let addr = gateway.addr();
        let t = Instant::now();
        std::thread::scope(|scope| {
            for chunk in requests.chunks(requests.len().div_ceil(clients)) {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    for r in chunk {
                        let response = client.post_json("/extract", &r.body).expect("extract");
                        assert_eq!(response.status, 200, "{}", response.text());
                    }
                });
            }
        });
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let rps = requests.len() as f64 / (wall_ms / 1e3);
        let base = baseline_rps(clients);
        let ratio = base.map(|b| rps / b);
        if let Some(r) = ratio {
            worst_ratio = worst_ratio.min(r);
        }
        gateway.shutdown();
        server.initiate_shutdown();
        busy_rows.push(vec![
            clients.to_string(),
            requests.len().to_string(),
            format!("{wall_ms:.1}"),
            format!("{rps:.0}"),
            base.map_or("n/a".into(), |b| format!("{b:.0}")),
            ratio.map_or("n/a".into(), |r| format!("{r:.2}x")),
        ]);
        busy_json.push(format!(
            r#"    {{"clients": {clients}, "requests": {}, "wall_ms": {wall_ms:.3}, "throughput_rps": {rps:.1}, "baseline_rps": {}, "vs_baseline": {}}}"#,
            requests.len(),
            base.map_or("null".into(), |b| format!("{b:.1}")),
            ratio.map_or("null".into(), |r| format!("{r:.3}")),
        ));
    }

    // ----------------------------------------------------------------
    // Phase 3 — batch amortization: tiny documents, individually vs in
    // `/extract/batch` payloads.
    // ----------------------------------------------------------------
    const TINY_WRAPPER: &str =
        r#"offer(S, X) :- document("http://tiny/", S), subelem(S, (?.li, []), X)."#;
    const TINY_REQUESTS: usize = 1024;
    const BATCH_SIZE: usize = 32;
    let tiny_stack = || {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source(
                "tiny",
                TINY_WRAPPER,
                lixto_core::XmlDesign::new().root("items"),
            )
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig {
                shards: 2,
                workers_per_shard: 1,
                queue_capacity: 256,
                cache_capacity: 64,
                store: None,
            },
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                max_batch_items: 256,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .expect("bind gateway");
        (gateway, server)
    };
    let bodies = lixto_workloads::http_traffic::tiny_extract_bodies(
        "tiny",
        "http://tiny/",
        TINY_REQUESTS,
        16,
    );

    let individual_rps = {
        let (gateway, server) = tiny_stack();
        let mut client = HttpClient::connect(gateway.addr()).expect("connect");
        let mut run = || {
            for body in &bodies {
                let response = client.post_json("/extract", body).expect("extract");
                assert_eq!(response.status, 200);
            }
        };
        run(); // warm pass (cold cache)
        let t = Instant::now();
        run(); // measured steady-state pass
        let rps = bodies.len() as f64 / t.elapsed().as_secs_f64();
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
        rps
    };
    let batch_rps = {
        let (gateway, server) = tiny_stack();
        let batches = lixto_workloads::http_traffic::batch_bodies(&bodies, BATCH_SIZE);
        let mut client = HttpClient::connect(gateway.addr()).expect("connect");
        let mut run = || {
            for batch in &batches {
                let response = client.post_json("/extract/batch", batch).expect("batch");
                assert_eq!(response.status, 200, "{}", response.text());
            }
        };
        run(); // warm pass
        let t = Instant::now();
        run(); // measured steady-state pass
        let rps = bodies.len() as f64 / t.elapsed().as_secs_f64();
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
        rps
    };
    let batch_speedup = batch_rps / individual_rps;

    // ----------------------------------------------------------------
    // Report
    // ----------------------------------------------------------------
    print_table(
        "E16 — multiplexed gateway: idle capacity (2 event loops)",
        &[
            "connections",
            "served@open",
            "served@sweep",
            "open ms",
            "sweep ms",
            "probe req/s",
            "threads",
        ],
        &[vec![
            IDLE_CONNS.to_string(),
            served_on_open.to_string(),
            served_on_sweep.to_string(),
            format!("{:.0}", open_wall.as_secs_f64() * 1e3),
            format!("{:.0}", sweep_wall.as_secs_f64() * 1e3),
            format!("{probe_rps:.0}"),
            threads_total.to_string(),
        ]],
    );
    print_table(
        "E16 — busy path: e14 mixed workload through the event-driven core",
        &[
            "clients",
            "requests",
            "wall ms",
            "req/s",
            "e14 baseline",
            "ratio",
        ],
        &busy_rows,
    );
    print_table(
        "E16 — tiny documents: batched vs per-request /extract",
        &["mode", "requests", "req/s", "speedup"],
        &[
            vec![
                "individual".into(),
                TINY_REQUESTS.to_string(),
                format!("{individual_rps:.0}"),
                "1.00x".into(),
            ],
            vec![
                format!("batch x{BATCH_SIZE}"),
                TINY_REQUESTS.to_string(),
                format!("{batch_rps:.0}"),
                format!("{batch_speedup:.2}x"),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"experiment\": \"e16_multiplex\",\n  \"idle\": {{\"connections\": {IDLE_CONNS}, \"event_loops\": {EVENT_LOOPS}, \"served_on_open\": {served_on_open}, \"served_on_sweep\": {served_on_sweep}, \"open_ms\": {:.1}, \"sweep_ms\": {:.1}, \"probe_rps_while_idle_held\": {probe_rps:.1}, \"threads_total\": {threads_total}, \"gateway_connections\": {}}},\n  \"busy\": [\n{}\n  ],\n  \"busy_worst_ratio_vs_e14\": {},\n  \"batch\": {{\"requests\": {TINY_REQUESTS}, \"batch_size\": {BATCH_SIZE}, \"individual_rps\": {individual_rps:.1}, \"batch_rps\": {batch_rps:.1}, \"speedup\": {batch_speedup:.3}}}\n}}\n",
        open_wall.as_secs_f64() * 1e3,
        sweep_wall.as_secs_f64() * 1e3,
        idle_stats.connections,
        busy_json.join(",\n"),
        if worst_ratio.is_finite() {
            format!("{worst_ratio:.3}")
        } else {
            "null".into()
        },
    );
    let path = "BENCH_e16.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// E17 — persistence: warm-restart time-to-first-hit vs cold rewarm.
///
/// A gateway restart with a durable result store should answer its first
/// request from the recovered disk tier instead of re-executing the
/// wrapper plan. Both lives replay the same restart-heavy traffic (tiny
/// per-wrapper document pools, near-total repetition); the cold run gets
/// a fresh empty store directory, the warm run reopens the one the
/// seeding phase filled.
fn e17_persistence() {
    use lixto_server::{
        ExtractionRequest, ExtractionServer, RequestSource, ServerConfig, StoreConfig,
    };
    use std::sync::Arc;
    use std::time::Instant;

    const USERS: usize = 16;
    const PER_USER: usize = 25;
    const POOL: u64 = 3;
    let requests: Vec<ExtractionRequest> =
        lixto_workloads::traffic::restart_requests(2026, USERS, PER_USER, POOL)
            .into_iter()
            .map(|r| ExtractionRequest {
                trace: None,
                wrapper: r.wrapper.to_string(),
                version: None,
                source: RequestSource::Inline {
                    url: r.url,
                    html: r.html,
                },
            })
            .collect();

    let root = std::env::temp_dir().join(format!("lixto-e17-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let start_server = |dir: &std::path::Path| {
        ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 1,
                queue_capacity: 64,
                cache_capacity: 64,
                store: Some(StoreConfig::new(dir)),
            },
            lixto_bench::workload_registry(),
            Arc::new(lixto_elog::StaticWeb::new()),
        )
    };
    // Replay the stream; returns (time-to-first-response µs, wall ms).
    let replay = |server: &ExtractionServer| {
        let t = Instant::now();
        let first = server
            .submit(requests[0].clone())
            .expect("submit")
            .wait()
            .expect("first job");
        let ttfr_us = t.elapsed().as_secs_f64() * 1e6;
        let first_hit = first.cache_hit;
        let tickets: Vec<_> = requests[1..]
            .iter()
            .map(|r| server.submit(r.clone()).expect("submit"))
            .collect();
        for ticket in tickets {
            ticket.wait().expect("job completes");
        }
        (ttfr_us, first_hit, t.elapsed().as_secs_f64() * 1e3)
    };

    // Seed: one full pass fills the store, then the process "dies".
    let warm_dir = root.join("warm");
    let seed = start_server(&warm_dir);
    let (_, _, seed_wall_ms) = replay(&seed);
    let seeded = seed.metrics();
    seed.shutdown();

    // Cold rewarm: an empty store — every distinct document re-executes
    // its plan once before the repeats can hit.
    let cold = start_server(&root.join("cold"));
    let (cold_ttfr_us, cold_first_hit, cold_wall_ms) = replay(&cold);
    let cold_snap = cold.metrics();
    cold.shutdown();

    // Warm restart: recover the seeded store and replay.
    let warm = start_server(&warm_dir);
    let (warm_ttfr_us, warm_first_hit, warm_wall_ms) = replay(&warm);
    let warm_snap = warm.metrics();
    warm.shutdown();

    let rows = vec![
        vec![
            "cold rewarm".to_string(),
            requests.len().to_string(),
            format!("{cold_ttfr_us:.0}"),
            cold_first_hit.to_string(),
            format!("{cold_wall_ms:.1}"),
            cold_snap.store.recovered.to_string(),
            cold_snap.store.disk_hits.to_string(),
            format!("{:.0}%", cold_snap.cache.hit_rate() * 100.0),
        ],
        vec![
            "warm restart".to_string(),
            requests.len().to_string(),
            format!("{warm_ttfr_us:.0}"),
            warm_first_hit.to_string(),
            format!("{warm_wall_ms:.1}"),
            warm_snap.store.recovered.to_string(),
            warm_snap.store.disk_hits.to_string(),
            format!("{:.0}%", warm_snap.cache.hit_rate() * 100.0),
        ],
    ];
    print_table(
        "E17 — persistence: warm restart (recovered store) vs cold rewarm, restart-heavy traffic",
        &[
            "life",
            "requests",
            "first µs",
            "first hit",
            "wall ms",
            "recovered",
            "disk hits",
            "cache hit",
        ],
        &rows,
    );
    let ttfr_speedup = cold_ttfr_us / warm_ttfr_us.max(1e-9);
    println!("time-to-first-hit: cold {cold_ttfr_us:.0}µs vs warm {warm_ttfr_us:.0}µs ({ttfr_speedup:.1}x)");

    let json = format!(
        "{{\n  \"experiment\": \"e17_persistence\",\n  \"users\": {USERS},\n  \"requests_per_user\": {PER_USER},\n  \"variant_pool\": {POOL},\n  \"seed\": {{\"wall_ms\": {seed_wall_ms:.3}, \"persisted\": {}, \"distinct_documents\": {}}},\n  \"cold\": {{\"time_to_first_response_us\": {cold_ttfr_us:.1}, \"first_was_hit\": {cold_first_hit}, \"wall_ms\": {cold_wall_ms:.3}, \"recovered\": {}, \"disk_hits\": {}, \"cache_hits\": {}, \"cache_misses\": {}}},\n  \"warm\": {{\"time_to_first_response_us\": {warm_ttfr_us:.1}, \"first_was_hit\": {warm_first_hit}, \"wall_ms\": {warm_wall_ms:.3}, \"recovered\": {}, \"disk_hits\": {}, \"cache_hits\": {}, \"cache_misses\": {}}},\n  \"warm_vs_cold\": {{\"time_to_first_hit_speedup\": {ttfr_speedup:.2}, \"wall_speedup\": {:.3}}}\n}}\n",
        seeded.store.persisted,
        seeded.cache.misses,
        cold_snap.store.recovered,
        cold_snap.store.disk_hits,
        cold_snap.cache.hits,
        cold_snap.cache.misses,
        warm_snap.store.recovered,
        warm_snap.store.disk_hits,
        warm_snap.cache.hits,
        warm_snap.cache.misses,
        cold_wall_ms / warm_wall_ms.max(1e-9),
    );
    let path = "BENCH_e17.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// E18: the observability tax and its books. Two questions:
///
/// 1. What does request tracing cost on the E14 busy path? The same
///    mixed HTTP traffic is served by two otherwise identical gateways,
///    one with `tracing: true` (spans, ids, per-stage clocks) and one
///    with `tracing: false`; alternating measured passes give a
///    median-vs-median overhead that must stay under 5%.
/// 2. Do the per-rule clocks add up? For the eBay and news wrappers,
///    the sum of `lixto_rule_nanoseconds_total` over a wrapper's rules
///    must land within 20% of the plan-execution stage wall time.
///    Document fetch/parse happens *inside* rule application (a
///    `document(...)` atom evaluates during its rule's body), so rule
///    clocks cover it; the only exec-stage time outside any rule clock
///    is fixpoint bookkeeping between applications.
fn e18_observability() {
    use lixto_http::{GatewayConfig, HttpClient, HttpGateway};
    use lixto_obs::Stage;
    use lixto_server::{ExtractionRequest, ExtractionServer, RequestSource, ServerConfig};
    use std::sync::Arc;
    use std::time::Instant;

    const USERS: usize = 32;
    const PER_USER: usize = 50;
    const CLIENTS: usize = 8;
    const PASSES: usize = 3;
    let requests = lixto_workloads::http_traffic::requests(2026, USERS, PER_USER);

    // One measured pass of the E14 busy path against a fresh stack.
    let run = |tracing: bool| -> f64 {
        let server = Arc::new(ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 2,
                queue_capacity: 128,
                cache_capacity: 64,
                store: None,
            },
            lixto_bench::workload_registry(),
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: CLIENTS,
                tracing,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .expect("bind gateway");
        let addr = gateway.addr();
        // Warm pass fills the result cache; the measured pass serves the
        // steady state, like E14.
        let mut measured = 0.0f64;
        for pass in 0..2 {
            let t = Instant::now();
            std::thread::scope(|scope| {
                for chunk in requests.chunks(requests.len().div_ceil(CLIENTS)) {
                    scope.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        for r in chunk {
                            let response = client.post_json("/extract", &r.body).expect("extract");
                            assert_eq!(response.status, 200, "{}", response.text());
                        }
                    });
                }
            });
            if pass == 1 {
                measured = requests.len() as f64 / t.elapsed().as_secs_f64();
            }
        }
        if tracing {
            // The traced gateway must actually have traced: spans
            // retained, rule counters live.
            let mut probe = HttpClient::connect(addr).expect("connect");
            let slow = probe.get("/debug/slow").expect("debug/slow");
            assert_eq!(slow.status, 200);
            assert!(
                slow.text().contains("\"id\""),
                "traced run retained no spans"
            );
            drop(probe);
        }
        gateway.shutdown();
        server.initiate_shutdown();
        measured
    };

    // Alternate off/on passes so drift hits both modes equally.
    let mut rps_off = Vec::with_capacity(PASSES);
    let mut rps_on = Vec::with_capacity(PASSES);
    for _ in 0..PASSES {
        rps_off.push(run(false));
        rps_on.push(run(true));
    }
    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let off = median(&mut rps_off);
    let on = median(&mut rps_on);
    let overhead_pct = 100.0 * (off - on) / off;

    // Part 2: rule clocks vs the exec stage, measured in-process so the
    // per-request stage times are exact (no HTTP jitter in the ledger).
    let registry = lixto_bench::workload_registry();
    let server = ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 64,
            cache_capacity: 16,
            store: None,
        },
        registry.clone(),
        Arc::new(lixto_elog::StaticWeb::new()),
    );
    let ledger_requests = lixto_workloads::traffic::long_tail_requests(7, 8, 40);
    let mut exec_ns: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for r in &ledger_requests {
        let response = server
            .execute(ExtractionRequest {
                trace: None,
                wrapper: r.wrapper.to_string(),
                version: None,
                source: RequestSource::Inline {
                    url: r.url.clone(),
                    html: r.html.clone(),
                },
            })
            .expect("ledger extraction");
        *exec_ns.entry(r.wrapper).or_default() += response.stages.ns(Stage::PlanExec);
    }
    server.initiate_shutdown();

    let mut rows = Vec::new();
    let mut wrapper_rows = Vec::new();
    let mut books_ok = true;
    for name in ["ebay", "news"] {
        let wrapper = registry.latest(name).expect("workload wrapper");
        let rules = wrapper.telemetry.snapshot();
        let rule_ns: u64 = rules.iter().map(|r| r.total_ns).sum();
        let invocations: u64 = rules.iter().map(|r| r.invocations).sum();
        assert!(rule_ns > 0, "{name}: rule clocks never ran");
        assert!(invocations > 0, "{name}: rule counters never ran");
        let body_ns = exec_ns[name];
        let ratio = rule_ns as f64 / body_ns as f64;
        let within = (ratio - 1.0).abs() <= 0.20;
        books_ok &= within;
        rows.push(vec![
            name.to_string(),
            rules.len().to_string(),
            invocations.to_string(),
            format!("{:.2}", rule_ns as f64 / 1e6),
            format!("{:.2}", body_ns as f64 / 1e6),
            format!("{ratio:.3}"),
            within.to_string(),
        ]);
        wrapper_rows.push(format!(
            r#"    {{"wrapper": "{name}", "rules": {}, "invocations": {invocations}, "rule_ns": {rule_ns}, "exec_stage_ns": {body_ns}, "ratio": {ratio:.4}, "within_20pct": {within}}}"#,
            rules.len(),
        ));
    }

    print_table(
        "E18 — observability: per-rule clocks vs the exec stage (long-tail, in-process)",
        &[
            "wrapper",
            "rules",
            "invocs",
            "rule ms",
            "exec ms",
            "ratio",
            "within 20%",
        ],
        &rows,
    );
    print_table(
        "E18 — observability: tracing overhead on the E14 busy path",
        &["mode", "req/s (median of 3)"],
        &[
            vec!["tracing off".into(), format!("{off:.0}")],
            vec!["tracing on".into(), format!("{on:.0}")],
            vec!["overhead".into(), format!("{overhead_pct:.2}%")],
        ],
    );
    assert!(
        overhead_pct <= 5.0,
        "tracing overhead {overhead_pct:.2}% exceeds the 5% budget"
    );
    assert!(books_ok, "per-rule clocks diverged from the exec stage");

    let json = format!(
        "{{\n  \"experiment\": \"e18_observability\",\n  \"busy_path\": {{\"users\": {USERS}, \"requests_per_user\": {PER_USER}, \"clients\": {CLIENTS}, \"passes\": {PASSES}, \"rps_tracing_off\": {off:.1}, \"rps_tracing_on\": {on:.1}, \"overhead_pct\": {overhead_pct:.3}}},\n  \"rule_ledger\": [\n{}\n  ]\n}}\n",
        wrapper_rows.join(",\n")
    );
    let path = "BENCH_e18.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e19_watchdog() {
    use lixto_core::XmlDesign;
    use lixto_elog::WebSource;
    use lixto_http::{GatewayConfig, HttpClient, HttpGateway, Json};
    use lixto_server::{ExtractionServer, ServerConfig, WrapperRegistry};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    const USERS: usize = 32;
    const PER_USER: usize = 50;
    const PAIRS: usize = 6;
    const MEASURED_REPS: usize = 6;
    let requests = lixto_workloads::http_traffic::requests(2026, USERS, PER_USER);

    // Part 1: the monitor's throughput tax on the E14/E18 traffic mix.
    // Machine throughput drifts by several percent between runs — far
    // more than the 2% budget — so the two modes must share everything
    // that drifts: ONE extraction pool serves TWO gateways (monitor off
    // and on), measured blocks interleave in order-balanced
    // off/on/on/off pairs, and the headline ratio compares the two
    // modes' MEDIAN block time over all blocks, which a few
    // scheduler-stalled blocks cannot swing. The
    // client is a single serial connection: on small hosts a fleet of
    // client threads measures the scheduler, not the gateway.
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 64,
            cache_capacity: 64,
            store: None,
        },
        lixto_bench::workload_registry(),
        Arc::new(lixto_elog::StaticWeb::new()),
    ));
    let bind = |monitor: bool| {
        HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                event_loops: 1,
                monitor,
                // Fast enough that the measured sweeps pay for real
                // sampler ticks, not an idle thread.
                monitor_interval: Duration::from_millis(100),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .expect("bind gateway")
    };
    let gateway_off = bind(false);
    let gateway_on = bind(true);
    let sweep = |client: &mut HttpClient| {
        for r in &requests {
            let response = client.post_json("/extract", &r.body).expect("extract");
            assert_eq!(response.status, 200, "{}", response.text());
        }
    };
    let mut client_off = HttpClient::connect(gateway_off.addr()).expect("connect");
    let mut client_on = HttpClient::connect(gateway_on.addr()).expect("connect");
    // Warm pass per gateway fills the shared result cache; measured
    // blocks replay the stream enough times (hundreds of ms each) that
    // a 2% budget is resolvable above timer noise.
    sweep(&mut client_off);
    sweep(&mut client_on);
    let timed = |client: &mut HttpClient| -> f64 {
        let t = Instant::now();
        for _ in 0..MEASURED_REPS {
            sweep(client);
        }
        t.elapsed().as_secs_f64()
    };
    let mut secs_off = Vec::with_capacity(2 * PAIRS);
    let mut secs_on = Vec::with_capacity(2 * PAIRS);
    for _ in 0..PAIRS {
        // Order-balanced within the pair (off, on, on, off): any linear
        // drift across the four blocks hits both modes equally.
        secs_off.push(timed(&mut client_off));
        secs_on.push(timed(&mut client_on));
        secs_on.push(timed(&mut client_on));
        secs_off.push(timed(&mut client_off));
    }
    // Median block time per mode: on a shared host a single
    // scheduler-stalled block would skew a sum, but not the median.
    let median_secs = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let block_requests = (MEASURED_REPS * requests.len()) as f64;
    let off = block_requests / median_secs(&mut secs_off);
    let on = block_requests / median_secs(&mut secs_on);
    let overhead_pct = 100.0 * (off - on) / off;
    drop(client_off);
    drop(client_on);

    // The monitored gateway must actually have monitored.
    {
        let mut probe = HttpClient::connect(gateway_on.addr()).expect("connect");
        let health = probe.get("/debug/health").expect("debug/health");
        assert_eq!(health.status, 200);
        let samples = health
            .json()
            .expect("health json")
            .get("sampler")
            .and_then(|s| s.get("samples"))
            .and_then(Json::as_u64)
            .expect("sampler.samples");
        assert!(samples >= 1, "monitored run never sampled");
    }
    gateway_off.shutdown();
    gateway_on.shutdown();
    server.initiate_shutdown();

    // Part 2: detection latency. A web source whose fetches block until
    // released jams the one worker and fills the one shard queue; the
    // watchdog's queue_saturation rule must flip /debug/health away
    // from "ok" within two sampling intervals — and resolve it again
    // once the gate opens.
    struct GatedWeb {
        open: Mutex<bool>,
        cv: Condvar,
    }
    impl WebSource for GatedWeb {
        fn fetch(&self, url: &str) -> Option<String> {
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            url.starts_with("http://shop/")
                .then(|| "<ul><li>beans</li></ul>".to_string())
        }
    }
    let web = Arc::new(GatedWeb {
        open: Mutex::new(true),
        cv: Condvar::new(),
    });
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source(
            "shop",
            r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#,
            XmlDesign::new().root("offers"),
        )
        .expect("shop wrapper compiles");
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            store: None,
        },
        registry,
        web.clone(),
    ));
    const INTERVAL_MS: u64 = 150;
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 2,
            monitor_interval: Duration::from_millis(INTERVAL_MS),
            monitor_eval_ticks: 4,
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .expect("bind gateway");
    let addr = gateway.addr();
    let mut prober = HttpClient::connect(addr).expect("connect");
    let verdict = |client: &mut HttpClient| -> String {
        let health = client.get("/debug/health").expect("debug/health");
        assert_eq!(health.status, 200);
        health
            .json()
            .expect("health json")
            .get("verdict")
            .and_then(Json::as_str)
            .expect("verdict")
            .to_string()
    };
    let wait_for = |client: &mut HttpClient, want: &str| -> Duration {
        let started = Instant::now();
        loop {
            if verdict(client) == want {
                return started.elapsed();
            }
            assert!(
                started.elapsed() < Duration::from_secs(20),
                "verdict never became {want:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    assert_eq!(verdict(&mut prober), "ok");

    // Shut the gate and jam the pool: the first extraction pins the
    // worker, the rest fill the queue.
    *web.open.lock().unwrap() = false;
    let batch: Vec<String> = (0..5)
        .map(|i| format!(r#"{{"wrapper":"shop","url":"http://shop/{i}"}}"#))
        .collect();
    let batch = format!("[{}]", batch.join(","));
    let jammed = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("connect");
        client.post_json("/extract/batch", &batch).expect("batch")
    });
    let detection = wait_for(&mut prober, "degraded");
    let detection_ms = detection.as_secs_f64() * 1e3;
    let detection_intervals = detection_ms / INTERVAL_MS as f64;

    // Open the gate: the queue drains and the alert must resolve.
    {
        let mut open = web.open.lock().unwrap();
        *open = true;
        web.cv.notify_all();
    }
    let batch_response = jammed.join().expect("jam thread");
    assert_eq!(batch_response.status, 200);
    let resolution = wait_for(&mut prober, "ok");
    let resolution_ms = resolution.as_secs_f64() * 1e3;
    drop(prober);
    gateway.shutdown();
    server.initiate_shutdown();

    print_table(
        "E19 — watchdog: monitor overhead on the E14 busy path",
        &["mode", "req/s (median block, 6 balanced pairs)"],
        &[
            vec!["monitor off".into(), format!("{off:.0}")],
            vec!["monitor on".into(), format!("{on:.0}")],
            vec!["overhead".into(), format!("{overhead_pct:.2}%")],
        ],
    );
    print_table(
        "E19 — watchdog: overload detection via /debug/health (150 ms sampling)",
        &["phase", "latency ms", "sampling intervals"],
        &[
            vec![
                "detect (queue saturated)".into(),
                format!("{detection_ms:.0}"),
                format!("{detection_intervals:.2}"),
            ],
            vec![
                "resolve (queue drained)".into(),
                format!("{resolution_ms:.0}"),
                format!("{:.2}", resolution_ms / INTERVAL_MS as f64),
            ],
        ],
    );
    assert!(
        overhead_pct <= 2.0,
        "monitor overhead {overhead_pct:.2}% exceeds the 2% budget"
    );
    assert!(
        detection_intervals <= 2.0,
        "detection took {detection_intervals:.2} sampling intervals (> 2)"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e19_watchdog\",\n  \"busy_path\": {{\"users\": {USERS}, \"requests_per_user\": {PER_USER}, \"pairs\": {PAIRS}, \"measured_reps\": {MEASURED_REPS}, \"rps_monitor_off\": {off:.1}, \"rps_monitor_on\": {on:.1}, \"overhead_pct\": {overhead_pct:.3}}},\n  \"detection\": {{\"interval_ms\": {INTERVAL_MS}, \"detection_ms\": {detection_ms:.1}, \"detection_intervals\": {detection_intervals:.3}, \"within_two_intervals\": {}, \"resolution_ms\": {resolution_ms:.1}}}\n}}\n",
        detection_intervals <= 2.0
    );
    let path = "BENCH_e19.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e20_optimizer() {
    use lixto_elog::{
        parse_program, ConceptRegistry, ExecProbe, Extractor, OptimizedPlan, SinglePage,
        WrapperPlan,
    };
    use lixto_workloads::traffic;
    use std::sync::Arc;
    use std::time::Instant;

    const REPS: usize = 301;
    const WARMUP: usize = 50;
    /// Records per benchmark page — large enough that extraction work
    /// dominates per-run fixed costs (the serving-path `page_for`
    /// variants stay at 6–12 records to keep latency tests fast).
    const PAGE_ROWS: usize = 120;

    // One timed single-document run: (wall µs, exec-phase µs, passes).
    // The exec phase is wall minus the probe's fetch and parse time:
    // HTML parsing is roughly half of a single-page run and the
    // optimizer cannot touch it, so the extraction phase is where its
    // effect is visible undiluted. Both engines are measured with a
    // probe attached, so the probe's own clock reads cancel out.
    fn sample(run: &mut impl FnMut(&ExecProbe) -> usize) -> (f64, f64, u64) {
        let probe = ExecProbe::new(None);
        let t = Instant::now();
        std::hint::black_box(run(&probe));
        let wall = t.elapsed().as_secs_f64() * 1e6;
        let overhead = (probe.fetch_ns() + probe.parse_ns()) as f64 / 1e3;
        ((wall - overhead).max(0.0), wall, probe.passes())
    }

    // Median (total µs, exec-phase µs, passes) per engine over REPS
    // runs, the two engines interleaved A/B/A/B so clock drift and
    // frequency scaling hit both distributions equally.
    fn measure(
        reps: usize,
        warmup: usize,
        mut unopt: impl FnMut(&ExecProbe) -> usize,
        mut opt: impl FnMut(&ExecProbe) -> usize,
    ) -> [(f64, f64, u64); 2] {
        for _ in 0..warmup {
            sample(&mut unopt);
            sample(&mut opt);
        }
        let mut series = [
            (Vec::with_capacity(reps), Vec::with_capacity(reps), 0u64),
            (Vec::with_capacity(reps), Vec::with_capacity(reps), 0u64),
        ];
        for _ in 0..reps {
            let (exec, wall, passes) = sample(&mut unopt);
            series[0].0.push(exec);
            series[0].1.push(wall);
            series[0].2 = passes;
            let (exec, wall, passes) = sample(&mut opt);
            series[1].0.push(exec);
            series[1].1.push(wall);
            series[1].2 = passes;
        }
        series.map(|(mut execs, mut totals, passes)| {
            execs.sort_by(f64::total_cmp);
            totals.sort_by(f64::total_cmp);
            (totals[reps / 2], execs[reps / 2], passes)
        })
    }

    let mut rows = Vec::new();
    let mut wrapper_json = Vec::new();
    for profile in traffic::profiles() {
        let program = parse_program(profile.program).expect("workload program parses");
        let plan = Arc::new(
            WrapperPlan::compile(&program, &ConceptRegistry::builtin())
                .expect("workload program compiles"),
        );
        let optimized = Arc::new(OptimizedPlan::new(plan.clone()));
        let report = optimized.report().clone();
        let web = SinglePage {
            url: profile.entry_url.to_string(),
            html: traffic::page_sized(profile.name, 2026, PAGE_ROWS, 0),
        };
        // Hard equivalence gate: the numbers below are meaningless if
        // the optimizer changed a single byte of output. Checked on the
        // benchmark page and on every small serving variant.
        assert_eq!(
            Extractor::from_plan(plan.clone(), &web).run(),
            Extractor::from_optimized(optimized.clone(), &web).run(),
            "{}: optimized execution must be result-identical",
            profile.name
        );
        for variant in 0..traffic::VARIANTS_PER_WRAPPER {
            let small = SinglePage {
                url: profile.entry_url.to_string(),
                html: traffic::page_for(profile.name, 2026, variant),
            };
            assert_eq!(
                Extractor::from_plan(plan.clone(), &small).run(),
                Extractor::from_optimized(optimized.clone(), &small).run(),
                "{} variant {variant}: optimized execution must be result-identical",
                profile.name
            );
        }
        let [(unopt_us, unopt_exec_us, unopt_passes), (opt_us, opt_exec_us, opt_passes)] = measure(
            REPS,
            WARMUP,
            |probe| {
                Extractor::from_plan(plan.clone(), &web)
                    .with_probe(probe)
                    .run()
                    .base
                    .len()
            },
            |probe| {
                Extractor::from_optimized(optimized.clone(), &web)
                    .with_probe(probe)
                    .run()
                    .base
                    .len()
            },
        );
        let optimize_us = time_us(REPS, || {
            std::hint::black_box(OptimizedPlan::new(plan.clone()).report().fused_paths);
        });
        rows.push(vec![
            profile.name.to_string(),
            report.schedule.as_str().to_string(),
            format!("{unopt_exec_us:.1}"),
            format!("{opt_exec_us:.1}"),
            format!("{:.2}x", unopt_exec_us / opt_exec_us),
            format!("{:.2}x", unopt_us / opt_us),
            format!("{unopt_passes}->{opt_passes}"),
        ]);
        wrapper_json.push(format!(
            concat!(
                r#"    {{"wrapper": "{}", "schedule": "{}", "strata": {}, "#,
                r#""fused_paths": {}, "fallback_paths": {}, "hoist_groups": {}, "#,
                r#""hoisted_sites": {}, "reordered_rules": {}, "optimize_once_us": {:.2}, "#,
                r#""unoptimized": {{"total_us": {:.1}, "exec_us": {:.1}, "passes": {}}}, "#,
                r#""optimized": {{"total_us": {:.1}, "exec_us": {:.1}, "passes": {}}}, "#,
                r#""speedup_exec": {:.3}, "speedup_total": {:.3}, "results_identical": true}}"#
            ),
            profile.name,
            report.schedule.as_str(),
            report.strata,
            report.fused_paths,
            report.fallback_paths,
            report.hoist_groups,
            report.hoisted_sites,
            report.reordered_rules,
            optimize_us,
            unopt_us,
            unopt_exec_us,
            unopt_passes,
            opt_us,
            opt_exec_us,
            opt_passes,
            unopt_exec_us / opt_exec_us,
            unopt_us / opt_us,
        ));
    }
    print_table(
        "E20 — plan optimizer: unoptimized vs optimized execution per wrapper (fresh document, extraction phase = wall - fetch - parse)",
        &[
            "wrapper", "schedule", "unopt µs", "opt µs", "speedup", "total speedup", "passes",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"experiment\": \"e20_optimizer\",\n  \"reps\": {REPS},\n  \"page_rows\": {PAGE_ROWS},\n  \"measurement\": \"median over interleaved unopt/opt single-document runs\",\n  \"exec_us_is\": \"wall minus probe fetch+parse time (the phase the optimizer targets)\",\n  \"results_identical\": true,\n  \"wrappers\": [\n{}\n  ]\n}}\n",
        wrapper_json.join(",\n")
    );
    let path = "BENCH_e20.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn e21_watch() {
    use lixto_core::XmlDesign;
    use lixto_elog::SharedWeb;
    use lixto_http::{GatewayConfig, HttpClient, HttpGateway, Json};
    use lixto_server::{
        ExtractionServer, ServerConfig, WatchEvent, WatchRegistry, WatchScheduler, WatchSpec,
        WrapperRegistry,
    };
    use lixto_workloads::http_traffic::extract_body;
    use lixto_workloads::traffic::{perturbed_requests, watch_page, watch_profiles};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    const WATCHES: usize = 120;
    const USERS: usize = 16;
    const PER_USER: usize = 25;
    const MEASURED_REPS: usize = 3;
    const PAIRS: usize = 4;
    const SEED: u64 = 2026;
    const WATCH_INTERVAL_MS: u64 = 100;

    let fleet = watch_profiles(WATCHES);

    // Part 1: the interactive-path throughput tax of a live watch fleet.
    // One pool, one gateway, one serial client (as in E19: a client
    // thread fleet measures the scheduler, not the gateway). Measured
    // blocks alternate watches-off / watches-on in order-balanced
    // off/on/on/off pairs so machine drift hits both modes equally, and
    // each block replays a distinct perturbed-traffic epoch (documents
    // mutate between blocks, as live sources do). During every "on"
    // phase all 120 watches tick against the shared pool AND absorb one
    // full diff wave (every watched page content-mutates mid-phase).
    let registry = lixto_bench::workload_registry();
    for p in &fleet {
        registry
            .register_source(&p.name, &p.program, XmlDesign::new().root("offers"))
            .expect("watch wrapper compiles");
    }
    let web = Arc::new(SharedWeb::new());
    for (i, p) in fleet.iter().enumerate() {
        web.put(&p.url, watch_page(i, SEED, 0, 0));
    }
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 2,
            // Two workers per shard: the fleet's ticks (cache hits plus
            // one miss wave per phase) absorb into spare worker
            // capacity instead of queueing behind the serial
            // interactive client — the deployment shape the
            // never-starve-interactive-traffic submission is for.
            workers_per_shard: 2,
            queue_capacity: 128,
            cache_capacity: 1024,
            store: None,
        },
        registry,
        web.clone(),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 1,
            watch_tick: Duration::from_millis(25),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .expect("bind gateway");
    let mut client = HttpClient::connect(gateway.addr()).expect("connect");

    let blocks = 4 * PAIRS;
    let bodies: Vec<Vec<String>> = (0..blocks as u64)
        .map(|epoch| {
            perturbed_requests(SEED, USERS, PER_USER, epoch)
                .iter()
                .map(|r| extract_body(r.wrapper, &r.url, &r.html))
                .collect()
        })
        .collect();
    let sweep = |client: &mut HttpClient, bodies: &[String]| {
        for body in bodies {
            let response = client.post_json("/extract", body).expect("extract");
            assert_eq!(response.status, 200, "{}", response.text());
        }
    };
    let timed = |client: &mut HttpClient, bodies: &[String]| -> f64 {
        let t = Instant::now();
        for _ in 0..MEASURED_REPS {
            sweep(client, bodies);
        }
        t.elapsed().as_secs_f64()
    };
    let put_fleet = |client: &mut HttpClient| {
        for (i, p) in fleet.iter().enumerate() {
            let body = format!(
                r#"{{"wrapper":"{}","url":"{}","interval_ms":{WATCH_INTERVAL_MS}}}"#,
                p.name, p.url
            );
            let response = client
                .put_json(&format!("/watches/w{i}"), &body)
                .expect("put watch");
            assert!(
                response.status == 201 || response.status == 200,
                "{}",
                response.text()
            );
        }
    };
    let delete_fleet = |client: &mut HttpClient| {
        for i in 0..fleet.len() {
            let response = client
                .request("DELETE", &format!("/watches/w{i}"), &[], None)
                .expect("delete watch");
            assert_eq!(response.status, 200, "{}", response.text());
        }
    };

    // Warm pass: compile every plan, prime the first epoch's documents.
    sweep(&mut client, &bodies[0]);
    let mut secs_off = Vec::with_capacity(2 * PAIRS);
    let mut secs_on = Vec::with_capacity(2 * PAIRS);
    let mut block = 0usize;
    for pair in 0..PAIRS {
        secs_off.push(timed(&mut client, &bodies[block]));
        block += 1;
        put_fleet(&mut client);
        // The diff wave: every watched page changes content while the
        // fleet is live and interactive traffic is being measured.
        for (i, p) in fleet.iter().enumerate() {
            let revision = (pair + 1) as u64;
            web.put(&p.url, watch_page(i, SEED, revision, revision));
        }
        secs_on.push(timed(&mut client, &bodies[block]));
        block += 1;
        secs_on.push(timed(&mut client, &bodies[block]));
        block += 1;
        if pair == PAIRS - 1 {
            // The fleet must actually have been active while measured.
            let metrics = client
                .get_accept("/metrics", "application/json")
                .expect("metrics")
                .json()
                .expect("metrics json");
            let watches = metrics.get("watches").expect("watches section");
            assert_eq!(
                watches.get("registered").and_then(Json::as_u64),
                Some(WATCHES as u64),
                "fleet not registered during measurement"
            );
            let ticked: u64 = watches
                .get("watches")
                .and_then(Json::as_array)
                .expect("watch list")
                .iter()
                .map(|w| w.get("ticks").and_then(Json::as_u64).unwrap_or(0))
                .sum();
            assert!(ticked >= WATCHES as u64, "fleet never ticked");
        }
        delete_fleet(&mut client);
        secs_off.push(timed(&mut client, &bodies[block]));
        block += 1;
    }
    let median_secs = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let block_requests = (MEASURED_REPS * USERS * PER_USER) as f64;
    let rps_off = block_requests / median_secs(&mut secs_off);
    let rps_on = block_requests / median_secs(&mut secs_on);
    let ratio = rps_on / rps_off;
    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();

    // Part 2: freshness — content-mutation-to-delivery latency across
    // the fleet, measured at the scheduler sink (no HTTP in the timed
    // path). Each round first replays a perturb-only epoch (bytes move,
    // records do not): the instance-level differ must stay silent.
    // Then every page's content revision advances and all 120 diffs
    // must arrive.
    let registry = Arc::new(WrapperRegistry::new());
    for p in &fleet {
        registry
            .register_source(&p.name, &p.program, XmlDesign::new().root("offers"))
            .expect("watch wrapper compiles");
    }
    let web = Arc::new(SharedWeb::new());
    for (i, p) in fleet.iter().enumerate() {
        web.put(&p.url, watch_page(i, SEED, 0, 0));
    }
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 256,
            cache_capacity: 1024,
            store: None,
        },
        registry,
        web.clone(),
    ));
    let watches = Arc::new(WatchRegistry::new());
    for (i, p) in fleet.iter().enumerate() {
        watches.put(
            &format!("w{i}"),
            WatchSpec {
                wrapper: p.name.clone(),
                url: p.url.clone(),
                interval: Duration::from_millis(WATCH_INTERVAL_MS),
                webhook: None,
            },
        );
    }
    let (tx, rx) = mpsc::channel::<WatchEvent>();
    let scheduler = WatchScheduler::start(
        server.clone(),
        watches.clone(),
        Duration::from_millis(10),
        Box::new(move |event| {
            let _ = tx.send(event);
        }),
    );
    // Baseline: every watch has seen its page once.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !watches.sample().watches.iter().all(|w| w.ticks >= 1) {
        assert!(Instant::now() < deadline, "fleet never baselined");
        std::thread::sleep(Duration::from_millis(10));
    }

    const ROUNDS: u64 = 4;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(WATCHES * ROUNDS as usize);
    let mut perturb_only_events = 0usize;
    for round in 1..=ROUNDS {
        // Perturb-only epoch: same revision, new bytes on every page.
        for (i, p) in fleet.iter().enumerate() {
            web.put(&p.url, watch_page(i, SEED, round - 1, 100 + round));
        }
        std::thread::sleep(Duration::from_millis(4 * WATCH_INTERVAL_MS));
        while rx.try_recv().is_ok() {
            perturb_only_events += 1;
        }
        // Content mutation: the whole fleet must deliver, promptly.
        let mutated_at = Instant::now();
        for (i, p) in fleet.iter().enumerate() {
            web.put(&p.url, watch_page(i, SEED, round, 200 + round));
        }
        for _ in 0..WATCHES {
            let event = rx
                .recv_timeout(Duration::from_secs(30))
                .expect("diff wave delivery");
            assert!(!event.diff.is_empty(), "a content mutation implies a diff");
            latencies_ms.push(mutated_at.elapsed().as_secs_f64() * 1e3);
        }
    }
    scheduler.stop();
    server.initiate_shutdown();
    latencies_ms.sort_by(f64::total_cmp);
    let quantile = |q: f64| -> f64 {
        let idx = ((latencies_ms.len() - 1) as f64 * q).round() as usize;
        latencies_ms[idx]
    };
    let (p50_ms, p99_ms) = (quantile(0.50), quantile(0.99));

    print_table(
        "E21 — continuous extraction: interactive throughput with a 120-watch fleet",
        &["mode", "req/s (median block, 4 balanced pairs)"],
        &[
            vec!["watches off".into(), format!("{rps_off:.0}")],
            vec!["120 watches on".into(), format!("{rps_on:.0}")],
            vec!["on/off ratio".into(), format!("{ratio:.3}")],
        ],
    );
    print_table(
        &format!(
            "E21 — continuous extraction: freshness over {} mutation waves ({} diffs)",
            ROUNDS,
            latencies_ms.len()
        ),
        &["quantile", "mutation → delivery ms"],
        &[
            vec!["p50".into(), format!("{p50_ms:.0}")],
            vec!["p99".into(), format!("{p99_ms:.0}")],
            vec![
                "perturb-only deliveries".into(),
                format!("{perturb_only_events}"),
            ],
        ],
    );
    assert!(
        ratio >= 0.95,
        "interactive throughput with the fleet active is {ratio:.3}x baseline (< 0.95)"
    );
    assert_eq!(
        perturb_only_events, 0,
        "irrelevant-markup epochs must deliver nothing"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e21_watch\",\n  \"interactive\": {{\"users\": {USERS}, \"requests_per_user\": {PER_USER}, \"pairs\": {PAIRS}, \"measured_reps\": {MEASURED_REPS}, \"watches\": {WATCHES}, \"watch_interval_ms\": {WATCH_INTERVAL_MS}, \"rps_watches_off\": {rps_off:.1}, \"rps_watches_on\": {rps_on:.1}, \"throughput_ratio\": {ratio:.4}, \"meets_095_floor\": {}}},\n  \"freshness\": {{\"watches\": {WATCHES}, \"rounds\": {ROUNDS}, \"scheduler_tick_ms\": 10, \"p50_ms\": {p50_ms:.1}, \"p99_ms\": {p99_ms:.1}, \"perturb_only_deliveries\": {perturb_only_events}}}\n}}\n",
        ratio >= 0.95
    );
    let path = "BENCH_e21.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
