//! E15: compile-once wrapper plans — interpreted-AST evaluation vs
//! compiled-plan execution on the cache-miss path, per workload wrapper,
//! plus the cost of compilation itself (to show it amortizes after a
//! handful of documents).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_elog::{parse_program, Extractor, SinglePage, WrapperPlan};
use lixto_workloads::traffic;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_plan_compile");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for profile in traffic::profiles() {
        let program = parse_program(profile.program).expect("workload program parses");
        let plan = Arc::new(
            WrapperPlan::compile(&program, &lixto_elog::ConceptRegistry::builtin())
                .expect("workload program compiles"),
        );
        let web = SinglePage {
            url: profile.entry_url.to_string(),
            html: traffic::page_for(profile.name, 2026, 0),
        };
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(
            BenchmarkId::new("interpreted", profile.name),
            &profile.name,
            |b, _| {
                let ex = Extractor::new(program.clone(), &web);
                b.iter(|| std::hint::black_box(ex.run_interpreted().base.len()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("compiled", profile.name),
            &profile.name,
            |b, _| {
                let ex = Extractor::from_plan(plan.clone(), &web);
                b.iter(|| std::hint::black_box(ex.run().base.len()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("compile_only", profile.name),
            &profile.name,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        WrapperPlan::compile(&program, &lixto_elog::ConceptRegistry::builtin())
                            .expect("compiles")
                            .rules()
                            .len(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
