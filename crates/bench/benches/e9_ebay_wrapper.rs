//! E9: the Figure 5 eBay wrapper — extraction throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let program = lixto_elog::parse_program(lixto_elog::EBAY_PROGRAM).unwrap();
    let mut g = c.benchmark_group("e9_ebay_wrapper");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [10usize, 50, 250] {
        let (web, _) = lixto_workloads::ebay::site(7, n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &web, |b, web| {
            b.iter(|| {
                lixto_elog::Extractor::new(program.clone(), web)
                    .run()
                    .base
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
