//! E1: monadic datalog over trees — O(|P|·|dom|) scaling (Theorem 2.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn doc_of(n: usize) -> lixto_tree::Document {
    let row = "<tr><td><i>x</i></td></tr>";
    lixto_html::parse(&format!("<table>{}</table>", row.repeat(n / 4)))
}

fn bench(c: &mut Criterion) {
    let program = lixto_datalog::parse_program(
        r#"italic(X) :- label(X, "i").
           italic(X) :- italic(X0), firstchild(X0, X).
           italic(X) :- italic(X0), nextsibling(X0, X)."#,
    )
    .unwrap();
    let mut g = c.benchmark_group("e1_monadic_datalog_vs_dom");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1_000usize, 4_000, 16_000, 64_000] {
        let doc = doc_of(n);
        g.throughput(Throughput::Elements(doc.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(doc.len()), &doc, |b, doc| {
            b.iter(|| {
                lixto_datalog::MonadicEvaluator::new(doc)
                    .eval(&program)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
