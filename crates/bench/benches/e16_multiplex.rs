//! E16: the multiplexed gateway — batched `/extract` vs per-request
//! `POST /extract` on tiny documents (the framing-dominated regime the
//! batch endpoint exists for), and mixed-workload throughput through
//! the event-driven connection core.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_core::XmlDesign;
use lixto_elog::StaticWeb;
use lixto_http::{GatewayConfig, HttpClient, HttpGateway};
use lixto_server::{ExtractionServer, ServerConfig, WrapperRegistry};
use lixto_workloads::http_traffic;

const TINY_WRAPPER: &str =
    r#"offer(S, X) :- document("http://tiny/", S), subelem(S, (?.li, []), X)."#;

fn tiny_stack() -> (HttpGateway, Arc<ExtractionServer>) {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source("tiny", TINY_WRAPPER, XmlDesign::new().root("items"))
        .unwrap();
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 256,
            cache_capacity: 64,
            store: None,
        },
        registry,
        Arc::new(StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 2,
            max_batch_items: 256,
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .expect("bind gateway");
    (gateway, server)
}

fn bench_batch_vs_individual(c: &mut Criterion) {
    const REQUESTS: usize = 256;
    let bodies = http_traffic::tiny_extract_bodies("tiny", "http://tiny/", REQUESTS, 16);

    let mut g = c.benchmark_group("e16_tiny_docs");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(REQUESTS as u64));

    {
        let (gateway, server) = tiny_stack();
        let addr = gateway.addr();
        g.bench_function(BenchmarkId::from_parameter("individual"), |b| {
            let mut client = HttpClient::connect(addr).expect("connect");
            b.iter(|| {
                for body in &bodies {
                    let response = client.post_json("/extract", body).expect("extract");
                    assert_eq!(response.status, 200);
                }
            })
        });
        gateway.shutdown();
        server.initiate_shutdown();
    }

    for batch_size in [16usize, 64] {
        let (gateway, server) = tiny_stack();
        let addr = gateway.addr();
        let batches = http_traffic::batch_bodies(&bodies, batch_size);
        g.bench_with_input(
            BenchmarkId::new("batched", batch_size),
            &batch_size,
            |b, _| {
                let mut client = HttpClient::connect(addr).expect("connect");
                b.iter(|| {
                    for batch in &batches {
                        let response = client.post_json("/extract/batch", batch).expect("batch");
                        assert_eq!(response.status, 200);
                    }
                })
            },
        );
        gateway.shutdown();
        server.initiate_shutdown();
    }
    g.finish();
}

fn bench_mixed_workload(c: &mut Criterion) {
    const USERS: usize = 16;
    const PER_USER: usize = 8;
    let requests = http_traffic::requests(99, USERS, PER_USER);
    let mut g = c.benchmark_group("e16_mixed_workload");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(requests.len() as u64));
    for clients in [4usize, 16] {
        let server = Arc::new(ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 2,
                queue_capacity: 128,
                cache_capacity: 64,
                store: None,
            },
            lixto_bench::workload_registry(),
            Arc::new(StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind("127.0.0.1:0", GatewayConfig::default(), server.clone())
            .expect("bind gateway");
        let addr = gateway.addr();
        g.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for chunk in requests.chunks(requests.len().div_ceil(clients)) {
                        scope.spawn(move || {
                            let mut client = HttpClient::connect(addr).expect("connect");
                            for r in chunk {
                                let response =
                                    client.post_json("/extract", &r.body).expect("extract");
                                assert_eq!(response.status, 200);
                            }
                        });
                    }
                })
            })
        });
        gateway.shutdown();
        server.initiate_shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_batch_vs_individual, bench_mixed_workload);
criterion_main!(benches);
