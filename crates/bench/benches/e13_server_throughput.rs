//! E13b: serving-layer throughput — mixed wrapper traffic through the
//! sharded `lixto_server` worker pool, swept over shard counts.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_bench::workload_registry;
use lixto_elog::StaticWeb;
use lixto_server::{ExtractionRequest, ExtractionServer, RequestSource, ServerConfig};
use lixto_workloads::traffic;

fn bench(c: &mut Criterion) {
    const USERS: usize = 16;
    const PER_USER: usize = 8;
    let requests: Vec<ExtractionRequest> = traffic::requests(99, USERS, PER_USER)
        .into_iter()
        .map(|r| ExtractionRequest {
            trace: None,
            wrapper: r.wrapper.to_string(),
            version: None,
            source: RequestSource::Inline {
                url: r.url,
                html: r.html,
            },
        })
        .collect();
    let mut g = c.benchmark_group("e13_server_throughput");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(requests.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        // One pool per configuration; each iteration replays the whole
        // batch (cold cache only on the first pass — steady-state serving).
        let server = ExtractionServer::start(
            ServerConfig {
                shards,
                workers_per_shard: 1,
                queue_capacity: 64,
                cache_capacity: 64,
                store: None,
            },
            workload_registry(),
            Arc::new(StaticWeb::new()),
        );
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                let tickets: Vec<_> = requests
                    .iter()
                    .map(|r| server.submit(r.clone()).expect("submit"))
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("job completes").cache_hit as usize)
                    .sum::<usize>()
            })
        });
        server.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
