//! E20: the plan optimizer — unoptimized plan execution vs optimized
//! execution (single-pass rule schedule, fused path automata,
//! shared-sub-matcher hoisting, reordered conditions) on the cache-miss
//! path, per workload wrapper, plus the cost of the optimize phase
//! itself (paid once per deploy).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_elog::{parse_program, Extractor, OptimizedPlan, SinglePage, WrapperPlan};
use lixto_workloads::traffic;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e20_optimizer");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for profile in traffic::profiles() {
        let program = parse_program(profile.program).expect("workload program parses");
        let plan = Arc::new(
            WrapperPlan::compile(&program, &lixto_elog::ConceptRegistry::builtin())
                .expect("workload program compiles"),
        );
        let optimized = Arc::new(OptimizedPlan::new(plan.clone()));
        let web = SinglePage {
            url: profile.entry_url.to_string(),
            html: traffic::page_for(profile.name, 2026, 0),
        };
        // The optimizer must never change results, bench included.
        assert_eq!(
            Extractor::from_plan(plan.clone(), &web).run(),
            Extractor::from_optimized(optimized.clone(), &web).run(),
            "{}: optimized execution must be result-identical",
            profile.name
        );
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(
            BenchmarkId::new("unoptimized", profile.name),
            &profile.name,
            |b, _| {
                let ex = Extractor::from_plan(plan.clone(), &web);
                b.iter(|| std::hint::black_box(ex.run().base.len()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("optimized", profile.name),
            &profile.name,
            |b, _| {
                let ex = Extractor::from_optimized(optimized.clone(), &web);
                b.iter(|| std::hint::black_box(ex.run().base.len()))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("optimize_only", profile.name),
            &profile.name,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(OptimizedPlan::new(plan.clone()).report().fused_paths)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
