//! E12: the Figure 7 books pipeline — end-to-end tick latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lixto_transform::*;
use lixto_xml::Element;

fn books_pipe() -> InfoPipe {
    let mut pipe = InfoPipe::new();
    let a = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_A_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopA"),
        }),
        Trigger::EveryTick,
    );
    let b = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_B_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopB"),
        }),
        Trigger::EveryTick,
    );
    let m = pipe.stage(
        Component::Integrate {
            root: "books".into(),
        },
        vec![a, b],
    );
    let f = pipe.stage(
        Component::Transform(Box::new(|inp: &[Element]| Some(inp[0].clone()))),
        vec![m],
    );
    pipe.stage(
        Component::Deliver {
            channel: "portal".into(),
            only_on_change: false,
        },
        vec![f],
    );
    pipe
}

fn bench(c: &mut Criterion) {
    let pipe = books_pipe();
    let mut g = c.benchmark_group("e12_pipeline_tick");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for per_shop in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(per_shop), &per_shop, |b, &n| {
            b.iter(|| {
                run_ticks(&pipe, 1, &|_| {
                    Box::new(lixto_workloads::books::site(5, n).0)
                })
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
