//! E19: the cost of watching — gateway throughput on the E14 mixed
//! traffic with the continuous monitor (metrics-history sampler + SLO
//! watchdog) switched on vs off. The two configurations serve
//! identical request streams from identical pools; the delta is the
//! monitoring tax, budgeted at 2%.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_bench::workload_registry;
use lixto_elog::StaticWeb;
use lixto_http::{GatewayConfig, HttpClient, HttpGateway};
use lixto_server::{ExtractionServer, ServerConfig};
use lixto_workloads::http_traffic;

fn bench(c: &mut Criterion) {
    const USERS: usize = 16;
    const PER_USER: usize = 8;
    const CLIENTS: usize = 4;
    let requests = http_traffic::requests(99, USERS, PER_USER);
    let mut g = c.benchmark_group("e19_watchdog");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g.throughput(Throughput::Elements(requests.len() as u64));
    for monitor in [false, true] {
        let server = Arc::new(ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 2,
                queue_capacity: 128,
                cache_capacity: 64,
                store: None,
            },
            workload_registry(),
            Arc::new(StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: CLIENTS,
                monitor,
                monitor_interval: Duration::from_millis(100),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .expect("bind gateway");
        let addr = gateway.addr();
        let label = if monitor { "monitor_on" } else { "monitor_off" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &monitor, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for chunk in requests.chunks(requests.len().div_ceil(CLIENTS)) {
                        scope.spawn(move || {
                            let mut client = HttpClient::connect(addr).expect("connect");
                            for r in chunk {
                                let response =
                                    client.post_json("/extract", &r.body).expect("extract");
                                assert_eq!(response.status, 200);
                            }
                        });
                    }
                })
            })
        });
        gateway.shutdown();
        server.initiate_shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
