//! E4: naive (2002-style, exponential) vs polynomial XPath evaluation
//! (Theorem 4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let doc = lixto_html::parse(&format!("<div>{}</div>", "<a>x</a>".repeat(3)));
    let mut g = c.benchmark_group("e4_xpath");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [4usize, 6, 8] {
        let q = lixto_xpath::parse(&lixto_xpath::naive::pathological_query(depth)).unwrap();
        g.bench_with_input(BenchmarkId::new("naive", depth), &q, |b, q| {
            b.iter(|| lixto_xpath::naive::eval_naive(&doc, q).len())
        });
        g.bench_with_input(BenchmarkId::new("poly", depth), &q, |b, q| {
            b.iter(|| lixto_xpath::cvt::eval(&doc, q).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
