//! E8: the CQ-over-trees dichotomy (Figure 6 / [18]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lixto_cq::{generate, generic, yannakakis, CqAxis};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_cq_dichotomy");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for k in [3usize, 4, 5] {
        let (doc, cq) = generate::hard_instance(k, 5);
        g.bench_with_input(BenchmarkId::new("np_hard_gadget", k), &(), |b, _| {
            b.iter(|| generic::eval_boolean(&doc, &cq))
        });
        let mut rng = StdRng::seed_from_u64(k as u64);
        let doc2 = generate::random_tree(&mut rng, doc.len(), &["s", "d", "t"]);
        let cq2 = generate::random_acyclic_cq(
            &mut rng,
            1 + 2 * k,
            &[CqAxis::Child, CqAxis::NextSiblingPlus],
            &["s", "d", "t"],
        );
        g.bench_with_input(BenchmarkId::new("tractable_acyclic", k), &(), |b, _| {
            b.iter(|| yannakakis::eval_boolean(&doc2, &cq2).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
