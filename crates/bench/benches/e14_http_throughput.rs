//! E14: gateway throughput — mixed wrapper traffic through the full
//! loopback HTTP path (`lixto_http` gateway → `lixto_server` pool),
//! swept over concurrent keep-alive client counts.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_bench::workload_registry;
use lixto_elog::StaticWeb;
use lixto_http::{GatewayConfig, HttpClient, HttpGateway};
use lixto_server::{ExtractionServer, ServerConfig};
use lixto_workloads::http_traffic;

fn bench(c: &mut Criterion) {
    const USERS: usize = 16;
    const PER_USER: usize = 8;
    let requests = http_traffic::requests(99, USERS, PER_USER);
    let mut g = c.benchmark_group("e14_http_throughput");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(requests.len() as u64));
    for clients in [1usize, 4, 8] {
        let server = Arc::new(ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 2,
                queue_capacity: 128,
                cache_capacity: 64,
                store: None,
            },
            workload_registry(),
            Arc::new(StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: clients,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .expect("bind gateway");
        let addr = gateway.addr();
        g.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, _| {
            b.iter(|| {
                // Each client thread owns one keep-alive connection and
                // replays its slice of the stream (cold cache only on the
                // very first pass — steady-state serving).
                std::thread::scope(|scope| {
                    for chunk in requests.chunks(requests.len().div_ceil(clients)) {
                        scope.spawn(move || {
                            let mut client = HttpClient::connect(addr).expect("connect");
                            let mut hits = 0usize;
                            for r in chunk {
                                let response =
                                    client.post_json("/extract", &r.body).expect("extract");
                                assert_eq!(response.status, 200);
                                hits += response.text().contains("\"cache_hit\":true") as usize;
                            }
                            hits
                        });
                    }
                })
            })
        });
        gateway.shutdown();
        server.initiate_shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
