//! E17: persistence — replaying restart-heavy traffic against a server
//! whose result store was recovered from disk (warm restart) vs one
//! rebuilding its cache by executing plans (cold rewarm). Each
//! iteration restarts the server, so the measured quantity is the full
//! recover-and-serve (or rewarm-and-serve) cost.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_bench::workload_registry;
use lixto_elog::StaticWeb;
use lixto_server::{ExtractionRequest, ExtractionServer, RequestSource, ServerConfig, StoreConfig};
use lixto_workloads::traffic;

fn bench(c: &mut Criterion) {
    const USERS: usize = 8;
    const PER_USER: usize = 8;
    const POOL: u64 = 3;
    let requests: Vec<ExtractionRequest> = traffic::restart_requests(99, USERS, PER_USER, POOL)
        .into_iter()
        .map(|r| ExtractionRequest {
            trace: None,
            wrapper: r.wrapper.to_string(),
            version: None,
            source: RequestSource::Inline {
                url: r.url,
                html: r.html,
            },
        })
        .collect();

    let root = std::env::temp_dir().join(format!("lixto-bench-e17-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let start = |dir: &std::path::Path| {
        ExtractionServer::start(
            ServerConfig {
                shards: 4,
                workers_per_shard: 1,
                queue_capacity: 64,
                cache_capacity: 64,
                store: Some(StoreConfig::new(dir)),
            },
            workload_registry(),
            Arc::new(StaticWeb::new()),
        )
    };
    let replay = |server: &ExtractionServer| {
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| server.submit(r.clone()).expect("submit"))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().expect("job completes").cache_hit as usize)
            .sum::<usize>()
    };

    // Seed the warm directory once, outside the measurement.
    let warm_dir = root.join("warm");
    let seed = start(&warm_dir);
    replay(&seed);
    seed.shutdown();

    let mut g = c.benchmark_group("e17_persistence");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(requests.len() as u64));
    g.bench_with_input(BenchmarkId::from_parameter("cold_rewarm"), &(), |b, ()| {
        b.iter(|| {
            // A fresh empty store directory every iteration: every
            // distinct document pays one plan execution.
            let dir = root.join("cold");
            let _ = std::fs::remove_dir_all(&dir);
            let server = start(&dir);
            let hits = replay(&server);
            server.shutdown();
            hits
        })
    });
    g.bench_with_input(BenchmarkId::from_parameter("warm_restart"), &(), |b, ()| {
        b.iter(|| {
            // Reopen the seeded store: recovery + disk promotion serve
            // the whole stream without executing a single plan.
            let server = start(&warm_dir);
            let hits = replay(&server);
            server.shutdown();
            hits
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench);
criterion_main!(benches);
