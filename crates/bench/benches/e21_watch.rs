//! E21: continuous extraction — the per-tick cost of the watch layer's
//! hot pieces. A watch tick re-extracts a page and diffs the new
//! instance snapshot against the last delivered one, so this bench
//! measures (a) `diff_snapshots` at growing snapshot sizes, for both an
//! unchanged page (the suppressed steady state every tick pays) and a
//! 10%-churned one, and (b) a full single-watch recompute+diff over the
//! workload watch page.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lixto_elog::{parse_program, Extractor, SinglePage};
use lixto_transform::{diff_snapshots, ExtractionSnapshot};
use lixto_workloads::traffic::{watch_page, watch_profiles};

fn snapshot(instances: usize, churn_from: usize) -> ExtractionSnapshot {
    ExtractionSnapshot::from_pairs((0..instances).map(|i| {
        let text = if i >= churn_from {
            format!("item-{i}-changed")
        } else {
            format!("item-{i}")
        };
        (format!("p{}", i % 4), text)
    }))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_watch");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));

    for &n in &[10usize, 100, 1000] {
        let before = snapshot(n, n);
        let unchanged = snapshot(n, n);
        let churned = snapshot(n, n - n / 10);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("diff_unchanged", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(diff_snapshots(&before, &unchanged).len()))
        });
        g.bench_with_input(BenchmarkId::new("diff_churned", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(diff_snapshots(&before, &churned).len()))
        });
    }

    // One full watch tick, minus the pool: extract the watch page and
    // diff it against the baseline snapshot.
    let profile = &watch_profiles(1)[0];
    let program = parse_program(&profile.program).expect("watch wrapper parses");
    let run = |revision: u64| {
        let web = SinglePage {
            url: profile.url.clone(),
            html: watch_page(0, 2026, revision, revision),
        };
        let result = Extractor::new(program.clone(), &web).run();
        ExtractionSnapshot::from_pairs(
            result
                .patterns()
                .iter()
                .flat_map(|p| result.texts_of(p).into_iter().map(move |t| (p.clone(), t))),
        )
    };
    let baseline = run(0);
    g.throughput(Throughput::Elements(1));
    g.bench_function(
        BenchmarkId::from_parameter("tick_recompute_and_diff"),
        |b| b.iter(|| std::hint::black_box(diff_snapshots(&baseline, &run(1)).len())),
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
