//! The Figure 7 information pipe: two differently-shaped book shops →
//! integrate → transform (sort by price) → deliver.
//!
//! ```text
//! cargo run --example books_pipeline
//! ```

use lixto_transform::*;
use lixto_xml::Element;

fn main() {
    let mut pipe = InfoPipe::new();
    let a = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_A_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopA"),
        }),
        Trigger::EveryTick,
    );
    let b = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_B_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopB"),
        }),
        Trigger::EveryTick,
    );
    let merged = pipe.stage(
        Component::Integrate {
            root: "books".into(),
        },
        vec![a, b],
    );
    // Transformer: sort books by price (cheapest first).
    let sorted = pipe.stage(
        Component::Transform(Box::new(|inputs: &[Element]| {
            let mut books: Vec<Element> = inputs[0].children_named("book").cloned().collect();
            books.sort_by(|x, y| {
                let p = |e: &Element| {
                    e.text_content()
                        .split("EUR")
                        .nth(1)
                        .and_then(|s| s.trim().parse::<f64>().ok())
                        .unwrap_or(f64::MAX)
                };
                p(x).total_cmp(&p(y))
            });
            let mut out = Element::new("books");
            for bk in books {
                out.push_element(bk);
            }
            Some(out)
        })),
        vec![merged],
    );
    pipe.stage(
        Component::Deliver {
            channel: "portal".into(),
            only_on_change: false,
        },
        vec![sorted],
    );

    let delivered = run_ticks(&pipe, 1, &|_| {
        Box::new(lixto_workloads::books::site(7, 4).0)
    });
    for (tick, msg) in delivered {
        println!("tick {tick} → channel '{}':", msg.channel);
        let doc = lixto_xml::parse(&msg.body).unwrap();
        println!("{}", lixto_xml::to_string_pretty(&doc));
    }
}
