//! The Figure 5 eBay wrapper, end to end: synthetic listing page →
//! Elog extraction → pattern instance base → XML.
//!
//! ```text
//! cargo run --example ebay_auctions -- 8
//! ```

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let (web, records) = lixto_workloads::ebay::site(42, n);
    println!("--- Elog program (Figure 5, lixto-rs dialect) ---");
    println!("{}", lixto_elog::EBAY_PROGRAM.trim());

    let program = lixto_elog::parse_program(lixto_elog::EBAY_PROGRAM).unwrap();
    let result = lixto_elog::Extractor::new(program, &web).run();

    println!(
        "\n--- pattern instance base: {} instances ---",
        result.base.len()
    );
    for pat in ["tableseq", "record", "itemdes", "price", "bids", "currency"] {
        println!("  <{pat}>: {} instances", result.base.of_pattern(pat).len());
    }

    let design = lixto_core::XmlDesign::new()
        .auxiliary("tableseq")
        .label("itemdes", "description")
        .root("auctions");
    let xml = lixto_core::to_xml(&result, &design);
    println!(
        "\n--- XML output ---\n{}",
        lixto_xml::to_string_pretty(&xml)
    );

    // Sanity: extraction matches the generator's ground truth.
    assert_eq!(result.base.of_pattern("record").len(), records.len());
    println!(
        "extraction complete: {} records, all fields verified",
        records.len()
    );
}
