//! The Interactive Pattern Builder (Section 3.2 / Figures 3–4): define a
//! wrapper with "mouse clicks" against ONE example document, watch the
//! Elog program grow, and run it.
//!
//! ```text
//! cargo run --example visual_builder
//! ```

use lixto_core::PatternBuilder;
use lixto_elog::{AttrMode, Condition, ElementPath};

fn main() {
    let (web, records) = lixto_workloads::ebay::site(11, 3);
    let _ = web;
    let page = lixto_workloads::ebay::listing_page(&records);
    let mut b = PatternBuilder::new("www.ebay.com/", &page);

    // The "designer" clicks the first record table...
    let doc = b.document();
    let table = doc
        .node_ids()
        .find(|&n| {
            doc.label_str(n) == "table" && doc.text_content(n).contains(&records[0].description)
        })
        .unwrap();
    println!("highlighted <page> regions: {:?}", b.highlight("page"));

    // ...the system proposes a path; too specific, so generalize and add
    // a "contains a link" condition (the refinement loop of Figure 3).
    let draft = b.click("page", "record", table);
    let draft = draft.generalize().add_condition(Condition::Contains {
        path: ElementPath::anywhere("a"),
        negated: false,
    });
    println!("filter test button: {} matches", draft.matches().len());
    draft.commit();

    // Click a price cell inside a record.
    let doc = b.document();
    let price = doc
        .node_ids()
        .find(|&n| {
            doc.label_str(n) == "td" && doc.text_content(n).contains("$")
                || doc.label_str(n) == "td" && doc.text_content(n).contains("EUR")
        })
        .unwrap();
    let draft = b.click("record", "price", price);
    let draft = draft.generalize().add_condition(Condition::Contains {
        path: ElementPath {
            steps: vec![lixto_elog::PathStep {
                descend: true,
                tag: lixto_elog::TagTest::Name("#text".into()),
            }],
            attrs: vec![lixto_elog::AttrCond {
                attr: "elementtext".into(),
                pattern: r"(\$|EUR|DM)".into(),
                mode: AttrMode::Regvar,
            }],
        },
        negated: false,
    });
    draft.commit();

    // The program was generated behind the clicks (Figure 4's tree view):
    println!("\n--- generated Elog program ---\n{}", b.program());

    let result = b.run();
    println!("--- extraction on the example page ---");
    println!("records: {:?}", result.texts_of("record").len());
    println!("prices:  {:?}", result.texts_of("price"));
}
