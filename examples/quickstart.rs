//! Quickstart: wrap a page with a five-line Elog program and print XML.
//!
//! ```text
//! cargo run --example quickstart
//! ```

fn main() {
    // A page to wrap (in-memory; lixto_elog::WebSource abstracts HTTP).
    let mut web = lixto_elog::StaticWeb::new();
    web.put(
        "http://shop/",
        "<html><body><h1>Offers</h1>
           <ul>
             <li><b>Espresso machine</b> — EUR 89.00</li>
             <li><b>Grinder</b> — EUR 45.50</li>
           </ul></body></html>",
    );

    // An Elog wrapper: offers are the <li>s, each with a name and a price.
    let program = lixto_elog::parse_program(
        r#"
        offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X).
        name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
        price(S, X) :- offer(_, S), subtext(S, "EUR [0-9.]+", X).
        "#,
    )
    .expect("valid Elog");

    // Run the Extractor, map the instance base to XML, print it.
    let result = lixto_elog::Extractor::new(program, &web).run();
    let design = lixto_core::XmlDesign::new().root("offers");
    let xml = lixto_core::to_xml(&result, &design);
    print!("{}", lixto_xml::to_string_pretty(&xml));
}
