//! Serve the extraction pool over HTTP.
//!
//! ```text
//! cargo run --release --example http_gateway
//! ```
//!
//! Registers the five workload wrappers, preloads a synthetic web with
//! each wrapper's entry page, starts an [`ExtractionServer`] pool and an
//! [`HttpGateway`] in front of it, then serves until a client POSTs
//! `/admin/shutdown`. Try it from another terminal:
//!
//! ```text
//! curl http://127.0.0.1:7878/healthz
//! curl http://127.0.0.1:7878/wrappers
//! curl -X POST http://127.0.0.1:7878/extract \
//!      -d '{"wrapper":"news","url":"http://press/finance"}'
//! curl -X POST http://127.0.0.1:7878/extract/batch \
//!      -d '[{"wrapper":"news","url":"http://press/finance"},{"wrapper":"flights","url":"http://fly/status"}]'
//! curl http://127.0.0.1:7878/metrics
//! curl -H 'Accept: application/json' http://127.0.0.1:7878/metrics
//! curl -i -H 'X-Request-Id: my-probe' -X POST http://127.0.0.1:7878/extract \
//!      -d '{"wrapper":"news","url":"http://press/finance"}'
//! curl http://127.0.0.1:7878/debug/requests/my-probe
//! curl http://127.0.0.1:7878/debug/slow
//! curl http://127.0.0.1:7878/debug/wrappers/news
//! curl -X POST http://127.0.0.1:7878/admin/shutdown
//! ```
//!
//! `LIXTO_HTTP_ADDR` overrides the bind address. `LIXTO_DATA_DIR` makes
//! the gateway durable: wrappers spool to `$LIXTO_DATA_DIR/wrappers`,
//! extraction results persist to `$LIXTO_DATA_DIR/store`, and watch
//! subscriptions to `$LIXTO_DATA_DIR/watches`, so restarting the
//! example with the same directory serves previously-extracted pages as
//! warm cache hits (`"cache_hit":true` on the first request), can
//! explain them via `GET /provenance/{key}`, and resumes registered
//! watches. With `--selftest` the example drives one client session
//! against itself and exits — the zero-terminal smoke test.
//!
//! Continuous extraction: the `board` wrapper watches the synthetic
//! page `http://live/board`. With `LIXTO_WEB_DIR` set, any URL is first
//! resolved against that directory (file name = URL with every
//! non-alphanumeric byte mapped to `_`, re-read on every fetch), so an
//! outside process can *mutate* a watched page mid-flight:
//!
//! ```text
//! export LIXTO_WEB_DIR=/tmp/lixto-web
//! printf '<html><body><ul><li><b>alpha</b></li></ul></body></html>' \
//!        > "$LIXTO_WEB_DIR/http___live_board"
//! curl -X PUT http://127.0.0.1:7878/watches/board \
//!      -d '{"wrapper":"board","url":"http://live/board","interval_ms":250}'
//! curl 'http://127.0.0.1:7878/watches/board/events?events=1' &
//! printf '<html><body><ul><li><b>beta</b></li></ul></body></html>' \
//!        > "$LIXTO_WEB_DIR/http___live_board"      # → one diff event
//! ```

use std::sync::Arc;

use lixto::core::XmlDesign;
use lixto::elog::{StaticWeb, WebSource};
use lixto::http::{GatewayConfig, HttpClient, HttpGateway};
use lixto::server::{
    durability_layout, ExtractionServer, ServerConfig, StoreConfig, WrapperRegistry,
};
use lixto::workloads::{http_traffic, traffic};
use lixto_bench::workload_registry;

/// The continuously-watched demo page and its wrapper.
const BOARD_URL: &str = "http://live/board";
const BOARD_WRAPPER: &str = r#"
    offer(S, X) :- document("http://live/board", S), subelem(S, (?.li, []), X).
    name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
"#;
const BOARD_PAGE: &str =
    "<html><body><ul><li><b>alpha</b></li><li><b>beta</b></li></ul></body></html>";

/// A synthetic web with a disk overlay: when `LIXTO_WEB_DIR` is set,
/// fetches re-read `<dir>/<sanitized-url>` on every call (that is what
/// lets a shell mutate a watched page), falling back to the preloaded
/// in-memory pages.
struct DiskOverlayWeb {
    dir: Option<std::path::PathBuf>,
    base: StaticWeb,
}

impl WebSource for DiskOverlayWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        if let Some(dir) = &self.dir {
            let name: String = url
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            if let Ok(html) = std::fs::read_to_string(dir.join(name)) {
                return Some(html);
            }
        }
        self.base.fetch(url)
    }
}

fn register_board(registry: &WrapperRegistry) {
    if registry.latest("board").is_none() {
        registry
            .register_source("board", BOARD_WRAPPER, XmlDesign::new().root("board"))
            .expect("board wrapper compiles");
    }
}

fn main() {
    // 1. A registry with every workload wrapper, and a synthetic web
    //    holding each wrapper's entry page so `{"wrapper", "url"}`
    //    requests (no inline html) work out of the box. With
    //    LIXTO_DATA_DIR set, both the registry and the result store are
    //    durable under one data directory.
    let data_dir = std::env::var_os("LIXTO_DATA_DIR").map(durability_layout);
    let registry = match &data_dir {
        Some(layout) => {
            println!("durable data directory: {}", layout.root.display());
            let spooled = lixto::server::WrapperRegistry::with_spool(&layout.wrappers)
                .expect("open wrapper spool");
            for p in traffic::profiles() {
                if spooled.latest(p.name).is_none() {
                    spooled
                        .register_source(p.name, p.program, lixto_bench::workload_design(&p))
                        .expect("workload wrapper compiles");
                }
            }
            Arc::new(spooled)
        }
        None => workload_registry(),
    };
    register_board(&registry);
    let mut web = StaticWeb::new();
    for p in traffic::profiles() {
        web.put(p.entry_url, traffic::page_for(p.name, 2026, 0));
        println!("registered {:>8} (entry {})", p.name, p.entry_url);
    }
    web.put(BOARD_URL, BOARD_PAGE.to_string());
    println!("registered {:>8} (entry {}, watchable)", "board", BOARD_URL);
    let web = DiskOverlayWeb {
        dir: std::env::var_os("LIXTO_WEB_DIR").map(std::path::PathBuf::from),
        base: web,
    };
    if let Some(dir) = &web.dir {
        println!("live web overlay: {}", dir.display());
    }

    // 2. The pool and the gateway in front of it.
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            store: data_dir.as_ref().map(|l| StoreConfig::new(&l.store)),
        },
        registry,
        Arc::new(web),
    ));
    let addr = std::env::var("LIXTO_HTTP_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let gateway = HttpGateway::bind(
        addr.as_str(),
        GatewayConfig {
            watch_spool: data_dir.as_ref().map(|l| l.watches.clone()),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .expect("bind gateway");
    println!("\nserving on http://{}/", gateway.addr());
    let sample_body = r#"{"wrapper":"news","url":"http://press/finance"}"#;
    println!(
        "try:  curl -X POST http://{}/extract -d '{sample_body}'",
        gateway.addr(),
    );
    println!(
        "stop: curl -X POST http://{}/admin/shutdown\n",
        gateway.addr()
    );

    if std::env::args().any(|a| a == "--selftest") {
        selftest(gateway.addr());
    } else {
        // 3. Serve until a client asks us to stop.
        gateway.wait_shutdown_requested();
    }

    // 4. Graceful teardown: gateway first (drain in-flight HTTP), then
    //    the pool (drain queued jobs, join workers).
    let stats = gateway.shutdown();
    let report = server.initiate_shutdown();
    println!(
        "gateway served {} requests over {} connections ({} 4xx, {} 5xx)",
        stats.requests, stats.connections, stats.responses_4xx, stats.responses_5xx
    );
    println!(
        "pool drained: {} workers joined, {} jobs completed",
        report.workers_joined, report.jobs_completed
    );
}

/// One scripted client session: extract twice (miss then cache hit),
/// deploy a v2 wrapper, list the catalog, read both metrics formats,
/// then request shutdown.
fn selftest(addr: std::net::SocketAddr) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let news = traffic::profiles()
        .into_iter()
        .find(|p| p.name == "news")
        .unwrap();
    let body = http_traffic::extract_body_web("news", news.entry_url);
    for round in 0..2 {
        let response = client.post_json("/extract", &body).expect("extract");
        assert_eq!(response.status, 200, "{}", response.text());
        let parsed = response.json().expect("json body");
        println!(
            "extract round {round}: cache_hit={} xml={}B",
            parsed.get("cache_hit").and_then(|v| v.as_bool()).unwrap(),
            parsed.get("xml").and_then(|v| v.as_str()).unwrap().len()
        );
    }
    // One batched request carrying a hit and a deliberate miss: the
    // per-item envelope preserves the partial failure.
    let batch = format!(
        "[{},{}]",
        body,
        http_traffic::extract_body_web("ghost", "http://nowhere/")
    );
    let response = client
        .post_json("/extract/batch", &batch)
        .expect("extract batch");
    assert_eq!(response.status, 200, "{}", response.text());
    let parsed = response.json().expect("batch json");
    let statuses: Vec<u64> = parsed
        .get("items")
        .and_then(|v| v.as_array().map(<[lixto::http::Json]>::to_vec))
        .expect("items")
        .iter()
        .filter_map(|item| item.get("status").and_then(|s| s.as_u64()))
        .collect();
    assert_eq!(statuses, [200, 404]);
    println!("batch: per-item statuses {statuses:?}");
    // Request tracing: a client-supplied id is echoed back, and the
    // retained span (with its per-stage wall times) is queryable — as
    // are the per-rule counters the extractions above just fed.
    let traced = client
        .request(
            "POST",
            "/extract",
            &[("x-request-id", "selftest-probe")],
            Some(body.as_bytes()),
        )
        .expect("traced extract");
    assert_eq!(traced.status, 200, "{}", traced.text());
    assert_eq!(traced.header("x-request-id"), Some("selftest-probe"));
    let span = client
        .get("/debug/requests/selftest-probe")
        .expect("span lookup");
    assert_eq!(span.status, 200, "{}", span.text());
    println!("span: {}", span.text());
    let slow = client.get("/debug/slow").expect("debug/slow");
    assert_eq!(slow.status, 200);
    assert!(slow.text().contains("\"id\""), "span rings are populated");
    let telemetry = client
        .get("/debug/wrappers/news")
        .expect("debug/wrappers/news");
    assert_eq!(telemetry.status, 200, "{}", telemetry.text());
    assert!(telemetry.text().contains("\"invocations\""));
    println!("rule telemetry: {}", telemetry.text());
    // Continuous extraction: register a watch on the live board, see it
    // tick and show up in the metrics, then unregister it.
    let watch = client
        .put_json(
            "/watches/selftest",
            r#"{"wrapper":"board","url":"http://live/board","interval_ms":50}"#,
        )
        .expect("register watch");
    assert_eq!(watch.status, 201, "{}", watch.text());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let status = client.get("/watches/selftest").expect("watch status");
        assert_eq!(status.status, 200, "{}", status.text());
        let ticks = status
            .json()
            .expect("watch json")
            .get("ticks")
            .and_then(|t| t.as_u64())
            .unwrap_or(0);
        if ticks >= 1 {
            println!("watch ticking: {}", status.text());
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watch never ticked: {}",
            status.text()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let metrics = client.get("/metrics").expect("metrics text");
    assert!(
        metrics.text().contains("lixto_watch_registered 1"),
        "watch missing from metrics"
    );
    let gone = client
        .request("DELETE", "/watches/selftest", &[], None)
        .expect("delete watch");
    assert_eq!(gone.status, 200, "{}", gone.text());
    println!("watch unregistered: {}", gone.text());
    let put = client
        .put_json("/wrappers/news", &http_traffic::register_body(&news))
        .expect("deploy");
    assert_eq!(put.status, 201, "{}", put.text());
    println!("deployed news v2: {}", put.text());
    let listing = client.get("/wrappers").expect("wrappers");
    println!("catalog: {}", listing.text());
    let metrics = client
        .get_accept("/metrics", "application/json")
        .expect("metrics");
    println!("metrics (json): {}", metrics.text());
    let prometheus = client.get("/metrics").expect("metrics text");
    println!(
        "metrics (prometheus): {} lines",
        prometheus.text().lines().count()
    );
    let stop = client.post_json("/admin/shutdown", "{}").expect("shutdown");
    assert_eq!(stop.status, 200);
    println!("shutdown requested: {}", stop.text());
}
