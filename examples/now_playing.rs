//! "Now Playing" (§6.1): 8 radio playlists wrapped each tick, integrated
//! into a PDA-sized portal page; deliveries are change-gated.
//!
//! ```text
//! cargo run --example now_playing -- 9
//! ```

use lixto_transform::*;

fn main() {
    let ticks: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let mut pipe = InfoPipe::new();
    let mut sources = Vec::new();
    for s in lixto_workloads::radio::STATIONS {
        sources.push(
            pipe.source(
                Component::Wrapper(WrapperComponent {
                    program: lixto_elog::parse_program(&lixto_workloads::radio::playlist_wrapper(
                        s,
                    ))
                    .unwrap(),
                    design: lixto_core::XmlDesign::new().root("station"),
                }),
                Trigger::EveryTick,
            ),
        );
    }
    let merged = pipe.stage(
        Component::Integrate {
            root: "nowplaying".into(),
        },
        sources,
    );
    pipe.stage(
        Component::Deliver {
            channel: "pda".into(),
            only_on_change: true,
        },
        vec![merged],
    );

    // Playlists rotate every 3 ticks; charts/lyrics would be slower groups.
    let delivered = run_ticks(&pipe, ticks, &|tick| {
        Box::new(lixto_workloads::radio::site(3, tick / 3, 0))
    });
    println!(
        "{} deliveries over {ticks} ticks (change-gated):",
        delivered.len()
    );
    for (tick, msg) in delivered {
        let doc = lixto_xml::parse(&msg.body).unwrap();
        let titles: Vec<String> = lixto_xml::select::descendants_named(&doc, "title")
            .iter()
            .map(|t| t.text_content())
            .collect();
        println!("  tick {tick}: {}", titles.join(" | "));
    }
}
