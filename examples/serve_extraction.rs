//! Serve extraction requests from a sharded worker pool.
//!
//! ```text
//! cargo run --release --example serve_extraction
//! ```
//!
//! Registers the five workload wrappers in a [`WrapperRegistry`], starts
//! an [`ExtractionServer`] (4 shards × 2 workers), replays mixed traffic
//! from 16 simulated users, upgrades one wrapper mid-flight, and prints
//! the metrics snapshot the service exposes.

use std::sync::Arc;

use lixto::core::XmlDesign;
use lixto::elog::StaticWeb;
use lixto::server::{ExtractionRequest, ExtractionServer, RequestSource, ServerConfig};
use lixto::workloads::traffic;
use lixto_bench::workload_registry;

fn main() {
    // 1. A registry with every workload wrapper, versioned.
    let registry = workload_registry();
    for p in traffic::profiles() {
        println!("registered {:>8} v1  (entry {})", p.name, p.entry_url);
    }

    // 2. Start the pool: 4 shards, 2 workers each, bounded queues.
    let server = ExtractionServer::start(
        ServerConfig {
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 32,
            cache_capacity: 128,
            store: None,
        },
        registry,
        Arc::new(StaticWeb::new()),
    );

    // 3. Replay mixed traffic: 16 users × 8 requests.
    let requests = traffic::requests(2026, 16, 8);
    let total = requests.len();
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| {
            server
                .submit(ExtractionRequest {
                    trace: None,
                    wrapper: r.wrapper.to_string(),
                    version: None,
                    source: RequestSource::Inline {
                        url: r.url,
                        html: r.html,
                    },
                })
                .expect("submit")
        })
        .collect();
    let mut hits = 0usize;
    for t in tickets {
        let response = t.wait().expect("extraction succeeds");
        if response.cache_hit {
            hits += 1;
        }
    }
    println!("\nserved {total} requests, {hits} answered from the result cache");

    // 4. Live upgrade: deploy v2 of the news wrapper; the next request
    //    executes it without a restart.
    let news = traffic::profiles()
        .into_iter()
        .find(|p| p.name == "news")
        .unwrap();
    let v2 = server
        .registry()
        .register_source("news", news.program, XmlDesign::new().root("clippings_v2"))
        .unwrap();
    let upgraded = server
        .execute(ExtractionRequest {
            trace: None,
            wrapper: "news".into(),
            version: None,
            source: RequestSource::Inline {
                url: news.entry_url.to_string(),
                html: traffic::page_for("news", 2026, 0),
            },
        })
        .unwrap();
    println!(
        "upgraded news to v{v2}; new root element: <{}...>",
        upgraded
            .xml()
            .split('>')
            .next()
            .unwrap_or("")
            .trim_start_matches('<')
    );

    // 5. The health snapshot a dashboard would poll.
    let m = server.metrics();
    println!("\nmetrics snapshot");
    println!(
        "  submitted/completed/errors  {}/{}/{}",
        m.submitted, m.completed, m.errors
    );
    println!(
        "  throughput                  {:.0} req/s",
        m.throughput_per_sec
    );
    println!(
        "  latency p50/p99             {}µs / {}µs",
        m.p50_us, m.p99_us
    );
    println!("  queue depths                {:?}", m.queue_depths);
    println!(
        "  cache                       {} hits / {} misses / {} evictions ({:.0}% hit rate, {}/{} entries)",
        m.cache.hits,
        m.cache.misses,
        m.cache.evictions,
        m.cache.hit_rate() * 100.0,
        m.cache.len,
        m.cache.capacity
    );

    // 6. Graceful shutdown: drain the queues, join every worker.
    let report = server.shutdown();
    println!(
        "\nshutdown: {} workers joined, {} jobs completed",
        report.workers_joined, report.jobs_completed
    );
}
