//! End-to-end exercise of the `lixto_http` gateway: many concurrent
//! keep-alive HTTP clients replaying mixed workload traffic through the
//! full network path, checked for byte-identical agreement with the
//! single-threaded engine, for 429 backpressure under a full queue, for
//! 4xx handling of malformed requests, and for deadlock-free shutdown
//! while handlers hold job tickets.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use lixto::core::{to_xml, XmlDesign};
use lixto::elog::{parse_program, Extractor, SinglePage, StaticWeb, WebSource};
use lixto::http::{GatewayConfig, HttpClient, HttpGateway, Json, Limits};
use lixto::server::{ExtractionServer, ServerConfig, WrapperRegistry};
use lixto::workloads::http_traffic;
use lixto::workloads::traffic::{self, WrapperProfile};
use lixto_bench::{workload_design, workload_registry};

/// The single-threaded reference: run the Extractor directly and render
/// XML exactly as the server does.
fn baseline_xml(profile: &WrapperProfile, url: &str, html: &str) -> String {
    let program = parse_program(profile.program).unwrap();
    let web = SinglePage {
        url: url.to_string(),
        html: html.to_string(),
    };
    let result = Extractor::new(program, &web).run();
    lixto::xml::to_string(&to_xml(&result, &workload_design(profile)))
}

#[test]
fn sixteen_keep_alive_clients_get_byte_identical_xml() {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 8; // 128 requests over ~15 distinct documents

    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 64,
            cache_capacity: 64,
            store: None,
        },
        workload_registry(),
        Arc::new(StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            handler_threads: CLIENTS + 2, // every keep-alive session gets a handler
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();

    let requests = traffic::requests(42, CLIENTS, PER_CLIENT);
    let profiles: HashMap<&str, WrapperProfile> = traffic::profiles()
        .into_iter()
        .map(|p| (p.name, p))
        .collect();
    let mut reference: HashMap<(&str, String), String> = HashMap::new();
    for r in &requests {
        reference
            .entry((r.wrapper, r.html.clone()))
            .or_insert_with(|| baseline_xml(&profiles[r.wrapper], &r.url, &r.html));
    }
    assert!(
        reference.len() < requests.len(),
        "traffic must repeat documents so the cache can hit"
    );

    // One keep-alive connection per simulated user, all concurrent.
    std::thread::scope(|scope| {
        let requests = &requests;
        let reference = &reference;
        let mut clients = Vec::new();
        for user in 0..CLIENTS {
            clients.push(scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for r in requests.iter().filter(|r| r.user == user) {
                    let body = http_traffic::extract_body(r.wrapper, &r.url, &r.html);
                    let response = client.post_json("/extract", &body).expect("extract");
                    assert_eq!(response.status, 200, "{}", response.text());
                    let parsed = response.json().expect("json body");
                    let xml = parsed.get("xml").and_then(Json::as_str).expect("xml field");
                    // Byte-identical to the single-threaded engine, hit
                    // or miss — through JSON escaping and back.
                    assert_eq!(
                        xml,
                        reference[&(r.wrapper, r.html.clone())],
                        "gateway output diverged for wrapper {}",
                        r.wrapper
                    );
                }
            }));
        }
        for c in clients {
            c.join().expect("client thread panicked");
        }
    });

    // The pool saw every request exactly once; repeats hit the cache.
    let snapshot = server.metrics();
    assert_eq!(snapshot.completed, requests.len() as u64);
    assert_eq!(snapshot.errors, 0);
    assert!(
        snapshot.cache.hits > 0,
        "repeats must hit: {:?}",
        snapshot.cache
    );

    // The HTTP metrics endpoint reports the same counters, in both
    // formats.
    let mut probe = HttpClient::connect(addr).unwrap();
    let wire = probe
        .get_accept("/metrics", "application/json")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        wire.get("completed").and_then(Json::as_u64),
        Some(snapshot.completed)
    );
    assert_eq!(
        wire.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64),
        Some(snapshot.cache.hits)
    );
    let prometheus = probe.get("/metrics").unwrap();
    assert!(prometheus.text().contains(&format!(
        "lixto_requests_completed_total {}",
        snapshot.completed
    )));
    drop(probe); // close the keep-alive session so shutdown needn't idle it out

    let stats = gateway.shutdown();
    assert_eq!(stats.connections as usize, CLIENTS + 1);
    assert_eq!(stats.requests as usize, requests.len() + 2);
    assert_eq!(stats.responses_4xx, 0);
    assert_eq!(stats.responses_5xx, 0);
    let report = server.initiate_shutdown();
    assert_eq!(report.workers_joined, 8);
}

/// A web source whose fetches block until the test opens the gate —
/// wedging the single worker so the queue fills deterministically.
struct GatedWeb {
    open: Mutex<bool>,
    cv: Condvar,
    fetching: Mutex<usize>,
    fetching_cv: Condvar,
}

impl GatedWeb {
    fn new() -> GatedWeb {
        GatedWeb {
            open: Mutex::new(false),
            cv: Condvar::new(),
            fetching: Mutex::new(0),
            fetching_cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_fetching(&self) {
        let mut fetching = self.fetching.lock().unwrap();
        while *fetching == 0 {
            fetching = self.fetching_cv.wait(fetching).unwrap();
        }
    }
}

impl WebSource for GatedWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        {
            let mut fetching = self.fetching.lock().unwrap();
            *fetching += 1;
            self.fetching_cv.notify_all();
        }
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        (url == "http://shop/").then(|| "<ul><li>slow</li></ul>".to_string())
    }
}

#[test]
fn full_queue_returns_429_backpressure() {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source(
            "shop",
            r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#,
            XmlDesign::new().root("offers"),
        )
        .unwrap();
    let web = Arc::new(GatedWeb::new());
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            cache_capacity: 16,
            store: None,
        },
        registry,
        web.clone(),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            handler_threads: 8,
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();
    let body = http_traffic::extract_body_web("shop", "http://shop/");

    // Occupy the worker (its fetch blocks on the gate)...
    let body1 = body.clone();
    let occupant = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.post_json("/extract", &body1).unwrap()
    });
    web.wait_fetching();
    // ...then fill the 1-slot queue...
    let body2 = body.clone();
    let queued = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.post_json("/extract", &body2).unwrap()
    });
    loop {
        let depth: usize = server.metrics().queue_depths.iter().sum();
        if depth >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...so every further request is rejected with 429, immediately.
    for _ in 0..4 {
        let mut client = HttpClient::connect(addr).unwrap();
        let rejected = client.post_json("/extract", &body).unwrap();
        assert_eq!(rejected.status, 429, "{}", rejected.text());
        assert_eq!(rejected.header("retry-after"), Some("1"));
        assert!(rejected.text().contains("backpressure"));
    }
    // Open the gate: the two accepted requests complete fine.
    web.release();
    assert_eq!(occupant.join().unwrap().status, 200);
    assert_eq!(queued.join().unwrap().status, 200);
    let snapshot = server.metrics();
    assert_eq!(snapshot.rejected, 4);
    assert_eq!(snapshot.completed, 2);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn malformed_requests_map_to_4xx() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        workload_registry(),
        Arc::new(StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            handler_threads: 2,
            limits: Limits {
                max_header_bytes: 2048,
                max_body_bytes: 4096,
            },
            idle_timeout: Duration::from_millis(500),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // Bad JSON → 400.
    let r = client.post_json("/extract", "{not json").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("bad_request"));
    // Wrong shapes → 400.
    for body in [
        "{}",
        r#"{"wrapper":7,"url":"u"}"#,
        r#"{"wrapper":"shop"}"#,
        r#"{"wrapper":"books_a","url":"u","version":-2}"#,
        r#"{"wrapper":"books_a","url":"u","html":[1]}"#,
    ] {
        assert_eq!(
            client.post_json("/extract", body).unwrap().status,
            400,
            "{body}"
        );
    }
    // Unknown wrapper / version → 404.
    let r = client
        .post_json("/extract", r#"{"wrapper":"ghost","url":"u"}"#)
        .unwrap();
    assert_eq!(r.status, 404);
    assert!(r.text().contains("unknown_wrapper"));
    let r = client
        .post_json(
            "/extract",
            r#"{"wrapper":"books_a","url":"u","html":"<p/>","version":99}"#,
        )
        .unwrap();
    assert_eq!(r.status, 404);
    assert!(r.text().contains("unknown_version"));
    // Web fetch of an unfetchable URL → 502.
    let r = client
        .post_json("/extract", r#"{"wrapper":"books_a","url":"http://gone/"}"#)
        .unwrap();
    assert_eq!(r.status, 502);
    // Bad wrapper deployments → 400.
    let r = client
        .put_json("/wrappers/bad", r#"{"program":"not elog ("}"#)
        .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("bad_program"));
    assert_eq!(
        client
            .put_json("/wrappers/weird%20name", r#"{"program":"x"}"#)
            .unwrap()
            .status,
        400
    );
    // Oversized body → 413, and the connection stays usable (the body
    // is drained).
    let oversized = http_traffic::extract_body("books_a", "http://u/", &"x".repeat(8192));
    let r = client.post_json("/extract", &oversized).unwrap();
    assert_eq!(r.status, 413);
    assert!(r.text().contains("body_too_large"));
    let after = client.get("/healthz").unwrap();
    assert_eq!(after.status, 200, "connection survives a drained 413");

    // Huge headers → 431 (fresh connection; framing is poisoned after).
    let mut raw = HttpClient::connect(addr).unwrap();
    let r = raw
        .request("GET", "/healthz", &[("x-pad", &"a".repeat(4096))], None)
        .unwrap();
    assert_eq!(r.status, 431);

    // A valid request still works on a fresh connection.
    let mut fresh = HttpClient::connect(addr).unwrap();
    let ok = fresh
        .post_json(
            "/extract",
            &http_traffic::extract_body(
                "books_a",
                "http://shop0/books",
                &traffic::page_for("books_a", 1, 0),
            ),
        )
        .unwrap();
    assert_eq!(ok.status, 200);

    drop(client);
    drop(raw);
    drop(fresh);
    let stats = gateway.shutdown();
    assert!(stats.responses_4xx >= 12);
    server.initiate_shutdown();
}

#[test]
fn deploy_time_compile_errors_surface_as_structured_400s() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        Arc::new(WrapperRegistry::new()),
        Arc::new(StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            handler_threads: 1,
            idle_timeout: Duration::from_millis(500),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    let detail = |response: &lixto::http::HttpResponse| {
        let parsed = response.json().expect("json body");
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("bad_program")
        );
        parsed.get("detail").cloned().expect("detail object")
    };

    // Unknown parent pattern.
    let r = client
        .put_json(
            "/wrappers/orphan",
            r#"{"program":"x(S, X) :- ghost(_, S), subelem(S, (?.td, []), X)."}"#,
        )
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    let d = detail(&r);
    assert_eq!(d.get("kind").and_then(Json::as_str), Some("compile"));
    assert_eq!(
        d.get("code").and_then(Json::as_str),
        Some("unknown_parent_pattern")
    );
    assert_eq!(d.get("pattern").and_then(Json::as_str), Some("x"));
    assert_eq!(d.get("subject").and_then(Json::as_str), Some("ghost"));

    // Unbound variable.
    let r = client
        .put_json(
            "/wrappers/unbound",
            r#"{"program":"x(S, X) :- document(\"http://u/\", S), subelem(S, (?.td, []), X), isCurrency(Z)."}"#,
        )
        .unwrap();
    assert_eq!(r.status, 400);
    let d = detail(&r);
    assert_eq!(
        d.get("code").and_then(Json::as_str),
        Some("unbound_variable")
    );
    assert_eq!(d.get("subject").and_then(Json::as_str), Some("Z"));
    assert_eq!(d.get("rule").and_then(Json::as_u64), Some(0));

    // Bad concept reference.
    let r = client
        .put_json(
            "/wrappers/noconcept",
            r#"{"program":"x(S, X) :- document(\"http://u/\", S), subelem(S, (?.td, []), X), isUnicorn(X)."}"#,
        )
        .unwrap();
    assert_eq!(r.status, 400);
    let d = detail(&r);
    assert_eq!(
        d.get("code").and_then(Json::as_str),
        Some("unknown_concept")
    );
    assert_eq!(d.get("subject").and_then(Json::as_str), Some("isUnicorn"));

    // Parse errors keep their own structured shape.
    let r = client
        .put_json("/wrappers/unparsable", r#"{"program":"not elog ("}"#)
        .unwrap();
    assert_eq!(r.status, 400);
    let d = detail(&r);
    assert_eq!(d.get("kind").and_then(Json::as_str), Some("parse"));
    assert!(d.get("at").and_then(Json::as_u64).is_some());

    // Nothing was registered by any of the rejections.
    assert!(server.registry().is_empty());
    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn spooled_deploys_survive_a_server_restart() {
    let spool = std::env::temp_dir().join(format!(
        "lixto-http-spool-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&spool);
    let body = http_traffic::extract_body(
        "books_a",
        "http://shop0/books",
        &traffic::page_for("books_a", 5, 1),
    );
    let deploy = {
        let profile = traffic::profiles().remove(0);
        assert_eq!(profile.name, "books_a");
        http_traffic::register_body(&profile)
    };

    // First life: deploy over HTTP onto a spooled registry and extract.
    let first_xml = {
        let registry = Arc::new(WrapperRegistry::with_spool(&spool).unwrap());
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 1,
                idle_timeout: Duration::from_millis(500),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let put = client.put_json("/wrappers/books_a", &deploy).unwrap();
        assert_eq!(put.status, 201, "{}", put.text());
        let extract = client.post_json("/extract", &body).unwrap();
        assert_eq!(extract.status, 200, "{}", extract.text());
        let xml = extract
            .json()
            .unwrap()
            .get("xml")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
        xml
    };

    // Second life: a fresh registry + pool + gateway on the same spool
    // resumes with the deployed wrapper — no re-deploy.
    let registry = Arc::new(WrapperRegistry::with_spool(&spool).unwrap());
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        registry,
        Arc::new(StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            handler_threads: 1,
            idle_timeout: Duration::from_millis(500),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.addr()).unwrap();
    let listing = client.get("/wrappers").unwrap();
    assert!(
        listing.text().contains(r#"{"name":"books_a","latest":1}"#),
        "restarted catalog: {}",
        listing.text()
    );
    let extract = client.post_json("/extract", &body).unwrap();
    assert_eq!(extract.status, 200, "{}", extract.text());
    assert_eq!(
        extract.json().unwrap().get("xml").and_then(Json::as_str),
        Some(first_xml.as_str()),
        "the reloaded wrapper extracts byte-identically"
    );
    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
    std::fs::remove_dir_all(&spool).unwrap();
}

#[test]
fn restart_serves_warm_hits_from_the_recovered_store_with_provenance() {
    use lixto::server::{durability_layout, StoreConfig};

    let root = std::env::temp_dir().join(format!(
        "lixto-http-store-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let layout = durability_layout(&root);
    let page = traffic::page_for("books_a", 5, 1);
    let body = http_traffic::extract_body("books_a", "http://shop0/books", &page);
    let deploy = {
        let profile = traffic::profiles().remove(0);
        http_traffic::register_body(&profile)
    };
    let durable_config = || ServerConfig {
        store: Some(StoreConfig::new(&layout.store)),
        ..ServerConfig::default()
    };
    let bind = |server: &Arc<ExtractionServer>| {
        HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 1,
                idle_timeout: Duration::from_millis(500),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap()
    };

    // First life: deploy, extract once (a miss that persists the result),
    // and remember the XML plus the provenance key it was stored under.
    let (first_xml, provenance_key) = {
        let registry = Arc::new(WrapperRegistry::with_spool(&layout.wrappers).unwrap());
        let server = Arc::new(ExtractionServer::start(
            durable_config(),
            registry,
            Arc::new(StaticWeb::new()),
        ));
        let gateway = bind(&server);
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let put = client.put_json("/wrappers/books_a", &deploy).unwrap();
        assert_eq!(put.status, 201, "{}", put.text());
        let extract = client.post_json("/extract", &body).unwrap();
        assert_eq!(extract.status, 200, "{}", extract.text());
        let parsed = extract.json().unwrap();
        assert_eq!(parsed.get("cache_hit").and_then(Json::as_bool), Some(false));
        let xml = parsed
            .get("xml")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let key = parsed
            .get("provenance_key")
            .and_then(Json::as_str)
            .expect("every /extract response carries a provenance_key")
            .to_string();
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
        (xml, key)
    };

    // Second life: same data directory, fresh processes all the way down.
    let registry = Arc::new(WrapperRegistry::with_spool(&layout.wrappers).unwrap());
    let server = Arc::new(ExtractionServer::start(
        durable_config(),
        registry,
        Arc::new(StaticWeb::new()),
    ));
    let gateway = bind(&server);
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // The warm request is a cache *hit* served from the recovered store:
    // byte-identical XML, no plan re-execution.
    let extract = client.post_json("/extract", &body).unwrap();
    assert_eq!(extract.status, 200, "{}", extract.text());
    let parsed = extract.json().unwrap();
    assert_eq!(
        parsed.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "a restarted gateway must serve the recovered result: {}",
        extract.text()
    );
    assert_eq!(
        parsed.get("xml").and_then(Json::as_str),
        Some(first_xml.as_str()),
        "recovered XML must be byte-identical"
    );
    assert_eq!(
        parsed.get("provenance_key").and_then(Json::as_str),
        Some(provenance_key.as_str()),
        "content addressing must be stable across restarts"
    );
    let snapshot = server.metrics();
    assert!(snapshot.store.recovered >= 1, "{:?}", snapshot.store);
    assert!(snapshot.store.disk_hits >= 1, "{:?}", snapshot.store);
    assert_eq!(snapshot.cache.hits, 1, "served as a hit, not recomputed");

    // The provenance endpoint explains the recovered entry: wrapper
    // version, producing rule indices, and the source page hash.
    let provenance = client
        .get(&format!("/provenance/{provenance_key}"))
        .unwrap();
    assert_eq!(provenance.status, 200, "{}", provenance.text());
    let p = provenance.json().unwrap();
    assert_eq!(p.get("wrapper").and_then(Json::as_str), Some("books_a"));
    assert_eq!(p.get("version").and_then(Json::as_u64), Some(1));
    assert_eq!(
        p.get("source_url").and_then(Json::as_str),
        Some("http://shop0/books")
    );
    let expected_hash = format!("{:016x}", lixto::server::fxhash64(page.as_bytes()));
    assert_eq!(
        p.get("source_hash").and_then(Json::as_str),
        Some(expected_hash.as_str())
    );
    let instances = p.get("instances").and_then(Json::as_array).unwrap();
    assert!(!instances.is_empty(), "provenance lists the instances");
    assert!(
        instances
            .iter()
            .all(|i| i.get("rule").and_then(Json::as_u64).is_some()),
        "every instance records its producing rule: {}",
        provenance.text()
    );

    // Unknown and malformed keys are clean client errors.
    let missing = client.get("/provenance/ghost@0000000000000000@0000000000000000");
    assert_eq!(missing.unwrap().status, 404);
    assert_eq!(client.get("/provenance/not-a-key").unwrap().status, 400);

    // `/metrics` exposes the store counters over the wire.
    let wire = client
        .get_accept("/metrics", "application/json")
        .unwrap()
        .json()
        .unwrap();
    let store = wire.get("store").expect("store block in /metrics");
    assert!(store.get("recovered").and_then(Json::as_u64).unwrap() >= 1);
    assert!(store.get("disk_hits").and_then(Json::as_u64).unwrap() >= 1);
    let prom = client.get("/metrics").unwrap();
    assert!(prom.text().contains("lixto_store_recovered_total"));

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn pool_shutdown_while_handlers_hold_tickets_does_not_deadlock() {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source(
            "shop",
            r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#,
            XmlDesign::new().root("offers"),
        )
        .unwrap();
    let web = Arc::new(GatedWeb::new());
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            store: None,
        },
        registry,
        web.clone(),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            handler_threads: 4,
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();
    let body = http_traffic::extract_body_web("shop", "http://shop/");

    // Three handler threads end up blocked in JobTicket::wait (one
    // executing against the gated web, two queued behind it).
    let mut in_flight = Vec::new();
    for _ in 0..3 {
        let body = body.clone();
        in_flight.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.post_json("/extract", &body).unwrap()
        }));
    }
    web.wait_fetching();
    loop {
        let depth: usize = server.metrics().queue_depths.iter().sum();
        if depth >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Pool shutdown begins *while* handlers hold tickets. The gated
    // fetch is released from a helper thread shortly after, as a live
    // source would eventually respond; initiate_shutdown must drain and
    // return rather than deadlock.
    let release = {
        let web = web.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            web.release();
        })
    };
    let report = server.initiate_shutdown();
    release.join().unwrap();
    assert_eq!(report.workers_joined, 1);

    // Every held ticket resolved: drained jobs answered 200, anything
    // destroyed answered 5xx — nothing hangs.
    for handle in in_flight {
        let response = handle.join().expect("handler client panicked");
        assert!(
            response.status == 200 || response.status >= 500,
            "got {}",
            response.status
        );
    }
    // New extractions are refused as shutting down (503).
    let mut late = HttpClient::connect(addr).unwrap();
    let refused = late.post_json("/extract", &body).unwrap();
    assert_eq!(refused.status, 503);
    assert!(refused.text().contains("shutting_down"));
    drop(late);
    gateway.shutdown();
}
