//! Figure 6 — "Complexity and expressive power of query languages over
//! trees" — reproduced as executable translations: every arrow L1 → L2 in
//! the diagram that we implement is exercised here, and the evaluators at
//! both ends must agree.

use lixto_datalog::MonadicEvaluator;
use lixto_xpath::{core::eval_core, parse, to_tmnf};

const DOC: &str = "<div><table><tr><td>item</td></tr><tr><td><a>D</a></td><td>$1</td></tr>\
                   </table><hr/><p>x</p><span><p>y</p></span></div>";

/// Arrow: Core XPath → monadic datalog (TMNF) — Theorem 4.6.
#[test]
fn core_xpath_to_tmnf_arrow() {
    let doc = lixto_html::parse(DOC);
    for q in [
        "//td",
        "//tr[td/a]/td",
        "//p[preceding-sibling::hr]",
        "//td[ancestor::table and following::p]",
        "//tr[not(td/a)]",
    ] {
        let query = parse(q).unwrap();
        let want = eval_core(&doc, &query).unwrap();
        let t = to_tmnf::core_to_datalog(&query).unwrap();
        let got = to_tmnf::eval_translated(&doc, &t).unwrap();
        assert_eq!(got, want, "query {q}");
    }
}

/// Arrow: positive Core XPath sits inside Core XPath, and its translation
/// stays negation-free (the LOGCFL corner of the diagram).
#[test]
fn positive_fragment_stays_positive() {
    for q in ["//tr[td/a]/td", "//td[ancestor::table]"] {
        let query = parse(q).unwrap();
        assert!(lixto_xpath::positive::is_positive_core(&query));
        let t = to_tmnf::core_to_datalog(&query).unwrap();
        assert!(!t.uses_negation, "{q}");
    }
}

/// Arrow: acyclic CQs (over tractable axes) ↔ node-selecting queries —
/// spot-checked against hand-paired Core XPath equivalents.
#[test]
fn cq_vs_xpath_pairs() {
    use lixto_cq::{Cq, CqAtom, CqAxis, LabelAtom};
    let doc = lixto_html::parse(DOC);
    // CQ: table child+ td   ≡   //table//td ∩ label td
    let cq = Cq {
        n_vars: 2,
        atoms: vec![CqAtom {
            axis: CqAxis::ChildPlus,
            x: 0,
            y: 1,
        }],
        labels: vec![
            LabelAtom {
                var: 0,
                label: "table".into(),
            },
            LabelAtom {
                var: 1,
                label: "td".into(),
            },
        ],
        free: Some(1),
    };
    let via_cq = lixto_cq::yannakakis::eval_unary(&doc, &cq).unwrap();
    let via_xpath = eval_core(&doc, &parse("//table//td").unwrap()).unwrap();
    assert_eq!(via_cq, via_xpath);
}

/// TMNF normal form exists for every tree-shaped monadic program
/// (Theorem 2.7) and evaluation through it matches the general engine.
#[test]
fn tmnf_normal_form_and_equivalence() {
    let program = lixto_datalog::parse_program(
        r#"rec(X) :- label(X, "tr").
           cell(X) :- rec(R), child(R, X), label(X, "td").
           linked(X) :- cell(X), haslink(X).
           haslink(X) :- child(X, A), label(A, "a")."#,
    )
    .unwrap();
    let t = lixto_datalog::tmnf::to_tmnf(
        &program,
        lixto_datalog::tmnf::TmnfOptions {
            eliminate_child: true,
        },
    )
    .unwrap();
    assert!(lixto_datalog::tmnf::is_tmnf(&t.program));
    let doc = lixto_html::parse(DOC);
    let fast = MonadicEvaluator::new(&doc).eval(&program).unwrap();
    let db = lixto_datalog::tree_db(&doc);
    let slow = lixto_datalog::seminaive::eval(&db, &program).unwrap();
    for pred in program.idb_predicates() {
        let got: Vec<u32> = fast[&pred].iter().map(|n| n.index() as u32).collect();
        let mut want: Vec<u32> = slow.tuples(&pred).map(|t| t[0]).collect();
        want.sort_by_key(|&c| doc.order().pre(lixto_tree::NodeId::from_index(c as usize)));
        assert_eq!(got, want, "{pred}");
    }
}

/// Arrow: DTA (run) → monadic datalog (the Theorem 2.5 machinery).
#[test]
fn automaton_run_as_datalog() {
    use lixto_automata::{dta::determinize, nta::contains_label, to_datalog};
    let dta = determinize(&contains_label("td"));
    let selecting: Vec<u32> = (0..dta.n_states).collect();
    let program = to_datalog::dta_to_datalog(&dta, &selecting);
    let doc = lixto_html::parse(DOC);
    // The document contains a td, so acceptance holds and all nodes select.
    let sel = to_datalog::eval_selected(&program, &doc).unwrap();
    assert_eq!(sel.len(), doc.len());
}
