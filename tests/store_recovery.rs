//! Crash-recovery tests for the durable result store: a process can die
//! at any byte of a WAL append and the next open must recover exactly
//! the cleanly-written prefix of history — never refuse to start, never
//! resurrect an invalidated entry, and compact the recovered state to a
//! byte-identical snapshot of the pre-crash contents.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use lixto_elog::eval::ExtractionResult;
use lixto_elog::instances::{Instance, InstanceBase, Target};
use lixto_server::XmlDesign;
use lixto_server::{
    durability_layout, CacheKey, CachedExtraction, CrawlRecord, InstanceProvenance, Provenance,
    StoreConfig, TieredStore, WrapperRegistry,
};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lixto-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(wrapper: &str, content: u64) -> CacheKey {
    CacheKey {
        wrapper: wrapper.to_string(),
        plan: 0xC0FFEE,
        content,
    }
}

fn entry(wrapper: &str, xml: &str, texts: &[&str]) -> Arc<CachedExtraction> {
    let instances: Vec<InstanceProvenance> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| InstanceProvenance {
            pattern: "item".to_string(),
            parent: if i == 0 { None } else { Some(0) },
            rule: Some(i as u32),
            text: t.to_string(),
        })
        .collect();
    let base = InstanceBase {
        instances: instances
            .iter()
            .map(|p| Instance {
                pattern: p.pattern.as_str().into(),
                parent: p.parent,
                target: Target::Text(p.text.clone()),
            })
            .collect(),
    };
    let rule_trace = instances.iter().filter_map(|p| p.rule).collect();
    Arc::new(CachedExtraction {
        result: ExtractionResult::from_parts(base, Vec::new(), Vec::new(), rule_trace),
        xml: xml.to_string(),
        crawl: vec![CrawlRecord {
            url: format!("http://{wrapper}/sub"),
            content: Some(7),
        }],
        crawl_live: false,
        provenance: Provenance {
            wrapper: wrapper.to_string(),
            version: 2,
            plan: 0xC0FFEE,
            source_url: format!("http://{wrapper}/"),
            source_hash: 0xFEED,
            instances,
        },
    })
}

/// A crash can land mid-append: the WAL ends in a torn record. Recovery
/// must keep every complete record and count the torn tail as corrupt.
#[test]
fn kill_mid_append_keeps_the_clean_prefix() {
    let dir = temp_root("torn");
    {
        let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
        store.insert(key("shop", 1), entry("shop", "<a/>", &["one"]));
        store.insert(key("shop", 2), entry("shop", "<b/>", &["two"]));
        store.insert(key("shop", 3), entry("shop", "<c/>", &["three"]));
    }
    let wal = dir.join("wal.log");
    let full = fs::read(&wal).unwrap();
    // Chop the last record at an arbitrary interior byte, as if the
    // process died while write(2) was in flight.
    let last_line_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .unwrap()
        + 1;
    let cut = last_line_start + (full.len() - last_line_start) / 2;
    fs::write(&wal, &full[..cut]).unwrap();

    let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
    assert!(store.peek(&key("shop", 1)).is_some());
    assert!(store.peek(&key("shop", 2)).is_some());
    assert!(
        store.peek(&key("shop", 3)).is_none(),
        "the torn record must not half-recover"
    );
    let stats = store.store_stats();
    assert_eq!(stats.recovered, 2);
    assert_eq!(stats.corrupt_records, 1);
    fs::remove_dir_all(&dir).unwrap();
}

/// Recovery succeeds at *every* possible truncation point of the WAL —
/// the recovered set is always a clean prefix of the inserts, and the
/// store never refuses to open.
#[test]
fn every_wal_truncation_point_recovers_a_prefix() {
    let dir = temp_root("prefix");
    {
        let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
        for i in 0..4 {
            store.insert(key("shop", i), entry("shop", "<x/>", &["t"]));
        }
    }
    let wal = dir.join("wal.log");
    let full = fs::read(&wal).unwrap();
    // Sampling every 7th byte keeps the test fast while still hitting
    // header, mid-record and record-boundary cuts.
    for cut in (0..=full.len()).step_by(7) {
        fs::write(&wal, &full[..cut]).unwrap();
        let store = TieredStore::open(8, &StoreConfig::new(&dir))
            .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let recovered: Vec<bool> = (0..4)
            .map(|i| store.peek(&key("shop", i)).is_some())
            .collect();
        let count = recovered.iter().filter(|&&r| r).count();
        assert_eq!(
            &recovered[..count],
            &vec![true; count][..],
            "cut {cut}: recovered set must be a prefix, got {recovered:?}"
        );
        drop(store);
        // Reopening appended a fresh header if the file was emptied;
        // restore the full WAL for the next iteration.
        fs::write(&wal, &full).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Snapshot + WAL replay reproduces the pre-crash contents exactly:
/// compacting before and after a crash yields byte-identical
/// `snapshot.log` files, including provenance and tombstone effects.
#[test]
fn recovered_store_compacts_to_byte_identical_snapshot() {
    let dir = temp_root("equiv");
    let pre_crash = {
        let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
        store.insert(
            key("shop", 1),
            entry("shop", "<a>1</a>", &["alpha", "beta"]),
        );
        store.insert(key("news", 2), entry("news", "<n/>", &["clip\twith\ttabs"]));
        store.insert(key("shop", 3), entry("shop", "<c/>", &["gone"]));
        store.invalidate(&key("shop", 3));
        store.insert(key("flights", 4), entry("flights", "<f/>", &["LX\n22"]));
        // The pre-crash ground truth: a deterministic snapshot of the
        // live contents (sorted by key, created times persisted).
        store.compact();
        fs::read(dir.join("snapshot.log")).unwrap()
    };
    // "Crash" (drop without further writes), recover, and compact again.
    let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
    assert_eq!(store.store_stats().recovered, 3);
    assert!(store.peek(&key("shop", 3)).is_none(), "tombstone holds");
    store.compact();
    let post_recovery = fs::read(dir.join("snapshot.log")).unwrap();
    assert_eq!(
        pre_crash, post_recovery,
        "recovered store must compact to the byte-identical snapshot"
    );
    // And the provenance rides along: the recovered entry still knows
    // its wrapper version, producing rules and source hash.
    let recovered = store.peek(&key("shop", 1)).unwrap();
    assert_eq!(recovered.provenance.version, 2);
    assert_eq!(recovered.provenance.source_hash, 0xFEED);
    assert_eq!(recovered.result.producing_rule(1), Some(1));
    fs::remove_dir_all(&dir).unwrap();
}

/// A crash between the WAL append and anything else still recovers: the
/// WAL alone (no snapshot file at all) is a complete store.
#[test]
fn wal_only_directory_recovers_without_a_snapshot() {
    let dir = temp_root("walonly");
    {
        let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
        store.insert(key("shop", 1), entry("shop", "<a/>", &["x"]));
    }
    assert!(!dir.join("snapshot.log").exists(), "no compaction ran");
    let store = TieredStore::open(8, &StoreConfig::new(&dir)).unwrap();
    let hit = store.peek(&key("shop", 1)).expect("WAL replay");
    assert_eq!(hit.xml, "<a/>");
    fs::remove_dir_all(&dir).unwrap();
}

/// The two durable substrates share one data directory and both recover
/// past corruption in the other's files untouched: a corrupt wrapper
/// manifest does not impede store recovery and vice versa.
#[test]
fn shared_durability_directory_recovers_both_substrates() {
    let root = temp_root("shared");
    let layout = durability_layout(&root);
    const WRAPPER: &str = r#"item(S, X) :- document("http://x/", S), subelem(S, (?.li, []), X)."#;
    {
        let registry = WrapperRegistry::with_spool(&layout.wrappers).unwrap();
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("items"))
            .unwrap();
        let store = TieredStore::open(8, &StoreConfig::new(&layout.store)).unwrap();
        store.insert(key("shop", 1), entry("shop", "<a/>", &["x"]));
    }
    // Corrupt one file of each substrate.
    fs::write(layout.wrappers.join("junk@1.wrapper"), "not a manifest").unwrap();
    let wal = layout.store.join("wal.log");
    let mut contents = fs::read_to_string(&wal).unwrap();
    contents.push_str("garbage\n");
    fs::write(&wal, contents).unwrap();

    let registry = WrapperRegistry::with_spool(&layout.wrappers).unwrap();
    assert_eq!(registry.catalog(), vec![("shop".to_string(), 1)]);
    let store = TieredStore::open(8, &StoreConfig::new(&layout.store)).unwrap();
    assert!(store.peek(&key("shop", 1)).is_some());
    assert_eq!(store.store_stats().corrupt_records, 1);
    fs::remove_dir_all(&root).unwrap();
}
