//! Prometheus text exposition conformance for `GET /metrics`: the
//! rendered text must parse under the format's grammar (`# HELP` then
//! `# TYPE` before a family's samples, valid metric and label names,
//! escaped label values), and every sample must agree with the JSON
//! rendering of the same snapshot — the two formats are one
//! measurement, twice serialized.

use std::collections::HashMap;
use std::sync::Arc;

use lixto::core::XmlDesign;
use lixto::http::{
    metrics_json, metrics_json_full, render_prometheus, render_prometheus_full, AlertsSnapshot,
    GatewayObservations, Json, LoopGauges,
};
use lixto::obs::{RuleSnapshot, RuleStat, Severity};
use lixto::server::{
    ExtractionRequest, ExtractionServer, RequestSource, ServerConfig, WatchSample, WatchStatus,
    WrapperRegistry,
};

const WRAPPER: &str = r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#;

// ---------------------------------------------------------------------
// A small parser for the Prometheus text exposition format
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
struct Sample {
    name: String,
    /// Label pairs with their values unescaped, in appearance order.
    labels: Vec<(String, String)>,
    value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

/// Unescape a Prometheus label value (the text between the quotes).
/// Only `\\`, `\"` and `\n` are legal escapes.
fn unescape_label_value(raw: &str) -> Result<String, String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            assert_ne!(c, '"', "unescaped quote inside label value: {raw}");
            assert_ne!(c, '\n', "raw newline inside label value: {raw}");
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape \\{other:?} in label value {raw}")),
        }
    }
    Ok(out)
}

/// Parse one sample line: `name{label="value",...} value`.
fn parse_sample(line: &str) -> Sample {
    let (name_and_labels, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("bad value: {line}"));
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').expect("label block closes");
            let mut labels = Vec::new();
            // Split on `",` boundaries that end a label value; values
            // themselves never end with a lone backslash before the
            // quote because `\` is always escaped.
            let mut remaining = body;
            while !remaining.is_empty() {
                let (label, rest) = remaining.split_once("=\"").expect("label=\"value\"");
                assert!(
                    valid_label_name(label),
                    "bad label name {label:?} in {line}"
                );
                // Find the closing unescaped quote.
                let mut end = None;
                let bytes = rest.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            end = Some(i);
                            break;
                        }
                        _ => i += 1,
                    }
                }
                let end = end.expect("label value closes");
                let raw = &rest[..end];
                labels.push((label.to_string(), unescape_label_value(raw).unwrap()));
                remaining = rest[end + 1..]
                    .strip_prefix(',')
                    .unwrap_or(&rest[end + 1..]);
            }
            (name.to_string(), labels)
        }
    };
    assert!(valid_metric_name(&name), "bad metric name {name:?}");
    Sample {
        name,
        labels,
        value,
    }
}

/// Parse a full exposition, enforcing HELP-before-TYPE-before-samples
/// and that every sample belongs to a declared family.
fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut helped: Vec<String> = Vec::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            assert!(valid_metric_name(name), "HELP for bad name {name:?}");
            assert!(!help.is_empty(), "empty HELP for {name}");
            assert!(
                !helped.contains(&name.to_string()),
                "duplicate HELP for {name}"
            );
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(
                helped.last().map(String::as_str) == Some(name),
                "TYPE for {name} must directly follow its HELP"
            );
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "bad TYPE {kind:?} for {name}"
            );
            assert!(!typed.contains_key(name), "duplicate TYPE for {name}");
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        let sample = parse_sample(line);
        assert!(
            typed.contains_key(&sample.name),
            "sample for undeclared family: {line}"
        );
        samples.push(sample);
    }
    assert_eq!(
        helped.len(),
        typed.len(),
        "every HELP is paired with a TYPE"
    );
    samples
}

// ---------------------------------------------------------------------
// Building the expected sample set from the JSON rendering
// ---------------------------------------------------------------------

fn u(json: &Json, key: &str) -> f64 {
    json.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key}")) as f64
}

/// Flatten the JSON metrics document into the same keyed sample set the
/// Prometheus text is expected to contain.
fn expected_samples(json: &Json) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    let mut put = |name: &str, labels: &[(&str, &str)], value: f64| {
        let mut key = name.to_string();
        for (k, v) in labels {
            key.push_str(&format!("|{k}={v}"));
        }
        assert!(out.insert(key, value).is_none(), "duplicate sample {name}");
    };

    put("lixto_requests_submitted_total", &[], u(json, "submitted"));
    put("lixto_requests_completed_total", &[], u(json, "completed"));
    put("lixto_requests_errored_total", &[], u(json, "errors"));
    put("lixto_requests_rejected_total", &[], u(json, "rejected"));
    let throughput = json
        .get("throughput_per_sec")
        .and_then(Json::as_f64)
        .unwrap();
    // The text format prints it with three decimals.
    put(
        "lixto_throughput_per_second",
        &[],
        format!("{throughput:.3}").parse().unwrap(),
    );
    put("lixto_latency_p50_microseconds", &[], u(json, "p50_us"));
    put("lixto_latency_p99_microseconds", &[], u(json, "p99_us"));
    put("lixto_workers", &[], u(json, "workers"));

    for (shard, depth) in json
        .get("queue_depths")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .enumerate()
    {
        put(
            "lixto_queue_depth",
            &[("shard", &shard.to_string())],
            depth.as_u64().unwrap() as f64,
        );
    }
    for stage in json.get("stages").and_then(Json::as_array).unwrap() {
        let name = stage.get("stage").and_then(Json::as_str).unwrap();
        put(
            "lixto_stage_observations_total",
            &[("stage", name)],
            u(stage, "count"),
        );
        put(
            "lixto_stage_latency_p50_microseconds",
            &[("stage", name)],
            u(stage, "p50_us"),
        );
        put(
            "lixto_stage_latency_p99_microseconds",
            &[("stage", name)],
            u(stage, "p99_us"),
        );
    }
    for entry in json.get("rules").and_then(Json::as_array).unwrap() {
        let wrapper = entry.get("wrapper").and_then(Json::as_str).unwrap();
        for rule in entry.get("rules").and_then(Json::as_array).unwrap() {
            let id = rule.get("rule").and_then(Json::as_u64).unwrap().to_string();
            let pattern = rule.get("label").and_then(Json::as_str).unwrap();
            let labels = [
                ("wrapper", wrapper),
                ("rule", id.as_str()),
                ("pattern", pattern),
            ];
            put(
                "lixto_rule_invocations_total",
                &labels,
                u(rule, "invocations"),
            );
            put("lixto_rule_matches_total", &labels, u(rule, "matches"));
            put("lixto_rule_nanoseconds_total", &labels, u(rule, "total_ns"));
        }
    }

    let cache = json.get("cache").unwrap();
    put("lixto_cache_hits_total", &[], u(cache, "hits"));
    put("lixto_cache_misses_total", &[], u(cache, "misses"));
    put("lixto_cache_evictions_total", &[], u(cache, "evictions"));
    put(
        "lixto_cache_invalidations_total",
        &[],
        u(cache, "invalidations"),
    );
    put("lixto_cache_entries", &[], u(cache, "len"));

    let store = json.get("store").unwrap();
    put("lixto_store_persisted_total", &[], u(store, "persisted"));
    put("lixto_store_recovered_total", &[], u(store, "recovered"));
    put("lixto_store_disk_hits_total", &[], u(store, "disk_hits"));
    put("lixto_store_entries", &[], u(store, "disk_len"));
    put("lixto_store_bytes", &[], u(store, "disk_bytes"));
    put(
        "lixto_store_corrupt_records_total",
        &[],
        u(store, "corrupt_records"),
    );
    put(
        "lixto_store_compactions_total",
        &[],
        u(store, "compactions"),
    );
    put("lixto_store_expired_total", &[], u(store, "expired"));
    put(
        "lixto_store_evictions_total",
        &[],
        u(store, "disk_evictions"),
    );
    put(
        "lixto_store_write_errors_total",
        &[],
        u(store, "write_errors"),
    );

    let gateway = json.get("gateway").unwrap();
    put(
        "lixto_http_connections_total",
        &[],
        u(gateway, "connections"),
    );
    put("lixto_http_requests_total", &[], u(gateway, "requests"));
    put(
        "lixto_http_responses_4xx_total",
        &[],
        u(gateway, "responses_4xx"),
    );
    put(
        "lixto_http_responses_5xx_total",
        &[],
        u(gateway, "responses_5xx"),
    );
    for (i, event_loop) in gateway
        .get("event_loops")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .enumerate()
    {
        let index = i.to_string();
        put(
            "lixto_http_loop_connections",
            &[("loop", &index)],
            u(event_loop, "connections"),
        );
        put(
            "lixto_http_loop_parked",
            &[("loop", &index)],
            u(event_loop, "parked"),
        );
    }
    let wake = gateway.get("wake").unwrap();
    put("lixto_http_wake_observations_total", &[], u(wake, "count"));
    put("lixto_http_wake_p50_microseconds", &[], u(wake, "p50_us"));
    put("lixto_http_wake_p99_microseconds", &[], u(wake, "p99_us"));

    // The watch surface only exists while the subscription layer runs;
    // same absence contract as the alerts below.
    if let Some(watches) = json.get("watches") {
        put("lixto_watch_registered", &[], u(watches, "registered"));
        put("lixto_watch_subscribers", &[], u(watches, "subscribers"));
        put(
            "lixto_watch_webhook_deliveries_total",
            &[],
            u(watches, "webhook_deliveries"),
        );
        put(
            "lixto_watch_webhook_failures_total",
            &[],
            u(watches, "webhook_failures"),
        );
        for watch in watches.get("watches").and_then(Json::as_array).unwrap() {
            let id = watch.get("id").and_then(Json::as_str).unwrap();
            put(
                "lixto_watch_ticks_total",
                &[("watch", id)],
                u(watch, "ticks"),
            );
            put(
                "lixto_watch_events_total",
                &[("watch", id)],
                u(watch, "seq"),
            );
            put(
                "lixto_watch_suppressed_total",
                &[("watch", id)],
                u(watch, "suppressed"),
            );
            put(
                "lixto_watch_errors_total",
                &[("watch", id)],
                u(watch, "errors"),
            );
        }
    }

    // The alert surface only exists while the monitor runs; its absence
    // from the JSON must mean its absence from the text, which the
    // bidirectional check enforces by leaving these samples out.
    if let Some(alerts) = json.get("alerts") {
        let rank = |severity: &str| match severity {
            "ok" => 0.0,
            "degraded" => 1.0,
            "critical" => 2.0,
            other => panic!("unknown severity {other:?}"),
        };
        let verdict = alerts.get("verdict").and_then(Json::as_str).unwrap();
        put("lixto_alert_verdict", &[], rank(verdict));
        for rule in alerts.get("rules").and_then(Json::as_array).unwrap() {
            let name = rule.get("rule").and_then(Json::as_str).unwrap();
            let severity = rule.get("severity").and_then(Json::as_str).unwrap();
            put("lixto_alert_severity", &[("rule", name)], rank(severity));
            put(
                "lixto_alert_fired_total",
                &[("rule", name)],
                u(rule, "fired_total"),
            );
            put(
                "lixto_alert_resolved_total",
                &[("rule", name)],
                u(rule, "resolved_total"),
            );
        }
    }

    out
}

fn sample_key(sample: &Sample) -> String {
    let mut key = sample.name.clone();
    for (k, v) in &sample.labels {
        key.push_str(&format!("|{k}={v}"));
    }
    key
}

// ---------------------------------------------------------------------
// The round trip
// ---------------------------------------------------------------------

#[test]
fn prometheus_text_round_trips_against_the_json_snapshot() {
    // A live pool with some traffic, so stage histograms and pool
    // counters are non-trivial.
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
        .unwrap();
    let server = ExtractionServer::start(
        ServerConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 32,
            cache_capacity: 16,
            store: None,
        },
        registry,
        Arc::new(lixto::elog::StaticWeb::new()),
    );
    for i in 0..4 {
        let response = server
            .execute(ExtractionRequest {
                trace: None,
                wrapper: "shop".into(),
                version: None,
                source: RequestSource::Inline {
                    url: "http://shop/".into(),
                    html: format!("<ul><li>item {}</li></ul>", i / 2),
                },
            })
            .unwrap();
        assert_eq!(response.wrapper, "shop");
    }
    let snapshot = server.metrics();
    assert!(snapshot.completed >= 4);

    // Gateway-side observations are hand-built: label values are chosen
    // to be actively hostile to the text format (backslashes, quotes,
    // newlines) — the registry's HTTP deploy path would refuse such
    // names, but the renderer must survive anything the API can hold.
    let stats = lixto::http::GatewayStats {
        connections: 3,
        requests: 17,
        responses_4xx: 2,
        responses_5xx: 1,
    };
    let observations = GatewayObservations {
        event_loops: vec![
            LoopGauges {
                connections: 2,
                parked: 1,
            },
            LoopGauges {
                connections: 0,
                parked: 0,
            },
        ],
        wake_count: 9,
        wake_p50_us: 40,
        wake_p99_us: 900,
        rules: vec![
            (
                "shop".to_string(),
                vec![RuleStat {
                    rule: 0,
                    label: "offer".to_string(),
                    invocations: 8,
                    matches: 4,
                    total_ns: 123_456,
                }],
            ),
            (
                "we\"ird\\name\nwrapped".to_string(),
                vec![RuleStat {
                    rule: 1,
                    label: "pat\"tern\\with\nnoise".to_string(),
                    invocations: 1,
                    matches: 0,
                    total_ns: 7,
                }],
            ),
        ],
    };

    let json = metrics_json(&snapshot, &stats, &observations);
    let text = render_prometheus(&snapshot, &stats, &observations);

    // The text parses under the exposition grammar (this alone checks
    // HELP/TYPE ordering, name validity and label escaping).
    let samples = parse_exposition(&text);

    // Every text sample matches the JSON value, and nothing is missing
    // in either direction.
    let mut expected = expected_samples(&json);
    for sample in &samples {
        let key = sample_key(sample);
        let want = expected
            .remove(&key)
            .unwrap_or_else(|| panic!("text sample {key} absent from the JSON rendering"));
        assert!(
            (sample.value - want).abs() < 1e-9,
            "{key}: text says {} but JSON says {want}",
            sample.value
        );
    }
    assert!(
        expected.is_empty(),
        "JSON values missing from the text rendering: {:?}",
        expected.keys().collect::<Vec<_>>()
    );

    // The hostile labels survived the round trip intact (parser
    // unescaped what the renderer escaped).
    assert!(samples.iter().any(|s| {
        s.name == "lixto_rule_invocations_total"
            && s.labels
                .iter()
                .any(|(k, v)| k == "wrapper" && v == "we\"ird\\name\nwrapped")
    }));

    server.initiate_shutdown();
}

#[test]
fn alert_series_round_trip_and_vanish_when_the_monitor_is_off() {
    let snapshot = lixto::server::MetricsSnapshot::default();
    let stats = lixto::http::GatewayStats::default();
    let observations = GatewayObservations::default();

    // Monitor and watch layer off: the `_full` renderers with neither
    // snapshot are byte-identical to the plain ones — the documented
    // disabled surface.
    assert_eq!(
        metrics_json_full(&snapshot, &stats, &observations, None, None).to_string(),
        metrics_json(&snapshot, &stats, &observations).to_string()
    );
    assert_eq!(
        render_prometheus_full(&snapshot, &stats, &observations, None, None),
        render_prometheus(&snapshot, &stats, &observations)
    );

    // Monitor on: the alert families obey the exposition grammar and
    // agree with the JSON rendering, sample for sample.
    let rule = |name: &'static str, severity: Severity, fired: u64, resolved: u64| RuleSnapshot {
        rule: name,
        metric: name,
        severity,
        value: 0.5,
        degraded: 0.75,
        critical: 2.0,
        clear: 0.3,
        since_ms: 1_234,
        fired_total: fired,
        resolved_total: resolved,
    };
    let alerts = AlertsSnapshot {
        verdict: Severity::Critical,
        rules: vec![
            rule("error_rate", Severity::Critical, 3, 2),
            rule("queue_saturation", Severity::Degraded, 1, 0),
            rule("wake_latency", Severity::Ok, 0, 0),
        ],
    };
    // Watch layer on: the per-watch families round-trip too, hostile
    // watch ids escaped on the way out and unescaped by the parser.
    let watches = WatchSample {
        registered: 2,
        subscribers: 1,
        webhook_deliveries: 7,
        webhook_failures: 2,
        watches: vec![
            WatchStatus {
                id: "offers-hourly".into(),
                wrapper: "shop".into(),
                url: "http://shop/".into(),
                interval_ms: 1_000,
                webhook: None,
                ticks: 12,
                seq: 3,
                suppressed: 8,
                errors: 1,
            },
            WatchStatus {
                id: "we\"ird\\watch".into(),
                wrapper: "shop".into(),
                url: "http://shop/b".into(),
                interval_ms: 250,
                webhook: Some("http://sink:1/hook".into()),
                ticks: 4,
                seq: 4,
                suppressed: 0,
                errors: 0,
            },
        ],
    };
    let json = metrics_json_full(
        &snapshot,
        &stats,
        &observations,
        Some(&alerts),
        Some(&watches),
    );
    let text = render_prometheus_full(
        &snapshot,
        &stats,
        &observations,
        Some(&alerts),
        Some(&watches),
    );
    let samples = parse_exposition(&text);
    let mut expected = expected_samples(&json);
    for sample in &samples {
        let key = sample_key(sample);
        let want = expected
            .remove(&key)
            .unwrap_or_else(|| panic!("text sample {key} absent from the JSON rendering"));
        assert!(
            (sample.value - want).abs() < 1e-9,
            "{key}: text says {} but JSON says {want}",
            sample.value
        );
    }
    assert!(
        expected.is_empty(),
        "JSON values missing from the text rendering: {:?}",
        expected.keys().collect::<Vec<_>>()
    );
    assert!(text.contains("lixto_alert_verdict 2"));
    assert!(text.contains("lixto_watch_registered 2"));
    assert!(samples.iter().any(|s| {
        s.name == "lixto_watch_ticks_total"
            && s.labels
                .iter()
                .any(|(k, v)| k == "watch" && v == "we\"ird\\watch")
    }));
}

#[test]
fn escaping_is_reversible_for_every_special_character() {
    // One rule per special character, plus combinations.
    let hostile = [
        "back\\slash",
        "quo\"te",
        "new\nline",
        "\\\"\n",
        "\\n is two chars",
        "trailing backslash \\",
    ];
    let rules: Vec<(String, Vec<RuleStat>)> = hostile
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                (*name).to_string(),
                vec![RuleStat {
                    rule: i,
                    label: format!("label {name}"),
                    invocations: i as u64 + 1,
                    matches: 0,
                    total_ns: 0,
                }],
            )
        })
        .collect();
    let observations = GatewayObservations {
        rules,
        ..GatewayObservations::default()
    };
    let snapshot = lixto::server::MetricsSnapshot::default();
    let stats = lixto::http::GatewayStats::default();
    let text = render_prometheus(&snapshot, &stats, &observations);
    let samples = parse_exposition(&text);
    for name in hostile {
        assert!(
            samples
                .iter()
                .any(|s| s.name == "lixto_rule_invocations_total"
                    && s.labels.iter().any(|(k, v)| k == "wrapper" && v == name)),
            "wrapper name {name:?} did not survive the escape round trip"
        );
    }
}
