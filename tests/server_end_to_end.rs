//! End-to-end exercise of the `lixto_server` serving layer: many
//! concurrent clients replaying mixed workload traffic against a sharded
//! worker pool, checked for byte-identical agreement with the
//! single-threaded engine, for cache effectiveness, and for clean
//! shutdown.

use std::collections::HashMap;
use std::sync::Arc;

use lixto::core::to_xml;
use lixto::elog::{parse_program, Extractor, SinglePage, StaticWeb};
use lixto::server::{
    ExtractionRequest, ExtractionServer, RequestSource, ServerConfig, ServerError, WrapperRegistry,
};
use lixto::workloads::traffic::{self, WrapperProfile};
use lixto_bench::{workload_design, workload_registry};

/// The single-threaded reference: run the Extractor directly and render
/// XML exactly as the server does.
fn baseline_xml(profile: &WrapperProfile, url: &str, html: &str) -> String {
    let program = parse_program(profile.program).unwrap();
    let web = SinglePage {
        url: url.to_string(),
        html: html.to_string(),
    };
    let result = Extractor::new(program, &web).run();
    lixto::xml::to_string(&to_xml(&result, &workload_design(profile)))
}

#[test]
fn concurrent_clients_agree_with_single_threaded_engine() {
    const USERS: usize = 25;
    const PER_USER: usize = 5; // 125 requests ≥ the 100 the issue asks for

    let registry = workload_registry();
    let server = ExtractionServer::start(
        ServerConfig {
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            store: None,
        },
        registry,
        Arc::new(StaticWeb::new()),
    );
    let requests = traffic::requests(42, USERS, PER_USER);
    assert!(requests.len() >= 100);

    // Reference results, computed single-threaded per unique document.
    let profiles: HashMap<&str, WrapperProfile> = traffic::profiles()
        .into_iter()
        .map(|p| (p.name, p))
        .collect();
    let mut reference: HashMap<(&str, String), String> = HashMap::new();
    for r in &requests {
        reference
            .entry((r.wrapper, r.html.clone()))
            .or_insert_with(|| baseline_xml(&profiles[r.wrapper], &r.url, &r.html));
    }
    assert!(
        reference.len() < requests.len(),
        "traffic must repeat documents so the cache can hit"
    );

    // One client thread per simulated user, all hammering the pool
    // concurrently through the blocking (backpressuring) submit path.
    std::thread::scope(|scope| {
        let server = &server;
        let reference = &reference;
        let mut clients = Vec::new();
        for user in 0..USERS {
            let mine: Vec<_> = requests
                .iter()
                .filter(|r| r.user == user)
                .cloned()
                .collect();
            clients.push(scope.spawn(move || {
                for r in mine {
                    let response = server
                        .execute(ExtractionRequest {
                            trace: None,
                            wrapper: r.wrapper.to_string(),
                            version: None,
                            source: RequestSource::Inline {
                                url: r.url.clone(),
                                html: r.html.clone(),
                            },
                        })
                        .expect("extraction succeeds");
                    // Byte-identical to the single-threaded engine, hit
                    // or miss.
                    assert_eq!(
                        response.xml(),
                        reference[&(r.wrapper, r.html.clone())],
                        "server output diverged for wrapper {}",
                        r.wrapper
                    );
                }
            }));
        }
        for c in clients {
            c.join().expect("client thread panicked");
        }
    });

    let snapshot = server.metrics();
    assert_eq!(snapshot.completed, requests.len() as u64);
    assert_eq!(snapshot.errors, 0);
    assert_eq!(snapshot.queue_depths.len(), 4);
    assert!(
        snapshot.cache.hits > 0,
        "repeated documents must hit the cache: {:?}",
        snapshot.cache
    );
    assert!(snapshot.cache.hit_rate() > 0.0);
    assert!(snapshot.p50_us > 0 && snapshot.p99_us >= snapshot.p50_us);
    assert!(snapshot.throughput_per_sec > 0.0);

    // Cached results are the *same values* a fresh engine run produces.
    let sample = &requests[0];
    let repeat = server
        .execute(ExtractionRequest {
            trace: None,
            wrapper: sample.wrapper.to_string(),
            version: None,
            source: RequestSource::Inline {
                url: sample.url.clone(),
                html: sample.html.clone(),
            },
        })
        .unwrap();
    assert!(
        repeat.cache_hit,
        "125 requests over ~15 documents must re-hit"
    );
    let fresh = Extractor::new(
        parse_program(profiles[sample.wrapper].program).unwrap(),
        &SinglePage {
            url: sample.url.clone(),
            html: sample.html.clone(),
        },
    )
    .run();
    assert_eq!(
        *repeat.extraction(),
        fresh,
        "cached ExtractionResult must equal a fresh run"
    );

    // Clean shutdown: every worker joined, nothing left running.
    let report = server.shutdown();
    assert_eq!(report.workers_joined, 8, "4 shards × 2 workers all joined");
    assert_eq!(report.jobs_completed, requests.len() as u64 + 1);
}

#[test]
fn shutdown_rejects_new_work_but_drains_queued_jobs() {
    let registry = workload_registry();
    let server = ExtractionServer::start(
        ServerConfig {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 8,
            cache_capacity: 16,
            store: None,
        },
        registry,
        Arc::new(StaticWeb::new()),
    );
    let requests = traffic::requests(7, 4, 3);
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| {
            server
                .submit(ExtractionRequest {
                    trace: None,
                    wrapper: r.wrapper.to_string(),
                    version: None,
                    source: RequestSource::Inline {
                        url: r.url.clone(),
                        html: r.html.clone(),
                    },
                })
                .unwrap()
        })
        .collect();
    let report = server.shutdown();
    assert_eq!(report.workers_joined, 4);
    for t in tickets {
        assert!(t.wait().is_ok(), "queued jobs complete during drain");
    }
    assert_eq!(report.jobs_completed, requests.len() as u64);
}

#[test]
fn unknown_wrapper_is_rejected_before_queueing() {
    let server = ExtractionServer::start(
        ServerConfig::default(),
        Arc::new(WrapperRegistry::new()),
        Arc::new(StaticWeb::new()),
    );
    let err = server
        .execute(ExtractionRequest {
            trace: None,
            wrapper: "ghost".into(),
            version: None,
            source: RequestSource::Web { url: "u".into() },
        })
        .unwrap_err();
    assert_eq!(err, ServerError::UnknownWrapper("ghost".into()));
    let snapshot = server.metrics();
    assert_eq!(snapshot.submitted, 0, "rejected before any queue");
    server.shutdown();
}
