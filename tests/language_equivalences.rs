//! Property-based cross-engine equivalences: the different evaluators in
//! this repository implement the same semantics, so on random inputs they
//! must agree — the Figure 6 landscape as a proptest.

use proptest::prelude::*;

/// Strategy: a small random HTML-ish document.
fn arb_doc() -> impl Strategy<Value = String> {
    let tag = prop::sample::select(vec!["div", "p", "table", "tr", "td", "i", "b", "a"]);
    // A flat-ish random nesting built from a sequence of (open/close/text) ops.
    proptest::collection::vec((tag, 0u8..3), 1..20).prop_map(|ops| {
        let mut html = String::from("<html><body>");
        let mut stack: Vec<&str> = Vec::new();
        for (t, action) in ops {
            match action {
                0 => {
                    html.push_str(&format!("<{t}>"));
                    stack.push(t);
                }
                1 => {
                    if let Some(top) = stack.pop() {
                        html.push_str(&format!("</{top}>"));
                    } else {
                        html.push('x');
                    }
                }
                _ => html.push_str("txt "),
            }
        }
        while let Some(top) = stack.pop() {
            html.push_str(&format!("</{top}>"));
        }
        html.push_str("</body></html>");
        html
    })
}

/// Strategy: a random Core XPath query from a small grammar.
fn arb_query() -> impl Strategy<Value = String> {
    let name = prop::sample::select(vec!["div", "p", "table", "tr", "td", "i", "b", "a"]);
    let axis = prop::sample::select(vec![
        "", // child abbreviation
        "descendant::",
        "following-sibling::",
        "preceding-sibling::",
        "ancestor::",
        "following::",
    ]);
    let pred_name = prop::sample::select(vec!["td", "i", "a", "p"]);
    let pred_kind = 0u8..3;
    (name.clone(), axis, name, pred_kind, pred_name).prop_map(|(n1, ax, n2, pk, pn)| {
        let pred = match pk {
            0 => String::new(),
            1 => format!("[{pn}]"),
            _ => format!("[not({pn})]"),
        };
        format!("//{n1}{pred}/{ax}{n2}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core XPath: the linear evaluator, the polynomial evaluator and the
    /// naive baseline agree (after dedup) on random docs and queries.
    #[test]
    fn xpath_evaluators_agree(html in arb_doc(), q in arb_query()) {
        let doc = lixto_html::parse(&html);
        let query = lixto_xpath::parse(&q).unwrap();
        let core = lixto_xpath::core::eval_core(&doc, &query).unwrap();
        let cvt = lixto_xpath::cvt::eval(&doc, &query).unwrap();
        prop_assert_eq!(&core, &cvt, "core vs cvt on {} over {}", q, html);
        let mut naive = lixto_xpath::naive::eval_naive(&doc, &query);
        naive.sort_by_key(|&n| doc.order().pre(n));
        naive.dedup();
        prop_assert_eq!(&core, &naive, "core vs naive on {} over {}", q, html);
    }

    /// Theorem 4.6 as a property: translation to datalog preserves answers.
    #[test]
    fn xpath_tmnf_translation_preserves_answers(html in arb_doc(), q in arb_query()) {
        let doc = lixto_html::parse(&html);
        let query = lixto_xpath::parse(&q).unwrap();
        let want = lixto_xpath::core::eval_core(&doc, &query).unwrap();
        let t = lixto_xpath::to_tmnf::core_to_datalog(&query).unwrap();
        let got = lixto_xpath::to_tmnf::eval_translated(&doc, &t).unwrap();
        prop_assert_eq!(want, got, "query {} over {}", q, html);
    }

    /// The HTML parser always produces a tree whose relations satisfy the
    /// τ_ur invariants.
    #[test]
    fn tau_ur_invariants(html in arb_doc()) {
        let doc = lixto_html::parse(&html);
        let o = doc.order();
        for n in doc.node_ids() {
            // firstchild/nextsibling functional + inverse-consistent
            if let Some(fc) = doc.first_child(n) {
                prop_assert_eq!(doc.parent(fc), Some(n));
                prop_assert!(doc.is_first_sibling(fc));
            }
            if let Some(ns) = doc.next_sibling(n) {
                prop_assert_eq!(doc.prev_sibling(ns), Some(n));
                prop_assert_eq!(doc.parent(ns), doc.parent(n));
                prop_assert!(doc.doc_before(n, ns));
            }
            // ancestor iff pre/post sandwich
            for m in doc.node_ids() {
                let anc = doc.is_ancestor_or_self(n, m);
                let sandwich = o.pre(n) <= o.pre(m) && o.post(n) >= o.post(m);
                prop_assert_eq!(anc, sandwich);
            }
        }
    }

    /// Monadic datalog: the linear tree pipeline equals the general
    /// engine on random tree-shaped programs.
    #[test]
    fn datalog_engines_agree(html in arb_doc(), seed_label in prop::sample::select(vec!["td", "i", "p"])) {
        let doc = lixto_html::parse(&html);
        let src = format!(
            r#"seed(X) :- label(X, "{seed_label}").
               below(X) :- seed(S), child(S, X).
               below(X) :- below(S), child(S, X).
               mark(X) :- below(X), leaf(X)."#
        );
        let program = lixto_datalog::parse_program(&src).unwrap();
        let fast = lixto_datalog::MonadicEvaluator::new(&doc).eval(&program).unwrap();
        let db = lixto_datalog::tree_db(&doc);
        let slow = lixto_datalog::seminaive::eval(&db, &program).unwrap();
        for pred in program.idb_predicates() {
            let got: Vec<u32> = fast[&pred].iter().map(|n| n.index() as u32).collect();
            let mut want: Vec<u32> = slow.tuples(&pred).map(|t| t[0]).collect();
            want.sort_by_key(|&c| doc.order().pre(lixto_tree::NodeId::from_index(c as usize)));
            prop_assert_eq!(got, want, "{}", pred);
        }
    }

    /// CQ solvers agree on random acyclic queries (Yannakakis vs
    /// backtracking).
    #[test]
    fn cq_solvers_agree(tree_seed in 0u64..500, q_seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(tree_seed);
        let doc = lixto_cq::generate::random_tree(&mut rng, 25, &["a", "b", "c"]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(q_seed);
        let cq = lixto_cq::generate::random_acyclic_cq(
            &mut rng,
            4,
            &[
                lixto_cq::CqAxis::Child,
                lixto_cq::CqAxis::ChildPlus,
                lixto_cq::CqAxis::NextSiblingStar,
                lixto_cq::CqAxis::Following,
            ],
            &["a", "b", "c"],
        );
        let fast = lixto_cq::yannakakis::eval_boolean(&doc, &cq).unwrap();
        let slow = lixto_cq::generic::eval_boolean(&doc, &cq);
        prop_assert_eq!(fast, slow);
    }

    /// The regex engine agrees with itself across equivalent pattern
    /// rewritings (a+ ≡ aa*), and find/captures are consistent.
    #[test]
    fn regex_consistency(hay in "[ab]{0,12}") {
        let plus = lixto_regexlite::Regex::new("ab+").unwrap();
        let star = lixto_regexlite::Regex::new("abb*").unwrap();
        prop_assert_eq!(plus.is_match(&hay), star.is_match(&hay));
        if let Some(m) = plus.find(&hay) {
            let m2 = star.find(&hay).unwrap();
            prop_assert_eq!((m.start, m.end), (m2.start, m2.end));
        }
    }
}
