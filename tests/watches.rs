//! Continuous extraction end to end: a fleet of watches over a mutating
//! web must deliver exactly one instance-level diff per change — the
//! diff agreeing with a reference recompute — deliver nothing on
//! unchanged ticks, stay fresh within a bounded latency while all
//! watches tick concurrently, and survive a gateway restart through the
//! durability spool.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lixto::core::XmlDesign;
use lixto::elog::SharedWeb;
use lixto::http::{GatewayConfig, HttpClient, HttpGateway, Json};
use lixto::server::{
    durability_layout, ExtractionRequest, ExtractionServer, RequestSource, ServerConfig,
    WatchEvent, WatchRegistry, WatchScheduler, WatchSpec, WrapperRegistry,
};
use lixto::transform::{diff_snapshots, ExtractionSnapshot, InstanceDiff};

fn shop_url(i: usize) -> String {
    format!("http://shop{i}/")
}

fn shop_program(i: usize) -> String {
    format!(
        r#"
        offer(S, X) :- document("{url}", S), subelem(S, (?.li, []), X).
        name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
        "#,
        url = shop_url(i)
    )
}

fn page(items: &[String]) -> String {
    let mut html = String::from("<html><body><ul>");
    for item in items {
        html.push_str(&format!("<li><b>{item}</b></li>"));
    }
    html.push_str("</ul></body></html>");
    html
}

fn items_v1(i: usize) -> Vec<String> {
    (0..3).map(|n| format!("item-{i}-{n}")).collect()
}

/// Version 2 of shop `i`: the middle item mutates in place, a new one
/// appears at the end — every watch must report exactly that.
fn items_v2(i: usize) -> Vec<String> {
    let mut items = items_v1(i);
    items[1] = format!("item-{i}-1-changed");
    items.push(format!("item-{i}-new"));
    items
}

/// The server's own pattern-instance view of a pinned document — the
/// reference the scheduler's snapshots must agree with.
fn reference_snapshot(
    server: &ExtractionServer,
    wrapper: &str,
    url: &str,
    html: &str,
) -> ExtractionSnapshot {
    let response = server
        .execute(ExtractionRequest {
            trace: None,
            wrapper: wrapper.to_string(),
            version: None,
            source: RequestSource::Inline {
                url: url.to_string(),
                html: html.to_string(),
            },
        })
        .expect("reference extraction");
    ExtractionSnapshot::from_pairs(
        response
            .result
            .provenance
            .instances
            .iter()
            .map(|instance| (instance.pattern.clone(), instance.text.clone())),
    )
}

#[test]
fn concurrent_watches_deliver_exact_diffs_once_and_stay_silent_otherwise() {
    const WATCHES: usize = 6;

    let web = Arc::new(SharedWeb::new());
    for i in 0..WATCHES {
        web.put(&shop_url(i), page(&items_v1(i)));
    }
    let wrappers = Arc::new(WrapperRegistry::new());
    for i in 0..WATCHES {
        wrappers
            .register_source(
                &format!("shop{i}"),
                &shop_program(i),
                XmlDesign::new().root("offers"),
            )
            .unwrap();
    }
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        wrappers,
        web.clone(),
    ));
    let registry = Arc::new(WatchRegistry::new());
    for i in 0..WATCHES {
        registry.put(
            &format!("w{i}"),
            WatchSpec {
                wrapper: format!("shop{i}"),
                url: shop_url(i),
                interval: Duration::from_millis(10),
                webhook: None,
            },
        );
    }
    let (tx, rx) = mpsc::channel::<WatchEvent>();
    let scheduler = WatchScheduler::start(
        server.clone(),
        registry.clone(),
        Duration::from_millis(5),
        Box::new(move |event| {
            let _ = tx.send(event);
        }),
    );

    // Every watch baselines and then survives several unchanged ticks
    // without a single delivery.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let sample = registry.sample();
        if sample.watches.iter().all(|w| w.ticks >= 3) {
            break;
        }
        assert!(Instant::now() < deadline, "watches never ticked");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        rx.try_recv().is_err(),
        "a delivery happened although no page changed"
    );
    let sample = registry.sample();
    assert!(
        sample
            .watches
            .iter()
            .all(|w| w.seq == 0 && w.suppressed >= 1),
        "unchanged ticks must be detected and suppressed: {:?}",
        sample
            .watches
            .iter()
            .map(|w| (w.id.clone(), w.ticks, w.seq, w.suppressed))
            .collect::<Vec<_>>()
    );

    // Mutate every page at once, then collect exactly one event per
    // watch within a bounded window.
    let mutated_at = Instant::now();
    for i in 0..WATCHES {
        web.put(&shop_url(i), page(&items_v2(i)));
    }
    let mut events: Vec<WatchEvent> = Vec::new();
    let mut worst_latency = Duration::ZERO;
    while events.len() < WATCHES {
        let event = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("every watch must notice its page changed");
        worst_latency = worst_latency.max(mutated_at.elapsed());
        events.push(event);
    }
    assert!(
        worst_latency < Duration::from_secs(30),
        "change-to-delivery latency unbounded: {worst_latency:?}"
    );

    // Each event is its watch's first and only delivery, and its diff
    // equals an independent recompute from the pinned page versions.
    events.sort_by(|a, b| a.watch.cmp(&b.watch));
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.watch, format!("w{i}"));
        assert_eq!(event.seq, 1, "exactly one delivery for one change");
        let wrapper = format!("shop{i}");
        let url = shop_url(i);
        let before = reference_snapshot(&server, &wrapper, &url, &page(&items_v1(i)));
        let after = reference_snapshot(&server, &wrapper, &url, &page(&items_v2(i)));
        let expected: InstanceDiff = diff_snapshots(&before, &after);
        assert!(
            !expected.is_empty(),
            "the reference diff must be non-trivial"
        );
        assert_eq!(
            event.diff, expected,
            "watch w{i} diff disagrees with the reference recompute"
        );
        // The shape is the one the mutation implies: one in-place change
        // and one addition per pattern (offer and name).
        assert_eq!(event.diff.changed.len(), 2);
        assert_eq!(event.diff.added.len(), 2);
        assert_eq!(event.diff.removed.len(), 0);
    }

    // And silence again: the mutated pages are the new baseline.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        rx.try_recv().is_err(),
        "a second delivery happened for a single change"
    );
    let sample = registry.sample();
    assert!(sample.watches.iter().all(|w| w.seq == 1 && w.errors == 0));

    scheduler.stop();
    server.initiate_shutdown();
}

#[test]
fn watch_subscriptions_survive_a_gateway_restart() {
    let root = std::env::temp_dir().join(format!(
        "lixto-watch-restart-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let layout = durability_layout(&root);

    let make_web = || {
        let web = Arc::new(SharedWeb::new());
        web.put(&shop_url(0), page(&items_v1(0)));
        web
    };
    let make_server = |web: &Arc<SharedWeb>| {
        let wrappers = Arc::new(WrapperRegistry::new());
        wrappers
            .register_source("shop0", &shop_program(0), XmlDesign::new().root("offers"))
            .unwrap();
        Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            wrappers,
            web.clone(),
        ))
    };
    let bind = |server: &Arc<ExtractionServer>| {
        HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 1,
                idle_timeout: Duration::from_secs(10),
                watch_tick: Duration::from_millis(10),
                watch_spool: Some(layout.watches.clone()),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap()
    };

    // First life: register a watch (plus one that is deleted again) and
    // let it baseline.
    {
        let web = make_web();
        let server = make_server(&web);
        let gateway = bind(&server);
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let put = client
            .put_json(
                "/watches/offers",
                &format!(
                    r#"{{"wrapper":"shop0","url":"{}","interval_ms":20,"webhook":"http://sink:9/hook"}}"#,
                    shop_url(0)
                ),
            )
            .unwrap();
        assert_eq!(put.status, 201, "{}", put.text());
        let put = client
            .put_json(
                "/watches/doomed",
                &format!(r#"{{"wrapper":"shop0","url":"{}"}}"#, shop_url(0)),
            )
            .unwrap();
        assert_eq!(put.status, 201, "{}", put.text());
        assert_eq!(
            client
                .request("DELETE", "/watches/doomed", &[], None)
                .unwrap()
                .status,
            200
        );
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    // Second life: the subscription is back (the deleted one is not),
    // with its spec intact — and it resumes ticking against the fresh
    // pool, re-baselining silently before reporting new changes.
    {
        let web = make_web();
        let server = make_server(&web);
        let gateway = bind(&server);
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let listing = client.get("/watches").unwrap().json().unwrap();
        assert_eq!(
            listing
                .get("watches")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1),
            "exactly the surviving watch: {listing}"
        );
        let status = client.get("/watches/offers").unwrap().json().unwrap();
        assert_eq!(status.get("wrapper").and_then(Json::as_str), Some("shop0"));
        assert_eq!(
            status.get("interval_ms").and_then(Json::as_u64),
            Some(20),
            "interval survives the spool round trip"
        );
        assert_eq!(
            status.get("webhook").and_then(Json::as_str),
            Some("http://sink:9/hook"),
            "webhook survives the spool round trip"
        );
        assert_eq!(client.get("/watches/doomed").unwrap().status, 404);
        // Counters restarted from zero; the scheduler picks the watch
        // up again without any re-registration.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = client.get("/watches/offers").unwrap().json().unwrap();
            if status.get("ticks").and_then(Json::as_u64).unwrap_or(0) >= 2 {
                assert_eq!(
                    status.get("seq").and_then(Json::as_u64),
                    Some(0),
                    "a restart re-baselines silently — no replayed diffs"
                );
                break;
            }
            assert!(Instant::now() < deadline, "recovered watch never ticked");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }
    std::fs::remove_dir_all(&root).unwrap();
}
