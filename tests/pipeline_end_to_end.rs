//! Transformation Server scenarios spanning wrappers, pipes and delivery.

use lixto_transform::*;
use lixto_xml::Element;

#[test]
fn figure7_books_pipe_delivers_integrated_xml() {
    let mut pipe = InfoPipe::new();
    let a = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_A_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopA"),
        }),
        Trigger::EveryTick,
    );
    let b = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(lixto_workloads::books::SHOP_B_WRAPPER).unwrap(),
            design: lixto_core::XmlDesign::new().root("shopB"),
        }),
        Trigger::EveryTick,
    );
    let m = pipe.stage(
        Component::Integrate {
            root: "books".into(),
        },
        vec![a, b],
    );
    pipe.stage(
        Component::Deliver {
            channel: "portal".into(),
            only_on_change: false,
        },
        vec![m],
    );
    let delivered = run_ticks(&pipe, 1, &|_| {
        Box::new(lixto_workloads::books::site(1, 5).0)
    });
    assert_eq!(delivered.len(), 1);
    let doc = lixto_xml::parse(&delivered[0].1.body).unwrap();
    assert_eq!(lixto_xml::select::descendants_named(&doc, "book").len(), 10);
}

#[test]
fn threaded_runtime_matches_tick_runtime_output_counts() {
    let build = || {
        let mut pipe = InfoPipe::new();
        let w = pipe.source(
            Component::Wrapper(WrapperComponent {
                program: lixto_elog::parse_program(lixto_workloads::news::NEWS_WRAPPER).unwrap(),
                design: lixto_core::XmlDesign::new().root("nitf"),
            }),
            Trigger::EveryTick,
        );
        let t = pipe.stage(
            Component::Transform(Box::new(|inp: &[Element]| Some(inp[0].clone()))),
            vec![w],
        );
        pipe.stage(
            Component::Deliver {
                channel: "wire".into(),
                only_on_change: false,
            },
            vec![t],
        );
        pipe
    };
    let (web, items) = lixto_workloads::news::site(4, 6);
    let ticks = run_ticks(&build(), 3, &|_| {
        Box::new(lixto_workloads::news::site(4, 6).0)
    });
    assert_eq!(ticks.len(), 3);
    let rx = run_threaded(build(), 3, web);
    let threaded: Vec<_> = rx.iter().collect();
    assert_eq!(threaded.len(), 3);
    for msg in threaded {
        let doc = lixto_xml::parse(&msg.body).unwrap();
        assert_eq!(
            lixto_xml::select::descendants_named(&doc, "story").len(),
            items.len()
        );
    }
}

#[test]
fn slow_trigger_groups_reuse_last_acquisition() {
    // §6.1: charts refresh much slower than playlists; a period-4 source
    // must still contribute its last output on the ticks in between.
    let mut pipe = InfoPipe::new();
    let fast = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(&lixto_workloads::radio::playlist_wrapper(
                lixto_workloads::radio::STATIONS[0],
            ))
            .unwrap(),
            design: lixto_core::XmlDesign::new().root("fast"),
        }),
        Trigger::EveryTick,
    );
    let slow = pipe.source(
        Component::Wrapper(WrapperComponent {
            program: lixto_elog::parse_program(&lixto_workloads::radio::playlist_wrapper(
                lixto_workloads::radio::STATIONS[1],
            ))
            .unwrap(),
            design: lixto_core::XmlDesign::new().root("slow"),
        }),
        Trigger::Every(4),
    );
    let m = pipe.stage(
        Component::Integrate { root: "all".into() },
        vec![fast, slow],
    );
    pipe.stage(
        Component::Deliver {
            channel: "out".into(),
            only_on_change: false,
        },
        vec![m],
    );
    let delivered = run_ticks(&pipe, 4, &|tick| {
        Box::new(lixto_workloads::radio::site(9, tick, 0))
    });
    assert_eq!(delivered.len(), 4, "deliverer fires every tick");
    for (_, msg) in &delivered {
        let doc = lixto_xml::parse(&msg.body).unwrap();
        // Both sources contribute on every tick (slow reuses its last).
        assert!(lixto_xml::select::descendants_named(&doc, "title").len() >= 2);
    }
}
