//! `POST /extract/batch` coverage: a mixed batch (hits, misses, unknown
//! wrapper, unknown version, malformed item, oversized item) must
//! answer per item exactly what the equivalent sequence of individual
//! `POST /extract` calls answers — same statuses, same JSON bodies,
//! byte for byte (timing scrubbed) — plus the batch-shape rejections:
//! empty batch, non-array body, item-count limit, batch body limit.

use std::sync::Arc;
use std::time::Duration;

use lixto::core::XmlDesign;
use lixto::http::{GatewayConfig, HttpClient, HttpGateway, Json, Limits};
use lixto::server::{ExtractionServer, ServerConfig, WrapperRegistry};

const WRAPPER: &str = r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#;

/// A deterministic stack: one shard, one worker — batch items and
/// individual calls alike execute strictly in submission order, so the
/// result cache evolves identically in both runs.
fn deterministic_stack(config: &GatewayConfig) -> (HttpGateway, Arc<ExtractionServer>) {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
        .unwrap();
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 128,
            cache_capacity: 64,
            store: None,
        },
        registry,
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind("127.0.0.1:0", config.clone(), server.clone()).unwrap();
    (gateway, server)
}

fn tight_config() -> GatewayConfig {
    GatewayConfig {
        limits: Limits {
            max_header_bytes: 16 * 1024,
            // Tight single-request limit so one batch item can be
            // "oversized" while the batch body itself stays admissible.
            max_body_bytes: 512,
        },
        idle_timeout: Duration::from_secs(30),
        ..GatewayConfig::default()
    }
}

/// Scrub the volatile field (`latency_us`) from an extraction response
/// body, recursively (batch bodies nest them under `items[].body`).
fn scrub(json: &Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| {
                    if k == "latency_us" {
                        (k.clone(), Json::Num(0.0))
                    } else {
                        (k.clone(), scrub(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(scrub).collect()),
        other => other.clone(),
    }
}

fn mixed_items() -> Vec<Json> {
    let parse = |s: &str| Json::parse(s).unwrap();
    vec![
        // A miss, then the same document again — a cache hit.
        parse(r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>mixed</li></ul>"}"#),
        parse(r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>mixed</li></ul>"}"#),
        // Unknown wrapper and unknown version.
        parse(r#"{"wrapper":"ghost","url":"u"}"#),
        parse(r#"{"wrapper":"shop","version":99,"url":"u","html":"<p/>"}"#),
        // Malformed item (wrong field type).
        parse(r#"{"wrapper":7,"url":"u"}"#),
        // Oversized item: bigger than max_body_bytes when sent alone.
        {
            let html = "x".repeat(600);
            parse(&format!(
                r#"{{"wrapper":"shop","url":"http://shop/","html":"{html}"}}"#
            ))
        },
        // A second distinct document — another miss.
        parse(r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>tail</li></ul>"}"#),
    ]
}

#[test]
fn mixed_batch_matches_individual_calls_byte_for_byte() {
    let items = mixed_items();
    let expected_statuses = [200u64, 200, 404, 404, 400, 413, 200];

    // Run 1: the whole batch through one fresh stack.
    let batch_results: Vec<(u64, Json)> = {
        let (gateway, server) = deterministic_stack(&tight_config());
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let body = Json::Arr(items.clone()).dump();
        let response = client.post_json("/extract/batch", &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let parsed = response.json().unwrap();
        assert_eq!(
            parsed.get("count").and_then(Json::as_u64),
            Some(items.len() as u64)
        );
        let results = parsed
            .get("items")
            .and_then(Json::as_array)
            .expect("items array")
            .iter()
            .map(|item| {
                (
                    item.get("status").and_then(Json::as_u64).expect("status"),
                    item.get("body").cloned().expect("body"),
                )
            })
            .collect();
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
        results
    };

    // Run 2: the same items as N individual POST /extract calls on an
    // identically configured fresh stack (so cache state evolves the
    // same way: miss, hit, …).
    let individual_results: Vec<(u64, Json)> = {
        let (gateway, server) = deterministic_stack(&tight_config());
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let results = items
            .iter()
            .map(|item| {
                let response = client.post_json("/extract", &item.dump()).unwrap();
                (
                    u64::from(response.status),
                    response.json().expect("json body"),
                )
            })
            .collect();
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
        results
    };

    assert_eq!(batch_results.len(), individual_results.len());
    for (i, ((batch_status, batch_body), (single_status, single_body))) in
        batch_results.iter().zip(&individual_results).enumerate()
    {
        assert_eq!(
            *batch_status,
            expected_statuses[i],
            "item {i}: unexpected batch status ({})",
            batch_body.dump()
        );
        assert_eq!(
            batch_status, single_status,
            "item {i}: batch and individual status diverge"
        );
        assert_eq!(
            scrub(batch_body).dump(),
            scrub(single_body).dump(),
            "item {i}: batch and individual bodies diverge"
        );
    }

    // The hit/miss pattern actually happened (cache_hit is inside the
    // compared bodies, but make the intent explicit).
    let hit = |body: &Json| body.get("cache_hit").and_then(Json::as_bool);
    assert_eq!(hit(&batch_results[0].1), Some(false), "first sight: miss");
    assert_eq!(hit(&batch_results[1].1), Some(true), "repeat: hit");
    assert_eq!(hit(&batch_results[6].1), Some(false), "new document: miss");
}

#[test]
fn batch_shape_rejections() {
    let config = GatewayConfig {
        max_batch_items: 4,
        max_batch_body_bytes: 2048,
        ..tight_config()
    };
    let (gateway, server) = deterministic_stack(&config);
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // Empty batch.
    let r = client.post_json("/extract/batch", "[]").unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    assert!(r.text().contains("empty_batch"));

    // Not an array.
    let r = client
        .post_json("/extract/batch", r#"{"wrapper":"shop","url":"u"}"#)
        .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("bad_request"));

    // Bad JSON.
    let r = client.post_json("/extract/batch", "[{oops").unwrap();
    assert_eq!(r.status, 400);

    // Item-count limit: 5 items against max_batch_items = 4.
    let too_many: Vec<Json> = (0..5)
        .map(|_| Json::parse(r#"{"wrapper":"ghost","url":"u"}"#).unwrap())
        .collect();
    let r = client
        .post_json("/extract/batch", &Json::Arr(too_many).dump())
        .unwrap();
    assert_eq!(r.status, 413, "{}", r.text());
    assert!(r.text().contains("batch_too_large"));

    // Whole-batch body limit: a batch body over max_batch_body_bytes is
    // refused at the framing layer (and drained — the connection
    // survives).
    let huge = format!(
        r#"[{{"wrapper":"shop","url":"http://shop/","html":"{}"}}]"#,
        "y".repeat(3000)
    );
    let r = client.post_json("/extract/batch", &huge).unwrap();
    assert_eq!(r.status, 413, "{}", r.text());
    assert!(r.text().contains("body_too_large"));

    // After all the rejections, the same keep-alive connection still
    // serves a valid batch.
    let ok = client
        .post_json(
            "/extract/batch",
            r#"[{"wrapper":"shop","url":"http://shop/","html":"<ul><li>fine</li></ul>"}]"#,
        )
        .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
    let parsed = ok.json().unwrap();
    assert_eq!(
        parsed
            .get("items")
            .and_then(Json::as_array)
            .and_then(|a| a[0].get("status"))
            .and_then(Json::as_u64),
        Some(200)
    );

    drop(client);
    let stats = gateway.shutdown();
    assert!(stats.responses_4xx >= 5);
    server.initiate_shutdown();
}

#[test]
fn single_item_batch_envelope_wraps_the_exact_extract_body() {
    // Sanity on the envelope shape itself: {"count", "items": [{
    // "status", "body"}]} where body is the /extract response document.
    let (gateway, server) = deterministic_stack(&tight_config());
    let mut client = HttpClient::connect(gateway.addr()).unwrap();
    let item = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>solo</li></ul>"}"#;
    let response = client
        .post_json("/extract/batch", &format!("[{item}]"))
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let parsed = response.json().unwrap();
    assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(1));
    let body = parsed
        .get("items")
        .and_then(Json::as_array)
        .and_then(|a| a[0].get("body"))
        .expect("item body");
    assert!(body
        .get("xml")
        .and_then(Json::as_str)
        .unwrap()
        .contains("solo"));
    assert_eq!(body.get("wrapper").and_then(Json::as_str), Some("shop"));
    assert_eq!(body.get("cache_hit").and_then(Json::as_bool), Some(false));
    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}
