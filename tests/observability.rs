//! End-to-end request tracing: `X-Request-Id` minting/echoing on
//! `/extract` and `/extract/batch`, span retention behind
//! `/debug/requests/{id}` and `/debug/slow`, per-rule telemetry behind
//! `/debug/wrappers/{name}`, and the byte-identity guarantee when
//! tracing is disabled.

use std::sync::Arc;
use std::time::Duration;

use lixto::core::XmlDesign;
use lixto::http::{GatewayConfig, HttpClient, HttpGateway, Json};
use lixto::server::{ExtractionServer, ServerConfig, WrapperRegistry};

const WRAPPER: &str = r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#;

fn stack(config: GatewayConfig) -> (HttpGateway, Arc<ExtractionServer>) {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
        .unwrap();
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 64,
            cache_capacity: 16,
            store: None,
        },
        registry,
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind("127.0.0.1:0", config, server.clone()).unwrap();
    (gateway, server)
}

fn traced_config() -> GatewayConfig {
    GatewayConfig {
        idle_timeout: Duration::from_secs(30),
        ..GatewayConfig::default()
    }
}

const EXTRACT: &str = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>a</li></ul>"}"#;

#[test]
fn extract_mints_and_echoes_request_ids() {
    let (gateway, server) = stack(traced_config());
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // No client id: the gateway mints a 16-hex-digit one.
    let response = client.post_json("/extract", EXTRACT).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let minted = response
        .header("x-request-id")
        .expect("traced responses carry x-request-id")
        .to_string();
    assert_eq!(minted.len(), 16, "minted id is 16 hex digits: {minted}");
    assert!(minted.bytes().all(|b| b.is_ascii_hexdigit()));
    // The body itself stays id-free — the id lives in the header.
    assert!(response.json().unwrap().get("request_id").is_none());

    // Client-supplied id: echoed verbatim.
    let response = client
        .request(
            "POST",
            "/extract",
            &[("x-request-id", "trace-me-42")],
            Some(EXTRACT.as_bytes()),
        )
        .unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-request-id"), Some("trace-me-42"));

    // Unusable client id (embedded space): a fresh id is minted instead.
    let response = client
        .request(
            "POST",
            "/extract",
            &[("x-request-id", "not a valid id")],
            Some(EXTRACT.as_bytes()),
        )
        .unwrap();
    assert_eq!(response.status, 200);
    let replaced = response.header("x-request-id").expect("minted replacement");
    assert_ne!(replaced, "not a valid id");
    assert_eq!(replaced.len(), 16);

    // Error responses that reached dispatch are traced too.
    let response = client
        .post_json("/extract", r#"{"wrapper":"ghost","url":"u"}"#)
        .unwrap();
    assert_eq!(response.status, 404);
    assert!(response.header("x-request-id").is_some());

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn batch_items_get_indexed_request_ids() {
    let (gateway, server) = stack(traced_config());
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    let batch = format!(r#"[{EXTRACT},{{"wrapper":"ghost","url":"u"}},{EXTRACT}]"#);
    let response = client
        .request(
            "POST",
            "/extract/batch",
            &[("x-request-id", "batch-7")],
            Some(batch.as_bytes()),
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.header("x-request-id"), Some("batch-7"));
    let parsed = response.json().unwrap();
    let items = parsed.get("items").and_then(Json::as_array).unwrap();
    assert_eq!(items.len(), 3);
    for (i, item) in items.iter().enumerate() {
        assert_eq!(
            item.get("request_id").and_then(Json::as_str),
            Some(format!("batch-7#{i}").as_str()),
            "item {i} carries the batch id with its index"
        );
    }

    // Each batch item is retained as its own span.
    let span = client.get("/debug/requests/batch-7%230").unwrap();
    // `#` must be percent-encoded in a URL; fall back to the raw form if
    // the gateway does not decode (it routes on the raw path).
    let span = if span.status == 200 {
        span
    } else {
        client.get("/debug/requests/batch-7#0").unwrap()
    };
    assert_eq!(span.status, 200, "{}", span.text());
    let span = span.json().unwrap();
    assert_eq!(span.get("id").and_then(Json::as_str), Some("batch-7#0"));
    assert_eq!(span.get("wrapper").and_then(Json::as_str), Some("shop"));

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn spans_surface_in_debug_endpoints_with_stage_times() {
    let (gateway, server) = stack(traced_config());
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // A miss (full execution) and then a hit against the same document,
    // each under its own id.
    for id in ["span-miss", "span-hit"] {
        let response = client
            .request(
                "POST",
                "/extract",
                &[("x-request-id", id)],
                Some(EXTRACT.as_bytes()),
            )
            .unwrap();
        assert_eq!(response.status, 200);
    }

    let stage_names = |span: &Json| -> Vec<String> {
        span.get("stages")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|s| s.get("stage").and_then(Json::as_str).unwrap().to_string())
            .collect()
    };

    let span = client.get("/debug/requests/span-miss").unwrap();
    assert_eq!(span.status, 200, "{}", span.text());
    let span = span.json().unwrap();
    assert_eq!(span.get("id").and_then(Json::as_str), Some("span-miss"));
    assert_eq!(span.get("wrapper").and_then(Json::as_str), Some("shop"));
    assert_eq!(span.get("status").and_then(Json::as_u64), Some(200));
    assert_eq!(span.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert!(span.get("total_us").and_then(Json::as_u64).is_some());
    let stages = stage_names(&span);
    assert!(
        stages.iter().any(|s| s == "exec"),
        "cache-miss span reports the plan-execution stage, got {stages:?}"
    );

    let span = client
        .get("/debug/requests/span-hit")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(span.get("cache_hit").and_then(Json::as_bool), Some(true));
    let stages = stage_names(&span);
    assert!(
        stages.iter().any(|s| s == "cache"),
        "cache-hit span reports the cache stage, got {stages:?}"
    );

    // Unknown id: 404 with a stable error code.
    let missing = client.get("/debug/requests/no-such-id").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.text().contains("unknown_request"));

    // /debug/slow lists both the slowest and the recent spans.
    let slow = client.get("/debug/slow").unwrap();
    assert_eq!(slow.status, 200, "{}", slow.text());
    let slow = slow.json().unwrap();
    let slowest = slow.get("slowest").and_then(Json::as_array).unwrap();
    let recent = slow.get("recent").and_then(Json::as_array).unwrap();
    assert!(!slowest.is_empty(), "slowest ring populated");
    assert!(!recent.is_empty(), "recent ring populated");
    assert!(recent
        .iter()
        .any(|s| s.get("id").and_then(Json::as_str) == Some("span-miss")));

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn per_rule_telemetry_counts_real_executions() {
    let (gateway, server) = stack(traced_config());
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // Before any execution: the wrapper is visible with zeroed counters.
    let idle = client.get("/debug/wrappers/shop").unwrap();
    assert_eq!(idle.status, 200, "{}", idle.text());
    let idle = idle.json().unwrap();
    assert_eq!(idle.get("name").and_then(Json::as_str), Some("shop"));
    let rules = idle.get("rules").and_then(Json::as_array).unwrap();
    assert_eq!(rules.len(), 1, "one rule in the shop wrapper");
    assert_eq!(rules[0].get("invocations").and_then(Json::as_u64), Some(0));

    // One miss: the plan executes (fixpoint evaluation may apply the
    // rule more than once per run — the final round derives nothing).
    let response = client.post_json("/extract", EXTRACT).unwrap();
    assert_eq!(response.status, 200);
    let busy = client.get("/debug/wrappers/shop").unwrap().json().unwrap();
    let rules = busy.get("rules").and_then(Json::as_array).unwrap();
    let rule = &rules[0];
    assert_eq!(rule.get("label").and_then(Json::as_str), Some("offer"));
    let invocations = rule.get("invocations").and_then(Json::as_u64).unwrap();
    assert!(invocations >= 1, "the miss executed the rule");
    assert_eq!(rule.get("matches").and_then(Json::as_u64), Some(1));
    assert!(
        rule.get("total_ns").and_then(Json::as_u64).unwrap() > 0,
        "rule wall time accumulates"
    );

    // A cache hit serves the stored result without touching the plan:
    // the counters stay exactly where the miss left them.
    let response = client.post_json("/extract", EXTRACT).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response
            .json()
            .unwrap()
            .get("cache_hit")
            .and_then(Json::as_bool),
        Some(true)
    );
    let after = client.get("/debug/wrappers/shop").unwrap().json().unwrap();
    let rule = &after.get("rules").and_then(Json::as_array).unwrap()[0];
    assert_eq!(
        rule.get("invocations").and_then(Json::as_u64),
        Some(invocations),
        "cache hits do not re-execute the plan"
    );

    let missing = client.get("/debug/wrappers/ghost").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.text().contains("unknown_wrapper"));

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn debug_wrapper_reports_optimizer_stats_for_news() {
    // Deploy the news workload wrapper and assert the debug endpoint
    // surfaces the optimizer's report: the wrapper's pattern-dependency
    // graph is acyclic and top-down, so it runs on the single-pass
    // schedule, every element path is fused, and the two `.span` cells
    // of the story rules share one hoist group.
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source(
            "news",
            lixto_workloads::news::NEWS_WRAPPER,
            XmlDesign::new().root("press"),
        )
        .unwrap();
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 64,
            cache_capacity: 16,
            store: None,
        },
        registry,
        Arc::new(lixto_workloads::news::site(4, 6).0),
    ));
    let gateway = HttpGateway::bind("127.0.0.1:0", traced_config(), server.clone()).unwrap();
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    let response = client.get("/debug/wrappers/news").unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let body = response.json().unwrap();
    let optimizer = body.get("optimizer").expect("optimizer stats present");
    assert_eq!(
        optimizer.get("schedule").and_then(Json::as_str),
        Some("single_pass"),
        "the news wrapper's dependency graph is acyclic and top-down"
    );
    assert_eq!(optimizer.get("rules").and_then(Json::as_u64), Some(4));
    assert_eq!(optimizer.get("fused_paths").and_then(Json::as_u64), Some(4));
    assert_eq!(
        optimizer.get("fallback_paths").and_then(Json::as_u64),
        Some(0)
    );
    assert!(
        optimizer
            .get("hoist_groups")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "ticker and quote share a .span sub-matcher"
    );
    assert!(optimizer.get("strata").and_then(Json::as_u64).unwrap() >= 2);

    // The optimized executor serves real requests through the gateway.
    let extract = r#"{"wrapper":"news","url":"http://press/finance"}"#;
    let response = client.post_json("/extract", extract).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let xml = response
        .json()
        .unwrap()
        .get("xml")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(xml.contains("story"), "news extraction produced stories");

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn disabling_tracing_leaves_responses_untouched() {
    let (gateway, server) = stack(GatewayConfig {
        tracing: false,
        ..traced_config()
    });
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // Even a client-supplied id is neither echoed nor recorded.
    let response = client
        .request(
            "POST",
            "/extract",
            &[("x-request-id", "ignored")],
            Some(EXTRACT.as_bytes()),
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.header("x-request-id"), None);

    let batch = client
        .post_json("/extract/batch", &format!("[{EXTRACT}]"))
        .unwrap();
    assert_eq!(batch.status, 200);
    assert_eq!(batch.header("x-request-id"), None);
    let items = batch.json().unwrap();
    let item = &items.get("items").and_then(Json::as_array).unwrap()[0];
    assert!(
        item.get("request_id").is_none(),
        "untraced batch envelopes carry no request_id field"
    );

    // No spans were retained.
    let slow = client.get("/debug/slow").unwrap().json().unwrap();
    assert!(slow
        .get("recent")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());
    let missing = client.get("/debug/requests/ignored").unwrap();
    assert_eq!(missing.status, 404);

    // Per-rule telemetry is orthogonal to request tracing: it still
    // counts (it lives on the wrapper, not the request path).
    let busy = client.get("/debug/wrappers/shop").unwrap().json().unwrap();
    let rules = busy.get("rules").and_then(Json::as_array).unwrap();
    assert!(rules[0].get("invocations").and_then(Json::as_u64).unwrap() >= 1);

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}
