//! End-to-end monitoring: the sampler's history ring, the SLO watchdog
//! and the live ops stream against a real gateway.
//!
//! The centerpiece is fault injection: a [`GatedWeb`] whose fetches
//! block until released jams the one worker and fills the one shard
//! queue, so the watchdog's `queue_saturation` rule must flip
//! `GET /debug/health` from `ok` to `degraded` — and resolve it again
//! once the gate opens and the queue drains.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lixto::core::XmlDesign;
use lixto::elog::WebSource;
use lixto::http::{GatewayConfig, HttpClient, HttpGateway, Json};
use lixto::obs::{captured_lines, set_capture, set_max_level, Level};
use lixto::server::{ExtractionServer, ServerConfig, WrapperRegistry};

const WRAPPER: &str = r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#;

/// A web source whose fetches block while the gate is closed — the
/// fault injector: with the gate shut, every in-flight extraction pins
/// its worker and the shard queue fills behind it.
struct GatedWeb {
    open: Mutex<bool>,
    cv: Condvar,
}

impl GatedWeb {
    fn new() -> GatedWeb {
        GatedWeb {
            open: Mutex::new(true),
            cv: Condvar::new(),
        }
    }

    fn set_open(&self, open: bool) {
        *self.open.lock().unwrap() = open;
        self.cv.notify_all();
    }
}

impl WebSource for GatedWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        url.starts_with("http://shop/")
            .then(|| "<ul><li>beans</li></ul>".to_string())
    }
}

fn monitored_stack(web: Arc<GatedWeb>) -> (HttpGateway, Arc<ExtractionServer>) {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
        .unwrap();
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            // One worker, one tiny queue: a handful of gated requests
            // saturate it deterministically.
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            store: None,
        },
        registry,
        web,
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 2,
            idle_timeout: Duration::from_secs(30),
            monitor_interval: Duration::from_millis(50),
            monitor_eval_ticks: 4,
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    (gateway, server)
}

fn verdict_of(client: &mut HttpClient) -> String {
    let health = client.get("/debug/health").unwrap();
    assert_eq!(health.status, 200, "{}", health.text());
    health
        .json()
        .unwrap()
        .get("verdict")
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

fn wait_for_verdict(client: &mut HttpClient, want: &str, deadline: Duration) -> Duration {
    let started = Instant::now();
    loop {
        let verdict = verdict_of(client);
        if verdict == want {
            return started.elapsed();
        }
        assert!(
            started.elapsed() < deadline,
            "verdict stuck at {verdict:?}, wanted {want:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn gated_queue_saturation_degrades_health_and_resolves() {
    // Capture the structured alert log events too (Info covers
    // `alert_resolved`; `alert_fired` is Warn).
    set_max_level(Some(Level::Info));
    let capture = set_capture();

    let web = Arc::new(GatedWeb::new());
    let (gateway, server) = monitored_stack(web.clone());
    let mut prober = HttpClient::connect(gateway.addr()).unwrap();
    assert_eq!(verdict_of(&mut prober), "ok");

    // Shut the gate and jam the pool: one batch carries five distinct
    // gated extractions — the first pins the worker, four fill the
    // queue (saturation 1.0). The batch connection parks until the
    // gate opens, so it must not be the probing connection.
    web.set_open(false);
    let batch: Vec<String> = (0..5)
        .map(|i| format!(r#"{{"wrapper":"shop","url":"http://shop/{i}"}}"#))
        .collect();
    let batch = format!("[{}]", batch.join(","));
    let jammed = {
        let addr = gateway.addr();
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.post_json("/extract/batch", &batch).unwrap()
        })
    };

    // The watchdog must notice: `queue_saturation` fires after one
    // breaching tick (50 ms interval), so the flip lands within a few
    // intervals even on a loaded CI box.
    let detection = wait_for_verdict(&mut prober, "degraded", Duration::from_secs(10));
    assert!(
        detection < Duration::from_secs(5),
        "detection took {detection:?}"
    );

    // The health report names the firing rule with its evidence.
    let health = prober.get("/debug/health").unwrap().json().unwrap();
    let rules = health.get("rules").and_then(Json::as_array).unwrap();
    let saturation = rules
        .iter()
        .find(|r| r.get("rule").and_then(Json::as_str) == Some("queue_saturation"))
        .unwrap();
    assert_eq!(
        saturation.get("severity").and_then(Json::as_str),
        Some("degraded")
    );
    assert!(saturation.get("value").and_then(Json::as_f64).unwrap() >= 0.75);

    // The Prometheus surface carries the same verdict.
    let metrics = prober.get("/metrics").unwrap();
    assert!(metrics.text().contains("lixto_alert_verdict 1"),);
    assert!(metrics
        .text()
        .contains("lixto_alert_severity{rule=\"queue_saturation\"} 1"));

    // Open the gate: the queue drains, the batch resolves (served or
    // backpressured per item), and — once the evidence window forgets
    // the spike and the clear streak completes — the alert resolves.
    web.set_open(true);
    let batch_response = jammed.join().unwrap();
    assert_eq!(batch_response.status, 200);
    let recovery = wait_for_verdict(&mut prober, "ok", Duration::from_secs(10));
    assert!(recovery < Duration::from_secs(10), "recovery {recovery:?}");

    // Structured log events recorded the whole episode.
    let lines = captured_lines(&capture);
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"alert_fired""#)
            && l.contains(r#""rule":"queue_saturation""#)),
        "no alert_fired event in {lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""event":"alert_resolved""#)
                && l.contains(r#""rule":"queue_saturation""#)),
        "no alert_resolved event in {lines:?}"
    );

    drop(prober);
    gateway.shutdown();
    server.initiate_shutdown();
    set_max_level(None);
}

#[test]
fn history_windows_track_request_counters() {
    let web = Arc::new(GatedWeb::new());
    let (gateway, server) = monitored_stack(web);
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // Counter deltas are pairwise between samples, so a completion is
    // only visible once a sample *before* it exists — wait out the
    // first tick before generating load.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let history = client
            .get("/metrics/history?window=60&step=1")
            .unwrap()
            .json()
            .unwrap();
        if history.get("samples").and_then(Json::as_u64).unwrap() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "sampler never ticked");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Generate some completions, then wait for the sampler to see them.
    for i in 0..3 {
        let body =
            format!(r#"{{"wrapper":"shop","url":"http://shop/","html":"<ul><li>h{i}</li></ul>"}}"#);
        assert_eq!(client.post_json("/extract", &body).unwrap().status, 200);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let history = loop {
        let history = client
            .get("/metrics/history?window=60&step=1")
            .unwrap()
            .json()
            .unwrap();
        let completed = history
            .get("summary")
            .and_then(|s| s.get("fields"))
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .find(|f| f.get("name").and_then(Json::as_str) == Some("pool_completed"))
            .and_then(|f| f.get("delta"))
            .and_then(Json::as_u64)
            .unwrap();
        if completed >= 3 {
            break history;
        }
        assert!(
            Instant::now() < deadline,
            "sampler never saw the completions: {history}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // The per-step tiles partition the summary: step deltas add up to
    // the whole-window delta (the timeseries' additivity invariant,
    // here observed end-to-end over HTTP).
    let summary_delta = |h: &Json, field: &str| {
        h.get("summary")
            .and_then(|s| s.get("fields"))
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .find(|f| f.get("name").and_then(Json::as_str) == Some(field))
            .and_then(|f| f.get("delta"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    let step_sum: u64 = history
        .get("steps")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|step| {
            step.get("fields")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .find(|f| f.get("name").and_then(Json::as_str) == Some("pool_completed"))
                .and_then(|f| f.get("delta"))
                .and_then(Json::as_u64)
                .unwrap()
        })
        .sum();
    assert_eq!(step_sum, summary_delta(&history, "pool_completed"));

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn hostile_history_params_are_clamped_to_retained_data() {
    let web = Arc::new(GatedWeb::new());
    let (gateway, server) = monitored_stack(web);
    let mut client = HttpClient::connect(gateway.addr()).unwrap();

    // A u64::MAX window with a 1-second step once tiled ~1.7 billion
    // windows on the event loop. The gateway must clamp the window to
    // the ring's retained span and bound the tile count by retention,
    // answering promptly.
    let started = Instant::now();
    let response = client
        .get("/metrics/history?window=18446744073709551615&step=1")
        .unwrap();
    assert_eq!(response.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "history took {:?}",
        started.elapsed()
    );
    let history = response.json().unwrap();
    let retention = history.get("retention").and_then(Json::as_u64).unwrap();
    let steps = history.get("steps").and_then(Json::as_array).unwrap().len() as u64;
    assert!(steps <= retention, "{steps} tiles > retention {retention}");
    // The echoed window never exceeds what the ring can answer.
    let window_ms = history.get("window_ms").and_then(Json::as_u64).unwrap();
    let interval_ms = history.get("interval_ms").and_then(Json::as_u64).unwrap();
    assert!(
        window_ms <= interval_ms * retention,
        "window_ms {window_ms}"
    );

    drop(client);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn live_stream_carries_alert_transition_events() {
    let web = Arc::new(GatedWeb::new());
    let (gateway, server) = monitored_stack(web.clone());

    // Subscribe first, then inject the fault: the alert transition must
    // arrive on the stream itself.
    let mut stream = TcpStream::connect(gateway.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /debug/live HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();

    web.set_open(false);
    let batch: Vec<String> = (0..5)
        .map(|i| format!(r#"{{"wrapper":"shop","url":"http://shop/{i}"}}"#))
        .collect();
    let batch = format!("[{}]", batch.join(","));
    let jammed = {
        let addr = gateway.addr();
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.post_json("/extract/batch", &batch).unwrap()
        })
    };

    // Read until the fired alert event shows up in the stream.
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = String::from_utf8_lossy(&raw);
        if text.contains(r#""type":"alert""#)
            && text.contains(r#""rule":"queue_saturation""#)
            && text.contains(r#""state":"fired""#)
        {
            break;
        }
        assert!(Instant::now() < deadline, "no alert event in: {text}");
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "stream closed early: {text}");
        raw.extend_from_slice(&chunk[..n]);
    }
    // Ticks carry the degraded verdict once the alert fires.
    let text = String::from_utf8_lossy(&raw);
    assert!(text.contains(r#""type":"subscribed""#), "{text}");
    assert!(text.contains(r#""type":"tick""#), "{text}");

    web.set_open(true);
    jammed.join().unwrap();
    drop(stream);
    gateway.shutdown();
    server.initiate_shutdown();
}
