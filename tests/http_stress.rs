//! Stall and shutdown regression tests for the multiplexed gateway: a
//! slow-loris client must be evicted with `408` without pinning its
//! event loop (healthy connections sharing the loop keep completing),
//! and shutdown with hundreds of connections parked on extraction
//! tickets must drain without deadlock.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lixto::core::XmlDesign;
use lixto::elog::WebSource;
use lixto::http::{GatewayConfig, HttpClient, HttpGateway};
use lixto::server::{ExtractionServer, ServerConfig, WrapperRegistry};
use lixto::workloads::http_traffic;

const WRAPPER: &str = r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#;

fn shop_registry() -> Arc<WrapperRegistry> {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
        .unwrap();
    registry
}

/// A web source whose fetches block until the test opens the gate —
/// parking every dispatched connection deterministically.
struct GatedWeb {
    open: Mutex<bool>,
    cv: Condvar,
    fetching: Mutex<usize>,
    fetching_cv: Condvar,
}

impl GatedWeb {
    fn new() -> GatedWeb {
        GatedWeb {
            open: Mutex::new(false),
            cv: Condvar::new(),
            fetching: Mutex::new(0),
            fetching_cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_fetching(&self) {
        let mut fetching = self.fetching.lock().unwrap();
        while *fetching == 0 {
            fetching = self.fetching_cv.wait(fetching).unwrap();
        }
    }
}

impl WebSource for GatedWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        {
            let mut fetching = self.fetching.lock().unwrap();
            *fetching += 1;
            self.fetching_cv.notify_all();
        }
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        (url == "http://shop/").then(|| "<ul><li>slow</li></ul>".to_string())
    }
}

/// Read everything until the server closes, tolerating read timeouts.
fn read_to_close(socket: &mut TcpStream) -> Vec<u8> {
    let mut received = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match socket.read(&mut buf) {
            Ok(0) => return received,
            Ok(n) => received.extend_from_slice(&buf[..n]),
            Err(_) => return received,
        }
    }
}

#[test]
fn slow_loris_is_evicted_with_408_and_never_pins_the_loop() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        shop_registry(),
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    // ONE event loop: the trickling client and the healthy client share
    // it, so any pinning would stall the healthy side measurably.
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 1,
            read_timeout: Duration::from_millis(300),
            idle_timeout: Duration::from_secs(10),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();

    // The loris: declares a body, then trickles one byte per
    // read-timeout-quantum. The fixed arrival deadline means trickling
    // cannot extend its life.
    let loris = std::thread::spawn(move || {
        let mut socket = TcpStream::connect(addr).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        socket
            .write_all(b"POST /extract HTTP/1.1\r\nhost: loris\r\ncontent-length: 64\r\n\r\n")
            .unwrap();
        let started = Instant::now();
        // Keep trickling well past the read timeout; the server must
        // cut us off regardless (writes then start failing — fine).
        for _ in 0..40 {
            if socket.write_all(b"x").is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let response = read_to_close(&mut socket);
        (
            started.elapsed(),
            String::from_utf8_lossy(&response).into_owned(),
        )
    });

    // Meanwhile, a healthy client on the same single loop completes a
    // steady stream of requests with low latency.
    let body = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>ok</li></ul>"}"#;
    let mut healthy = HttpClient::connect(addr).unwrap();
    let mut slowest = Duration::ZERO;
    for _ in 0..30 {
        let t = Instant::now();
        let response = healthy.post_json("/extract", body).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        slowest = slowest.max(t.elapsed());
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        slowest < Duration::from_secs(2),
        "healthy requests stalled behind the loris: slowest {slowest:?}"
    );

    let (lifetime, response) = loris.join().unwrap();
    assert!(
        response.contains("HTTP/1.1 408"),
        "loris must be told why: {response}"
    );
    assert!(
        response.contains("request_timeout"),
        "structured error body: {response}"
    );
    assert!(
        lifetime < Duration::from_secs(5),
        "loris lingered {lifetime:?} — eviction must not wait out the trickle"
    );

    drop(healthy);
    let stats = gateway.shutdown();
    assert!(stats.responses_4xx >= 1, "the 408 is counted");
    server.initiate_shutdown();
}

#[test]
fn idle_connections_are_evicted_quietly_after_idle_timeout() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        shop_registry(),
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 1,
            idle_timeout: Duration::from_millis(150),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let mut socket = TcpStream::connect(gateway.addr()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A served request, then silence: the server closes (clean EOF, no
    // 4xx — idling between requests is not an offense)...
    socket
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: idle\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let t = Instant::now();
    let stream = read_to_close(&mut socket);
    let text = String::from_utf8_lossy(&stream);
    assert!(text.contains("HTTP/1.1 200"), "{text}");
    assert!(!text.contains("408"), "idle eviction is quiet: {text}");
    let elapsed = t.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100) && elapsed < Duration::from_secs(5),
        "closed after {elapsed:?}, expected ~150ms idle timeout"
    );
    let stats = gateway.shutdown();
    assert_eq!(stats.responses_4xx, 0);
    server.initiate_shutdown();
}

#[test]
fn expect_continue_is_honored_even_behind_stray_leading_crlfs() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        shop_registry(),
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 1,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(30),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let body = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>go</li></ul>"}"#;
    // Two stray CRLFs (tolerated keep-alive detritus) before a POST
    // whose client waits for the interim `100 Continue` before sending
    // its body — the interim must still arrive.
    let mut socket = TcpStream::connect(gateway.addr()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    socket
        .write_all(
            format!(
                "\r\n\r\nPOST /extract HTTP/1.1\r\nhost: c\r\nexpect: 100-continue\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut interim = [0u8; 64];
    let n = socket.read(&mut interim).expect("interim 100 Continue");
    assert!(
        String::from_utf8_lossy(&interim[..n]).starts_with("HTTP/1.1 100 Continue"),
        "got: {}",
        String::from_utf8_lossy(&interim[..n])
    );
    // The strict client now ships the body and gets the real response.
    socket.write_all(body.as_bytes()).unwrap();
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    while !String::from_utf8_lossy(&response).contains("\"xml\"") {
        let n = socket.read(&mut chunk).expect("final response");
        assert!(n > 0, "server closed before answering");
        response.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    drop(socket);
    gateway.shutdown();
    server.initiate_shutdown();
}

#[test]
fn half_closed_client_still_gets_all_pipelined_responses() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        shop_registry(),
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 1,
            idle_timeout: Duration::from_secs(30),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    // The `printf requests | nc` pattern: ship a pipelined burst, shut
    // the write side immediately, then read. Every buffered request
    // must still be answered; the connection closes only when the
    // parser would need bytes that can no longer come.
    let mut socket = TcpStream::connect(gateway.addr()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let one = b"GET /healthz HTTP/1.1\r\nhost: hc\r\ncontent-length: 0\r\n\r\n";
    let burst: Vec<u8> = one.repeat(3);
    socket.write_all(&burst).unwrap();
    socket.shutdown(std::net::Shutdown::Write).unwrap();
    let t = Instant::now();
    let stream = read_to_close(&mut socket);
    let text = String::from_utf8_lossy(&stream);
    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        3,
        "all pipelined requests answered after half-close: {text}"
    );
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "close follows the last response promptly, not an idle timeout"
    );
    let stats = gateway.shutdown();
    assert_eq!(stats.requests, 3);
    server.initiate_shutdown();
}

#[test]
fn stalling_mid_drain_of_an_answered_413_closes_without_a_second_response() {
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        shop_registry(),
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 1,
            limits: lixto::http::Limits {
                max_header_bytes: 2048,
                max_body_bytes: 64,
            },
            read_timeout: Duration::from_millis(200),
            idle_timeout: Duration::from_secs(10),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let mut socket = TcpStream::connect(gateway.addr()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // An oversized-but-drainable body: the 413 is answered early (the
    // client may be waiting on 100-continue), then the client ships
    // only part of the declared body and stalls.
    socket
        .write_all(b"POST /extract HTTP/1.1\r\nhost: stall\r\ncontent-length: 500\r\n\r\n")
        .unwrap();
    socket.write_all(&[b'x'; 100]).unwrap();
    let stream = read_to_close(&mut socket);
    let text = String::from_utf8_lossy(&stream);
    assert!(text.contains("HTTP/1.1 413"), "{text}");
    assert!(
        !text.contains("408"),
        "the answered request must not get a second response: {text}"
    );
    assert_eq!(
        text.matches("HTTP/1.1 ").count(),
        1,
        "exactly one response: {text}"
    );
    let stats = gateway.shutdown();
    assert_eq!(stats.requests, 1, "one request, answered once");
    server.initiate_shutdown();
}

#[test]
fn shutdown_under_hundreds_of_parked_connections_drains_without_deadlock() {
    const PARKED: usize = 200;

    let web = Arc::new(GatedWeb::new());
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: PARKED + 8,
            cache_capacity: 16,
            store: None,
        },
        shop_registry(),
        web.clone(),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 2,
            idle_timeout: Duration::from_secs(30),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();
    let body = http_traffic::extract_body_web("shop", "http://shop/");

    // Park PARKED connections: every one submits a Web extraction whose
    // fetch blocks on the gate, so each sits in the Dispatched state —
    // two event loops holding 200 in-flight requests between them.
    let mut parked = Vec::new();
    for _ in 0..PARKED {
        let body = body.clone();
        parked.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.post_json("/extract", &body).unwrap()
        }));
    }
    web.wait_fetching();
    // Wait until the pool holds everything: 1 executing + the rest
    // queued.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if server.metrics().submitted >= PARKED as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "parking never completed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Gateway shutdown begins *while* all of them are parked; the gate
    // opens shortly after, as a live source eventually would. Shutdown
    // must drain — every parked connection gets its real response with
    // `Connection: close` — rather than deadlock.
    let release = {
        let web = web.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            web.release();
        })
    };
    let stats = gateway.shutdown();
    release.join().unwrap();

    let mut served = 0usize;
    for handle in parked {
        let response = handle.join().expect("parked client panicked");
        assert_eq!(
            response.status,
            200,
            "parked connections drain with their real result: {}",
            response.text()
        );
        assert_eq!(
            response.header("connection"),
            Some("close"),
            "drained responses must close"
        );
        served += 1;
    }
    assert_eq!(served, PARKED);
    assert_eq!(stats.connections, PARKED as u64);
    assert_eq!(stats.responses_5xx, 0);
    let report = server.initiate_shutdown();
    assert_eq!(report.workers_joined, 1);
}

#[test]
fn pool_shutdown_first_cancels_parked_connections_with_5xx_not_a_hang() {
    const PARKED: usize = 48;

    let web = Arc::new(GatedWeb::new());
    let server = Arc::new(ExtractionServer::start(
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: PARKED + 8,
            cache_capacity: 16,
            store: None,
        },
        shop_registry(),
        web.clone(),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 2,
            idle_timeout: Duration::from_secs(30),
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    let addr = gateway.addr();
    let body = http_traffic::extract_body_web("shop", "http://shop/");

    let mut parked = Vec::new();
    for _ in 0..PARKED {
        let body = body.clone();
        parked.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.post_json("/extract", &body).unwrap()
        }));
    }
    web.wait_fetching();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics().submitted < PARKED as u64 {
        assert!(Instant::now() < deadline, "parking never completed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The *pool* shuts down first (opposite order from the test above):
    // the gated fetch is released from a helper so the drain can make
    // progress; queued-but-unprocessed jobs resolve as drained results
    // or cancellations, and every parked HTTP connection must be
    // answered — 200 for drained work, 5xx for canceled — never hang.
    let release = {
        let web = web.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            web.release();
        })
    };
    server.initiate_shutdown();
    release.join().unwrap();
    for handle in parked {
        let response = handle.join().expect("parked client panicked");
        assert!(
            response.status == 200 || response.status >= 500,
            "got {}",
            response.status
        );
    }
    gateway.shutdown();
}
