//! HTTP/1.1 framing conformance under adversarial byte arrival: the
//! multiplexed gateway must be insensitive to *how* request bytes reach
//! it. Proptest drives three layers:
//!
//! 1. the incremental parser fed arbitrary chunk splits agrees, request
//!    for request and byte for byte, with single-shot parsing of the
//!    same stream;
//! 2. a live gateway served a pipelined burst split at arbitrary byte
//!    boundaries answers byte-identically to the same burst delivered
//!    in one write;
//! 3. many multiplexed connections interleaving their partial writes
//!    concurrently each still get exactly their own responses.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use proptest::sample;

use lixto::http::{parse_request, GatewayConfig, HttpGateway, Limits, Request};
use lixto::server::{ExtractionServer, ServerConfig, WrapperRegistry};

// ---------------------------------------------------------------------
// Layer 1: the parser itself, no sockets
// ---------------------------------------------------------------------

/// Drain every complete request currently at the front of `buf`.
fn drain_requests(buf: &mut Vec<u8>, limits: &Limits) -> Vec<(Request, usize)> {
    let mut out = Vec::new();
    loop {
        match parse_request(buf, limits).expect("generated streams are well-formed") {
            Some((request, consumed)) => {
                buf.drain(..consumed);
                out.push((request, consumed));
            }
            None => return out,
        }
    }
}

/// One syntactically valid request with assorted framing features.
fn arb_request() -> impl Strategy<Value = Vec<u8>> {
    let method = sample::select(vec!["GET", "POST", "PUT", "DELETE"]);
    let path = sample::select(vec![
        "/healthz",
        "/metrics",
        "/extract",
        "/extract/batch",
        "/wrappers/shop",
        "/deeply/nested/none?q=1&r=2",
    ]);
    let pad = proptest::collection::vec(0u8..26, 0..40);
    let body = proptest::collection::vec(0u8..255, 0..200);
    let leading_crlf = 0usize..3;
    (method, path, pad, body, leading_crlf).prop_map(|(method, path, pad, body, crlfs)| {
        let pad: String = pad.iter().map(|b| (b'a' + b) as char).collect();
        let mut raw = Vec::new();
        for _ in 0..crlfs {
            raw.extend_from_slice(b"\r\n");
        }
        raw.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: conformance\r\nx-pad: {pad}\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        raw.extend_from_slice(&body);
        raw
    })
}

/// Split points for a byte stream of length `len` (indices may repeat
/// and arrive unsorted; the splitter normalizes).
fn chunks_of(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| stream[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Chunked arrival at arbitrary byte boundaries yields exactly the
    /// requests of single-shot parsing — same fields, same bodies, same
    /// consumed counts, regardless of where the cuts fall (mid request
    /// line, mid header, mid body).
    #[test]
    fn parser_is_split_invariant(
        requests in proptest::collection::vec(arb_request(), 1..6),
        cuts in proptest::collection::vec(0usize..10_000, 0..24),
    ) {
        let limits = Limits::default();
        let stream: Vec<u8> = requests.concat();

        // Reference: the whole burst in one buffer.
        let mut whole = stream.clone();
        let reference = drain_requests(&mut whole, &limits);
        prop_assert_eq!(reference.len(), requests.len());
        prop_assert!(whole.is_empty(), "reference parse must consume the stream");

        // Incremental: feed the same bytes chunk by chunk.
        let mut buf: Vec<u8> = Vec::new();
        let mut incremental = Vec::new();
        for chunk in chunks_of(&stream, &cuts) {
            buf.extend_from_slice(&chunk);
            incremental.extend(drain_requests(&mut buf, &limits));
        }
        prop_assert!(buf.is_empty(), "incremental parse must consume the stream");
        prop_assert_eq!(incremental.len(), reference.len());
        for ((got, got_consumed), (want, want_consumed)) in
            incremental.iter().zip(reference.iter())
        {
            prop_assert_eq!(got, want, "request diverged under splitting");
            prop_assert_eq!(got_consumed, want_consumed);
        }
    }
}

// ---------------------------------------------------------------------
// Layers 2 & 3: a live gateway under split and interleaved arrival
// ---------------------------------------------------------------------

fn test_gateway() -> (HttpGateway, Arc<ExtractionServer>) {
    let registry = Arc::new(WrapperRegistry::new());
    registry
        .register_source(
            "shop",
            r#"offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X)."#,
            lixto::core::XmlDesign::new().root("offers"),
        )
        .unwrap();
    let server = Arc::new(ExtractionServer::start(
        ServerConfig::default(),
        registry,
        Arc::new(lixto::elog::StaticWeb::new()),
    ));
    let gateway = HttpGateway::bind(
        "127.0.0.1:0",
        GatewayConfig {
            event_loops: 2,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(30),
            // These tests byte-compare response streams across separate
            // exchanges; request tracing mints a fresh `x-request-id` per
            // request, so it must be off for the comparison to hold.
            tracing: false,
            ..GatewayConfig::default()
        },
        server.clone(),
    )
    .unwrap();
    (gateway, server)
}

/// A pipelined burst whose responses are deterministic (no timing or
/// counter fields), ending in `Connection: close` so the full response
/// stream has a defined end.
fn deterministic_burst(requests: &[&str]) -> Vec<u8> {
    let mut raw = Vec::new();
    for (i, line) in requests.iter().enumerate() {
        let close = i + 1 == requests.len();
        let (head, body) = match line.split_once(' ') {
            Some(("POST", rest)) => (
                format!("POST {} HTTP/1.1\r\nhost: c\r\n", path_of(rest)),
                body_of(rest),
            ),
            _ => (format!("{line} HTTP/1.1\r\nhost: c\r\n"), String::new()),
        };
        raw.extend_from_slice(head.as_bytes());
        if close {
            raw.extend_from_slice(b"connection: close\r\n");
        }
        raw.extend_from_slice(format!("content-length: {}\r\n\r\n{}", body.len(), body).as_bytes());
    }
    raw
}

fn path_of(rest: &str) -> &str {
    rest.split_once('|').map_or(rest, |(p, _)| p)
}

fn body_of(rest: &str) -> String {
    rest.split_once('|')
        .map_or(String::new(), |(_, b)| b.to_string())
}

/// Requests whose responses do not vary run to run: health, routing
/// errors, parse errors, deterministic extraction errors, and inline
/// extractions (their `latency_us` field is scrubbed below).
const BURST: &[&str] = &[
    "GET /healthz",
    "GET /no/such/path",
    "DELETE /extract",
    r#"POST /extract|{broken"#,
    r#"POST /extract|{"wrapper":"ghost","url":"u"}"#,
    r#"POST /extract|{"wrapper":"shop","url":"http://shop/","html":"<ul><li>a</li></ul>"}"#,
    r#"POST /extract/batch|[{"wrapper":"ghost","url":"u"},{"wrapper":"shop","url":"http://shop/","html":"<ul><li>a</li></ul>"}]"#,
    "GET /healthz",
];

/// Write `stream` in the given chunking (tiny sleeps between chunks so
/// the server genuinely observes partial requests) and read the full
/// response stream until the server closes.
fn exchange_chunked(addr: std::net::SocketAddr, chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut socket = TcpStream::connect(addr).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    socket.set_nodelay(true).unwrap();
    for (i, chunk) in chunks.iter().enumerate() {
        if !chunk.is_empty() {
            socket.write_all(chunk).unwrap();
        }
        if i % 3 == 0 {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let mut received = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match socket.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => received.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    received
}

/// Collapse the digit run following every occurrence of `needle` to a
/// single `0` — used to erase the two volatile values in otherwise
/// deterministic responses: `"latency_us":<n>` (timing noise) and the
/// `content-length:` that shifts with its digit count. Everything else,
/// including the response *count* and ordering, stays byte-compared.
fn collapse_digits_after(stream: &[u8], needle: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(stream.len());
    let mut i = 0;
    while i < stream.len() {
        if stream[i..].starts_with(needle) {
            out.extend_from_slice(needle);
            i += needle.len();
            let run_start = i;
            while i < stream.len() && stream[i].is_ascii_digit() {
                i += 1;
            }
            if i > run_start {
                out.push(b'0');
            }
        } else {
            out.push(stream[i]);
            i += 1;
        }
    }
    out
}

fn scrub_volatile(stream: &[u8]) -> Vec<u8> {
    let scrubbed = collapse_digits_after(stream, b"\"latency_us\":");
    collapse_digits_after(&scrubbed, b"content-length: ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The live gateway answers a pipelined burst split at arbitrary
    /// byte boundaries byte-identically to the single-write path.
    #[test]
    fn gateway_responses_are_split_invariant(
        cuts in proptest::collection::vec(0usize..100_000, 1..16),
    ) {
        let (gateway, server) = test_gateway();
        let addr = gateway.addr();
        let stream = deterministic_burst(BURST);

        // Warm the result cache so both measured exchanges see the same
        // cache state (`cache_hit` is part of the response body).
        exchange_chunked(addr, std::slice::from_ref(&stream));
        let single_shot = exchange_chunked(addr, std::slice::from_ref(&stream));
        let split = exchange_chunked(addr, &chunks_of(&stream, &cuts));

        prop_assert!(!single_shot.is_empty());
        let want = scrub_volatile(&single_shot);
        let got = scrub_volatile(&split);
        prop_assert_eq!(
            String::from_utf8_lossy(&want),
            String::from_utf8_lossy(&got),
            "split arrival changed the response stream"
        );
        gateway.shutdown();
        server.initiate_shutdown();
    }
}

#[test]
fn interleaved_partial_writes_across_multiplexed_connections_stay_isolated() {
    let (gateway, server) = test_gateway();
    let addr = gateway.addr();
    let stream = deterministic_burst(BURST);
    // Warm the result cache first: every measured exchange then reports
    // the same `cache_hit` values.
    exchange_chunked(addr, std::slice::from_ref(&stream));
    let reference = scrub_volatile(&exchange_chunked(addr, std::slice::from_ref(&stream)));

    // 16 connections over 2 event loops, each trickling its burst in a
    // different chunking, all concurrently: every connection must get
    // exactly the reference response stream — no cross-talk, no
    // reordering, no lost pipelined request.
    std::thread::scope(|scope| {
        let mut sessions = Vec::new();
        for i in 0..16usize {
            let stream = stream.clone();
            sessions.push(scope.spawn(move || {
                let cuts: Vec<usize> = (0..8).map(|k| (i * 131 + k * 977) % stream.len()).collect();
                exchange_chunked(addr, &chunks_of(&stream, &cuts))
            }));
        }
        for session in sessions {
            let received = scrub_volatile(&session.join().expect("session thread"));
            assert_eq!(
                String::from_utf8_lossy(&received),
                String::from_utf8_lossy(&reference),
                "a multiplexed connection saw a diverging response stream"
            );
        }
    });
    let stats = gateway.shutdown();
    assert_eq!(stats.connections, 18, "warm-up + reference + 16 sessions");
    assert_eq!(stats.requests, 18 * BURST.len() as u64);
    server.initiate_shutdown();
}
