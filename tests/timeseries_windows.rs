//! Property tests for the metrics-history ring: whatever the sampler
//! records, every windowed answer must agree with a direct recomputation
//! from the raw samples — across step boundaries, counter resets and
//! retention wraparound.

use proptest::prelude::*;

use lixto::obs::{FieldSpec, FieldStats, TimeSeries, WindowStats};

/// A recorded history: timestamps strictly increasing by one interval,
/// one counter column (with resets) and one gauge column.
#[derive(Debug, Clone)]
struct History {
    interval_ms: u64,
    capacity: usize,
    /// `(counter, gauge)` per tick.
    ticks: Vec<(u64, u64)>,
}

fn arb_history() -> impl Strategy<Value = History> {
    let interval = proptest::sample::select(vec![250u64, 1000, 5000]);
    let capacity = 2usize..12;
    // Counter increments, with an occasional reset-to-small marker
    // (the third component hits 0 roughly one draw in ten).
    let tick = (0u64..50, 0u64..1_000_000, 0u64..10);
    let ticks = proptest::collection::vec(tick, 1..40);
    (interval, capacity, ticks).prop_map(|(interval_ms, capacity, raw)| {
        let mut counter = 0u64;
        let mut ticks = Vec::with_capacity(raw.len());
        for (increment, gauge, reset_draw) in raw {
            if reset_draw == 0 {
                // The process restarted: the counter starts over below
                // its previous value.
                counter = increment / 10;
            } else {
                counter += increment;
            }
            ticks.push((counter, gauge));
        }
        History {
            interval_ms,
            capacity,
            ticks,
        }
    })
}

fn record(history: &History) -> (TimeSeries, Vec<(u64, u64, u64)>) {
    let series = TimeSeries::new(
        vec![FieldSpec::counter("c"), FieldSpec::gauge("g")],
        history.interval_ms,
        history.capacity,
    );
    let mut retained = Vec::new();
    for (i, &(counter, gauge)) in history.ticks.iter().enumerate() {
        // Offset so the first timestamp is nonzero.
        let at = (i as u64 + 1) * history.interval_ms;
        series.record(at, &[counter, gauge]);
        retained.push((at, counter, gauge));
    }
    // Mirror the ring's bounded retention.
    let overflow = retained.len().saturating_sub(series.capacity());
    retained.drain(..overflow);
    (series, retained)
}

/// Reference implementation of the reset-aware counter delta over
/// `(from, to]`: pairwise deltas between adjacent retained samples,
/// including the baseline edge from the newest sample at or before
/// `from`.
fn reference_counter_delta(retained: &[(u64, u64, u64)], from: u64, to: u64) -> u64 {
    let mut delta = 0u64;
    let mut prev: Option<u64> = retained
        .iter()
        .rev()
        .find(|&&(at, _, _)| at <= from)
        .map(|&(_, c, _)| c);
    for &(at, counter, _) in retained {
        if at <= from || at > to {
            continue;
        }
        if let Some(prev) = prev {
            delta += if counter >= prev {
                counter - prev
            } else {
                counter
            };
        }
        prev = Some(counter);
    }
    delta
}

/// Reference nearest-rank quantile over the gauge values in `(from, to]`.
fn reference_gauge_quantile(
    retained: &[(u64, u64, u64)],
    from: u64,
    to: u64,
    q: f64,
) -> Option<u64> {
    let mut values: Vec<u64> = retained
        .iter()
        .filter(|&&(at, _, _)| at > from && at <= to)
        .map(|&(_, _, g)| g)
        .collect();
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let rank = ((q * values.len() as f64).ceil() as usize).max(1);
    Some(values[rank - 1])
}

fn counter_delta(window: &WindowStats) -> u64 {
    match window.fields.iter().find(|f| f.name == "c").unwrap().stats {
        FieldStats::Counter { delta, .. } => delta,
        _ => panic!("c is a counter"),
    }
}

fn gauge_quantiles(window: &WindowStats) -> Option<(u64, u64)> {
    match window.fields.iter().find(|f| f.name == "g").unwrap().stats {
        FieldStats::Gauge { p50, p99, .. } => Some((p50, p99)),
        _ => panic!("g is a gauge"),
    }
}

proptest! {
    /// Any window's counter delta and gauge quantiles equal a direct
    /// recomputation from the retained raw samples — under retention
    /// wraparound and counter resets alike.
    #[test]
    fn window_stats_agree_with_raw_recomputation(
        history in arb_history(),
        from_ticks in 0u64..45,
        span_ticks in 0u64..45,
    ) {
        let (series, retained) = record(&history);
        let from = from_ticks * history.interval_ms;
        let to = from + span_ticks * history.interval_ms;
        let window = series.window(from, to);
        prop_assert_eq!(
            counter_delta(&window),
            reference_counter_delta(&retained, from, to),
            "window ({from}, {to}] of {retained:?}"
        );
        let want_p50 = reference_gauge_quantile(&retained, from, to, 0.50);
        let want_p99 = reference_gauge_quantile(&retained, from, to, 0.99);
        match (gauge_quantiles(&window), want_p50) {
            (quantiles, None) => {
                // An empty window reports zeroed gauge stats.
                prop_assert_eq!(window.samples, 0);
                prop_assert_eq!(quantiles, Some((0, 0)));
            }
            (Some((p50, p99)), Some(want)) => {
                prop_assert_eq!(p50, want);
                prop_assert_eq!(p99, want_p99.unwrap());
            }
            (None, Some(_)) => prop_assert!(false, "gauge stats missing"),
        }
    }

    /// Step tiles partition their window: summing per-step counter
    /// deltas across any step size reproduces the whole-window delta,
    /// interval-aligned or not.
    #[test]
    fn step_deltas_are_additive_across_boundaries(
        history in arb_history(),
        step_ms in 1u64..12_000,
    ) {
        let (series, retained) = record(&history);
        let to = (history.ticks.len() as u64 + 1) * history.interval_ms;
        let whole = series.window(0, to);
        let steps = series.steps(0, to, step_ms);
        let step_sum: u64 = steps.iter().map(counter_delta).sum();
        prop_assert_eq!(
            step_sum,
            counter_delta(&whole),
            "steps of {step_ms}ms over {retained:?}"
        );
        // The tiles cover (0, to] without gaps or overlap.
        for pair in steps.windows(2) {
            prop_assert_eq!(pair[0].to_ms, pair[1].from_ms);
        }
        if let (Some(first), Some(last)) = (steps.first(), steps.last()) {
            prop_assert_eq!(first.from_ms, 0);
            prop_assert!(last.to_ms >= to);
        }
    }

    /// Retention keeps exactly the newest `capacity` samples: windows
    /// reaching further back see nothing older.
    #[test]
    fn retention_drops_the_oldest_samples(history in arb_history()) {
        let (series, retained) = record(&history);
        prop_assert_eq!(series.len(), retained.len());
        prop_assert!(series.len() <= series.capacity());
        let newest = (history.ticks.len() as u64) * history.interval_ms;
        let all = series.window(0, newest);
        // The earliest retained sample has no predecessor, so it opens
        // the window without contributing a delta.
        prop_assert_eq!(all.samples as usize, retained.len());
        prop_assert_eq!(
            counter_delta(&all),
            reference_counter_delta(&retained, 0, newest)
        );
    }
}
