//! Compiled-plan execution — unoptimized *and* optimized — must be
//! *result-identical* to the interpreted reference evaluator: instance
//! for instance, byte for byte through the XML rendering, across the
//! whole workload corpus (books / eBay / news / flights), on perturbed
//! layouts, and on multi-page crawls. This is the safety net under the
//! compile-once architecture: the plan executor and the optimizer may be
//! arbitrarily cleverer than the AST walker, but never different.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lixto::elog::{
    parse_program, ConceptRegistry, Extractor, OptimizedPlan, StaticWeb, WebSource, WrapperPlan,
};
use lixto::workloads::perturb;
use lixto::workloads::traffic::{self, VARIANTS_PER_WRAPPER};
use lixto_bench::workload_design;

/// Run all three engines — interpreted AST walker, unoptimized plan
/// executor, optimized plan executor — over one (program, web) pair and
/// demand identity of the full result, the pattern table, and the
/// designed XML rendering.
fn assert_engines_agree(
    program_src: &str,
    web: &dyn WebSource,
    design: &lixto::core::XmlDesign,
    context: &str,
) {
    let program = parse_program(program_src).expect("program parses");
    let plan = std::sync::Arc::new(
        WrapperPlan::compile(&program, &ConceptRegistry::builtin()).expect("program compiles"),
    );
    let optimized_plan = std::sync::Arc::new(OptimizedPlan::new(plan.clone()));
    let interpreted = Extractor::new(program, web).run_interpreted();
    let compiled = Extractor::from_plan(plan, web).run();
    let optimized = Extractor::from_optimized(optimized_plan, web).run();
    assert_eq!(
        interpreted, compiled,
        "{context}: interpreted vs plan results diverged"
    );
    assert_eq!(
        compiled, optimized,
        "{context}: plan vs optimized results diverged"
    );
    assert_eq!(
        interpreted.patterns(),
        compiled.patterns(),
        "{context}: pattern tables diverged"
    );
    assert_eq!(
        compiled.patterns(),
        optimized.patterns(),
        "{context}: optimized pattern table diverged"
    );
    let interpreted_xml = lixto::xml::to_string(&lixto::core::to_xml(&interpreted, design));
    let compiled_xml = lixto::xml::to_string(&lixto::core::to_xml(&compiled, design));
    let optimized_xml = lixto::xml::to_string(&lixto::core::to_xml(&optimized, design));
    assert_eq!(
        interpreted_xml, compiled_xml,
        "{context}: XML renderings diverged"
    );
    assert_eq!(
        compiled_xml, optimized_xml,
        "{context}: optimized XML rendering diverged"
    );
}

#[test]
fn corpus_sweep_all_wrappers_all_variants() {
    for profile in traffic::profiles() {
        let design = workload_design(&profile);
        for seed in [1u64, 2026] {
            for variant in 0..VARIANTS_PER_WRAPPER {
                let web = lixto::elog::SinglePage {
                    url: profile.entry_url.to_string(),
                    html: traffic::page_for(profile.name, seed, variant),
                };
                assert_engines_agree(
                    profile.program,
                    &web,
                    &design,
                    &format!("{} seed {seed} variant {variant}", profile.name),
                );
            }
        }
    }
}

#[test]
fn long_tail_stream_is_engine_identical() {
    let profiles: std::collections::HashMap<&str, _> = traffic::profiles()
        .into_iter()
        .map(|p| (p.name, p))
        .collect();
    for request in traffic::long_tail_requests(7, 8, 4) {
        let profile = &profiles[request.wrapper];
        let web = lixto::elog::SinglePage {
            url: request.url.clone(),
            html: request.html.clone(),
        };
        assert_engines_agree(
            profile.program,
            &web,
            &workload_design(profile),
            &format!("long-tail {}", request.wrapper),
        );
    }
}

#[test]
fn crawling_wrapper_is_engine_identical() {
    // Multi-page: exercises Document extraction, attrbind URL binding,
    // the crawl fixpoint, and cross-document instances.
    let mut web = StaticWeb::new();
    web.put(
        "http://start/",
        "<body><a href='http://p2/'>next</a><a href='http://gone/'>dead</a><p>first</p></body>",
    );
    web.put(
        "http://p2/",
        "<body><a href='http://p3/'>more</a><p>second</p></body>",
    );
    web.put("http://p3/", "<body><p>third</p><td>$ 9</td></body>");
    let program = r#"
        page(S, X) :- document("http://start/", S), subelem(S, (?.body, []), X).
        link(S, X) :- page(_, S), subelem(S, (?.a, []), X).
        page(S, X) :- link(_, S), attrbind(S, href, U), document(U, X).
        para(S, X) :- page(_, S), subelem(S, (?.p, []), X).
        price(S, X) :- page(_, S), subelem(S, (?.td, [(elementtext, "\var[Y](\$|EUR)", regvar)]), X), isCurrency(Y).
    "#;
    let design = lixto::core::XmlDesign::new()
        .root("crawl")
        .auxiliary("link");
    assert_engines_agree(program, &web, &design, "crawler");
}

#[test]
fn ebay_figure5_program_is_engine_identical() {
    // The paper's flagship program: subsq + before/after with binding +
    // pattern references + subtext + concepts, all in one wrapper.
    let web = lixto::elog::SinglePage {
        url: "www.ebay.com/".to_string(),
        html: traffic::page_for("ebay", 2026, 1),
    };
    let design = lixto::core::XmlDesign::new()
        .root("auctions")
        .auxiliary("tableseq");
    assert_engines_agree(lixto::elog::EBAY_PROGRAM, &web, &design, "ebay");
}

/// A web source whose pages fail on their first `fetch` and succeed on
/// the retry — plus one page that always fails. Exercises the unified
/// retry-once-then-pin fetch semantics: all three engines must agree on
/// flaky sources regardless of how many fixpoint passes they take.
struct FlakyWeb {
    pages: StaticWeb,
    attempts: std::cell::RefCell<std::collections::HashMap<String, u32>>,
    always_dead: String,
}

impl WebSource for FlakyWeb {
    fn fetch(&self, url: &str) -> Option<String> {
        let mut attempts = self.attempts.borrow_mut();
        let n = attempts.entry(url.to_string()).or_insert(0);
        *n += 1;
        if url == self.always_dead || *n < 2 {
            return None;
        }
        self.pages.fetch(url)
    }
}

#[test]
fn flaky_sources_are_engine_identical() {
    let mut pages = StaticWeb::new();
    pages.put(
        "http://start/",
        "<body><a href='http://p2/'>next</a><a href='http://dead/'>dead</a><p>first</p></body>",
    );
    pages.put("http://p2/", "<body><p>second</p><td>$ 9</td></body>");
    let program = r#"
        page(S, X) :- document("http://start/", S), subelem(S, (?.body, []), X).
        link(S, X) :- page(_, S), subelem(S, (?.a, []), X).
        page(S, X) :- link(_, S), attrbind(S, href, U), document(U, X).
        para(S, X) :- page(_, S), subelem(S, (?.p, []), X).
        price(S, X) :- page(_, S), subelem(S, (?.td, [(elementtext, "\var[Y](\$|EUR)", regvar)]), X), isCurrency(Y).
    "#;
    let design = lixto::core::XmlDesign::new()
        .root("crawl")
        .auxiliary("link");
    // Each engine gets a fresh source so retry counters start at zero.
    let fresh = || FlakyWeb {
        pages: pages.clone(),
        attempts: std::cell::RefCell::new(std::collections::HashMap::new()),
        always_dead: "http://dead/".to_string(),
    };
    let parsed = parse_program(program).expect("program parses");
    let plan = std::sync::Arc::new(
        WrapperPlan::compile(&parsed, &ConceptRegistry::builtin()).expect("program compiles"),
    );
    let optimized_plan = std::sync::Arc::new(OptimizedPlan::new(plan.clone()));
    let interpreted_web = fresh();
    let interpreted = Extractor::new(parsed, &interpreted_web).run_interpreted();
    let compiled_web = fresh();
    let compiled = Extractor::from_plan(plan, &compiled_web).run();
    let optimized_web = fresh();
    let optimized = Extractor::from_optimized(optimized_plan, &optimized_web).run();
    assert_eq!(interpreted, compiled, "flaky: interpreted vs plan");
    assert_eq!(compiled, optimized, "flaky: plan vs optimized");
    // The flaky pages were actually extracted, not silently skipped.
    assert!(
        interpreted.patterns().iter().any(|p| p == "price"),
        "retried pages should contribute instances"
    );
    let interpreted_xml = lixto::xml::to_string(&lixto::core::to_xml(&interpreted, &design));
    let optimized_xml = lixto::xml::to_string(&lixto::core::to_xml(&optimized, &design));
    assert_eq!(interpreted_xml, optimized_xml, "flaky: XML diverged");
}

/// Deep single-branch nesting: every step of a descendant path stays
/// live down a long spine, stressing the fused automaton's mask
/// propagation and the step evaluator's frontier reuse.
#[test]
fn deeply_nested_documents_are_engine_identical() {
    let mut html = String::from("<body>");
    for d in 0..40 {
        html.push_str(&format!("<div id='d{d}'><span>lvl {d}</span>"));
    }
    html.push_str("<table><tr><td>$ 7</td></tr></table>");
    for _ in 0..40 {
        html.push_str("</div>");
    }
    html.push_str("</body>");
    let program = r#"
        item(S, X) :- document("http://deep/", S), subelem(S, (?.td, []), X).
        label(S, X) :- item(_, S), subelem(S, (.*, []), X).
        deepspan(S, X) :- document("http://deep/", S), subelem(S, (?.div.div.div.span, []), X).
    "#;
    let web = lixto::elog::SinglePage {
        url: "http://deep/".to_string(),
        html,
    };
    let design = lixto::core::XmlDesign::new().root("deep");
    assert_engines_agree(program, &web, &design, "deep nesting");
}

/// Wide sibling fan-out: thousands of flat siblings, where per-step
/// allocation and per-candidate dispatch dominate the unfused evaluator.
#[test]
fn wide_sibling_documents_are_engine_identical() {
    let mut html = String::from("<body><ul>");
    for i in 0..1500 {
        let cls = if i % 3 == 0 { "odd" } else { "even" };
        html.push_str(&format!("<li class='{cls}'>row {i}: $ {}</li>", i % 97));
    }
    html.push_str("</ul></body>");
    let program = r#"
        row(S, X) :- document("http://wide/", S), subelem(S, (?.li, []), X).
        odd(S, X) :- document("http://wide/", S), subelem(S, (?.li, [(class, "odd", exact)]), X).
        price(S, X) :- row(_, S), subtext(S, "\$ \var[Y]([0-9]+)", X), isNumber(Y).
    "#;
    let web = lixto::elog::SinglePage {
        url: "http://wide/".to_string(),
        html,
    };
    let design = lixto::core::XmlDesign::new().root("wide");
    assert_engines_agree(program, &web, &design, "wide siblings");
}

/// Table-heavy layout with shared path prefixes across rules — the
/// hoisting sweet spot — run both pristine and through the perturbation
/// kit to cover messier real-world shapes.
#[test]
fn table_heavy_documents_are_engine_identical() {
    let mut html = String::from("<body>");
    for t in 0..12 {
        html.push_str("<table><tbody>");
        for r in 0..18 {
            html.push_str(&format!(
                "<tr><td>name {t}-{r}</td><td>$ {}</td><td><a href='http://x/{t}/{r}'>go</a></td></tr>",
                (t * 31 + r * 7) % 500
            ));
        }
        html.push_str("</tbody></table>");
    }
    html.push_str("</body>");
    let program = r#"
        rowx(S, X) :- document("http://tables/", S), subelem(S, (?.tr, []), X).
        namecell(S, X) :- rowx(_, S), subelem(S, (.td, []), X), firstsubtree(S, X, (.td, [])).
        pricecell(S, X) :- rowx(_, S), subelem(S, (.td, [(elementtext, "\var[Y](\$ [0-9]+)", regvar)]), X), isCurrency(Y).
        linkcell(S, X) :- rowx(_, S), subelem(S, (.td.a, []), X).
    "#;
    let design = lixto::core::XmlDesign::new().root("tables");
    let web = lixto::elog::SinglePage {
        url: "http://tables/".to_string(),
        html: html.clone(),
    };
    assert_engines_agree(program, &web, &design, "table heavy");
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE20);
        let mutated = perturb::apply_random(&html, 3, &mut rng);
        let web = lixto::elog::SinglePage {
            url: "http://tables/".to_string(),
            html: mutated,
        };
        assert_engines_agree(
            program,
            &web,
            &design,
            &format!("table heavy perturbed {seed}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random corpus point, randomly perturbed layout: the two engines
    /// still agree byte for byte.
    #[test]
    fn perturbed_corpus_is_engine_identical(
        which in 0usize..5,
        seed in 0u64..1000,
        variant in 0u64..VARIANTS_PER_WRAPPER,
        perturbations in 0usize..4,
    ) {
        let profile = traffic::profiles().remove(which);
        let page = traffic::page_for(profile.name, seed, variant);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE15);
        let mutated = perturb::apply_random(&page, perturbations, &mut rng);
        let web = lixto::elog::SinglePage {
            url: profile.entry_url.to_string(),
            html: mutated,
        };
        assert_engines_agree(
            profile.program,
            &web,
            &workload_design(&profile),
            &format!("perturbed {} seed {seed}", profile.name),
        );
    }
}
