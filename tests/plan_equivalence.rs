//! Compiled-plan execution must be *result-identical* to the interpreted
//! reference evaluator — instance for instance, byte for byte through the
//! XML rendering — across the whole workload corpus (books / eBay / news
//! / flights), on perturbed layouts, and on multi-page crawls. This is
//! the safety net under the compile-once architecture: the plan executor
//! may be arbitrarily cleverer than the AST walker, but never different.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lixto::elog::{parse_program, ConceptRegistry, Extractor, StaticWeb, WebSource, WrapperPlan};
use lixto::workloads::perturb;
use lixto::workloads::traffic::{self, VARIANTS_PER_WRAPPER};
use lixto_bench::workload_design;

/// Run both engines over one (program, web) pair and demand identity of
/// the full result, the pattern table, and the designed XML rendering.
fn assert_engines_agree(
    program_src: &str,
    web: &dyn WebSource,
    design: &lixto::core::XmlDesign,
    context: &str,
) {
    let program = parse_program(program_src).expect("program parses");
    let plan = std::sync::Arc::new(
        WrapperPlan::compile(&program, &ConceptRegistry::builtin()).expect("program compiles"),
    );
    let interpreted = Extractor::new(program, web).run_interpreted();
    let compiled = Extractor::from_plan(plan, web).run();
    assert_eq!(
        interpreted, compiled,
        "{context}: extraction results diverged"
    );
    assert_eq!(
        interpreted.patterns(),
        compiled.patterns(),
        "{context}: pattern tables diverged"
    );
    let interpreted_xml = lixto::xml::to_string(&lixto::core::to_xml(&interpreted, design));
    let compiled_xml = lixto::xml::to_string(&lixto::core::to_xml(&compiled, design));
    assert_eq!(
        interpreted_xml, compiled_xml,
        "{context}: XML renderings diverged"
    );
}

#[test]
fn corpus_sweep_all_wrappers_all_variants() {
    for profile in traffic::profiles() {
        let design = workload_design(&profile);
        for seed in [1u64, 2026] {
            for variant in 0..VARIANTS_PER_WRAPPER {
                let web = lixto::elog::SinglePage {
                    url: profile.entry_url.to_string(),
                    html: traffic::page_for(profile.name, seed, variant),
                };
                assert_engines_agree(
                    profile.program,
                    &web,
                    &design,
                    &format!("{} seed {seed} variant {variant}", profile.name),
                );
            }
        }
    }
}

#[test]
fn long_tail_stream_is_engine_identical() {
    let profiles: std::collections::HashMap<&str, _> = traffic::profiles()
        .into_iter()
        .map(|p| (p.name, p))
        .collect();
    for request in traffic::long_tail_requests(7, 8, 4) {
        let profile = &profiles[request.wrapper];
        let web = lixto::elog::SinglePage {
            url: request.url.clone(),
            html: request.html.clone(),
        };
        assert_engines_agree(
            profile.program,
            &web,
            &workload_design(profile),
            &format!("long-tail {}", request.wrapper),
        );
    }
}

#[test]
fn crawling_wrapper_is_engine_identical() {
    // Multi-page: exercises Document extraction, attrbind URL binding,
    // the crawl fixpoint, and cross-document instances.
    let mut web = StaticWeb::new();
    web.put(
        "http://start/",
        "<body><a href='http://p2/'>next</a><a href='http://gone/'>dead</a><p>first</p></body>",
    );
    web.put(
        "http://p2/",
        "<body><a href='http://p3/'>more</a><p>second</p></body>",
    );
    web.put("http://p3/", "<body><p>third</p><td>$ 9</td></body>");
    let program = r#"
        page(S, X) :- document("http://start/", S), subelem(S, (?.body, []), X).
        link(S, X) :- page(_, S), subelem(S, (?.a, []), X).
        page(S, X) :- link(_, S), attrbind(S, href, U), document(U, X).
        para(S, X) :- page(_, S), subelem(S, (?.p, []), X).
        price(S, X) :- page(_, S), subelem(S, (?.td, [(elementtext, "\var[Y](\$|EUR)", regvar)]), X), isCurrency(Y).
    "#;
    let design = lixto::core::XmlDesign::new()
        .root("crawl")
        .auxiliary("link");
    assert_engines_agree(program, &web, &design, "crawler");
}

#[test]
fn ebay_figure5_program_is_engine_identical() {
    // The paper's flagship program: subsq + before/after with binding +
    // pattern references + subtext + concepts, all in one wrapper.
    let web = lixto::elog::SinglePage {
        url: "www.ebay.com/".to_string(),
        html: traffic::page_for("ebay", 2026, 1),
    };
    let design = lixto::core::XmlDesign::new()
        .root("auctions")
        .auxiliary("tableseq");
    assert_engines_agree(lixto::elog::EBAY_PROGRAM, &web, &design, "ebay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random corpus point, randomly perturbed layout: the two engines
    /// still agree byte for byte.
    #[test]
    fn perturbed_corpus_is_engine_identical(
        which in 0usize..5,
        seed in 0u64..1000,
        variant in 0u64..VARIANTS_PER_WRAPPER,
        perturbations in 0usize..4,
    ) {
        let profile = traffic::profiles().remove(which);
        let page = traffic::page_for(profile.name, seed, variant);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE15);
        let mutated = perturb::apply_random(&page, perturbations, &mut rng);
        let web = lixto::elog::SinglePage {
            url: profile.entry_url.to_string(),
            html: mutated,
        };
        assert_engines_agree(
            profile.program,
            &web,
            &workload_design(&profile),
            &format!("perturbed {} seed {seed}", profile.name),
        );
    }
}
