//! End-to-end wrapper scenarios across crates: HTML → Elog → instance
//! base → XML designer/transformer → XML, plus the monadic-datalog
//! wrapper path of Section 2.

use lixto_tree::render::to_sexp;

#[test]
fn figure5_ebay_to_xml() {
    let (web, records) = lixto_workloads::ebay::site(21, 7);
    let program = lixto_elog::parse_program(lixto_elog::EBAY_PROGRAM).unwrap();
    let result = lixto_elog::Extractor::new(program, &web).run();
    let design = lixto_core::XmlDesign::new()
        .auxiliary("tableseq")
        .label("itemdes", "description")
        .root("auctions");
    let xml = lixto_core::to_xml(&result, &design);
    let records_out: Vec<_> = xml.children_named("record").collect();
    assert_eq!(records_out.len(), records.len());
    for (r, truth) in records_out.iter().zip(&records) {
        assert_eq!(
            r.child_text("description"),
            Some(truth.description.as_str())
        );
        assert_eq!(r.child_text("bids"), Some(truth.bids.to_string().as_str()));
    }
    // Round-trips through the XML parser.
    let serialized = lixto_xml::to_string_pretty(&xml);
    assert!(lixto_xml::parse(&serialized).is_ok());
}

#[test]
fn monadic_datalog_wrapper_of_section_2() {
    // The Section 2 view: a wrapper is a monadic datalog program whose
    // extraction predicates relabel nodes; the output is the tree minor.
    let program = lixto_datalog::parse_program(
        r#"record(X) :- label(X, "tr").
           field(X) :- record(R), child(R, X), label(X, "td")."#,
    )
    .unwrap();
    let doc = lixto_html::parse("<table><tr><td>a</td><td>b</td></tr><tr><td>c</td></tr></table>");
    let out = lixto_datalog::Wrapper::new(program).wrap(&doc).unwrap();
    assert_eq!(
        to_sexp(&out),
        r#"(result (record (field "a") (field "b")) (record (field "c")))"#
    );
}

#[test]
fn crawling_assembles_multi_page_wrapping() {
    let mut web = lixto_elog::StaticWeb::new();
    web.put(
        "http://start/",
        "<body><div class='item'>one</div><a href='http://p2/'>more</a></body>",
    );
    web.put(
        "http://p2/",
        "<body><div class='item'>two</div><a href='http://p3/'>more</a></body>",
    );
    web.put("http://p3/", "<body><div class='item'>three</div></body>");
    let program = lixto_elog::parse_program(
        r#"
        page(S, X) :- document("http://start/", S).
        nextlink(S, X) :- page(_, S), subelem(S, (?.a, []), X).
        page(S, X) :- nextlink(_, S), attrbind(S, href, U), document(U, X).
        item(S, X) :- page(_, S), subelem(S, (?.div, [(class, "item", exact)]), X).
        "#,
    )
    .unwrap();
    let result = lixto_elog::Extractor::new(program, &web).run();
    let mut items = result.texts_of("item");
    items.sort();
    assert_eq!(items, vec!["one", "three", "two"]);
    assert_eq!(result.docs.len(), 3);
}

#[test]
fn visual_builder_program_equals_handwritten_semantics() {
    // A wrapper built by "clicks" behaves like a handwritten one.
    let (_, records) = lixto_workloads::ebay::site(2, 4);
    let page = lixto_workloads::ebay::listing_page(&records);
    let mut b = lixto_core::PatternBuilder::new("www.ebay.com/", &page);
    let table = {
        let doc = b.document();
        doc.node_ids()
            .find(|&n| {
                doc.label_str(n) == "table" && doc.text_content(n).contains(&records[0].description)
            })
            .unwrap()
    };
    b.click("page", "record", table)
        .generalize()
        .add_condition(lixto_elog::Condition::Contains {
            path: lixto_elog::ElementPath::anywhere("a"),
            negated: false,
        })
        .commit();
    let result = b.run();
    assert_eq!(result.base.of_pattern("record").len(), records.len());
}
