//! # lixto
//!
//! Umbrella crate for **lixto-rs**, a Rust reproduction of *"The Lixto
//! Data Extraction Project — Back and Forth between Theory and Practice"*
//! (PODS 2004). Re-exports every subsystem; see the README for the map.

#![forbid(unsafe_code)]

pub use lixto_automata as automata;
pub use lixto_core as core;
pub use lixto_cq as cq;
pub use lixto_datalog as datalog;
pub use lixto_elog as elog;
pub use lixto_html as html;
pub use lixto_http as http;
pub use lixto_obs as obs;
pub use lixto_regexlite as regexlite;
pub use lixto_server as server;
pub use lixto_transform as transform;
pub use lixto_tree as tree;
pub use lixto_workloads as workloads;
pub use lixto_xml as xml;
pub use lixto_xpath as xpath;
