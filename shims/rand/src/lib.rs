//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, vendored because this build environment cannot reach a registry.
//!
//! Only the API subset used by this workspace is provided: the [`Rng`]
//! extension trait with `gen_range` / `gen_bool`, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. `StdRng` here is a SplitMix64 generator — excellent
//! statistical quality for test-data generation, but **not** cryptographically
//! secure and not stream-compatible with the real `rand::rngs::StdRng`.

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 high bits give a uniform float in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the test-sized spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic SplitMix64 generator (Steele, Lea & Flood 2014).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
        let mut seen = [false; 14];
        for _ in 0..2000 {
            seen[rng.gen_range(3..17usize) - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_ref() {
        fn takes_rng(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(9);
        // Reborrowing a &mut StdRng must still satisfy `impl Rng`.
        let r = &mut rng;
        assert!(takes_rng(r) < 10);
    }
}
