//! The [`Strategy`] trait and core combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values. Simplified from real proptest:
/// sampling is direct (no value trees, no shrinking).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            source: self.source.clone(),
            map: self.map.clone(),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// String literals act as regex-subset generators, as in real proptest.
/// See [`crate::string::generate`] for the supported syntax.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (0u8..10).prop_map(|n| n * 2);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn tuples_sample_each_component() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = (0u8..2, 10usize..12, 5i32..6);
        for _ in 0..20 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!(a < 2);
            assert!((10..12).contains(&b));
            assert_eq!(c, 5);
        }
    }
}
