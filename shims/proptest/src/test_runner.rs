//! Configuration and error types for the [`crate::proptest!`] runner.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

/// Seed an RNG from a test's name, so each test generates a stable input
/// sequence across runs (FNV-1a hash of the name).
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}
