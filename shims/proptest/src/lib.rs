//! Minimal stand-in for [`proptest`](https://crates.io/crates/proptest),
//! vendored because this build environment cannot reach a registry.
//!
//! Provides the API subset used by this workspace's property tests: the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / `&str`
//! (regex-subset) strategies, [`sample::select`], [`collection::vec`], the
//! [`proptest!`] macro, and `prop_assert!` / `prop_assert_eq!`. Unlike real
//! proptest there is no shrinking: a failing case reports its inputs and
//! panics. Generation is deterministic per test name, so failures reproduce.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` inputs and runs the body
/// on each; `prop_assert*` failures panic with the offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);
                )*
                let inputs = format!("{:?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        err,
                        inputs,
                    );
                }
            }
        }
    )*};
}

/// Check a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Check equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Check inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                left,
            )));
        }
    }};
}
