//! Strategies that pick from explicit lists of options.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy that picks uniformly from `options`. Panics if empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Clone for Select<T> {
    fn clone(&self) -> Self {
        Select {
            options: self.options.clone(),
        }
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn select_covers_all_options() {
        let strat = select(vec!["a", "b", "c"]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
