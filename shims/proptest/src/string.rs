//! String generation from a small regex subset.
//!
//! Real proptest lets a string literal act as a full regex strategy. This
//! shim supports the subset this workspace's tests use, plus the obvious
//! neighbours: literal characters, character classes `[abc]` (with ranges
//! like `a-z`), and the quantifiers `{m,n}`, `{n}`, `?`, `*`, `+`
//! (unbounded repetition is capped at 8). Anything else panics loudly so a
//! future test doesn't silently get wrong data.

use rand::rngs::StdRng;
use rand::Rng;

const UNBOUNDED_CAP: usize = 8;

enum Piece {
    Literal(char),
    Class(Vec<char>),
}

struct Token {
    piece: Piece,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let tokens = parse(pattern);
    let mut out = String::new();
    for token in &tokens {
        let count = if token.min == token.max {
            token.min
        } else {
            rng.gen_range(token.min..token.max + 1)
        };
        for _ in 0..count {
            match &token.piece {
                Piece::Literal(c) => out.push(*c),
                Piece::Class(options) => out.push(options[rng.gen_range(0..options.len())]),
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Token> {
    let mut chars = pattern.chars().peekable();
    let mut tokens = Vec::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => Piece::Class(parse_class(&mut chars, pattern)),
            '\\' => Piece::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash")),
            ),
            '(' | ')' | '|' | '.' | '^' | '$' => {
                unsupported(pattern, "groups, alternation and anchors")
            }
            other => Piece::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        tokens.push(Token { piece, min, max });
    }
    tokens
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut options = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| unsupported(pattern, "unterminated character class"));
        match c {
            ']' => break,
            '\\' => options.push(
                chars
                    .next()
                    .unwrap_or_else(|| unsupported(pattern, "trailing backslash in class")),
            ),
            start => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let end = match chars.next() {
                        Some(']') | None => unsupported(pattern, "dangling '-' in character class"),
                        Some(e) => e,
                    };
                    assert!(start <= end, "bad class range in {pattern:?}");
                    options.extend(start..=end);
                } else {
                    options.push(start);
                }
            }
        }
    }
    assert!(!options.is_empty(), "empty character class in {pattern:?}");
    options
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| unsupported(pattern, "non-numeric repetition count"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!(
        "proptest shim: pattern {pattern:?} uses unsupported regex syntax ({what}); \
         only literals, [classes] and {{m,n}}/?/*/+ quantifiers are implemented"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_count_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate("[ab]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = generate("xy{3}z?", &mut rng);
        assert!(s.starts_with("xyyy"));
        assert!(s == "xyyy" || s == "xyyyz");
    }

    #[test]
    fn class_ranges_expand() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = generate("[a-c]{1}", &mut rng);
            assert!(["a", "b", "c"].contains(&s.as_str()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        generate("a|b", &mut rng);
    }
}
