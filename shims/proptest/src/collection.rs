//! Strategies for collections.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec size range must be non-empty");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy {
            element: self.element.clone(),
            size: self.size.clone(),
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let strat = vec(0u8..5, 1..4);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
