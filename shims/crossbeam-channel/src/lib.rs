//! Minimal stand-in for [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel),
//! vendored because this build environment cannot reach a registry.
//!
//! Hand-rolled bounded MPMC channel on `Mutex<VecDeque>` + two condvars.
//! Unlike the earlier `std::sync::mpsc` wrapper, this matches the
//! crossbeam semantics the workspace relies on: **both halves are
//! cloneable** (multiple producers *and* multiple consumers, the
//! worker-pool pattern of `lixto_server`), `try_send` reports a full
//! queue without blocking (backpressure probing), and `len` exposes the
//! queue depth (scheduler metrics). Disconnection rules are crossbeam's:
//! `recv` errors once the queue is drained and every `Sender` is gone;
//! `send`/`try_send` error once every `Receiver` is gone.
//!
//! Zero-capacity (rendezvous) channels are not supported; `bounded(0)`
//! panics. The workspace never creates one.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Create a bounded channel with capacity `cap` (> 0).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity (rendezvous) channels unsupported");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap.min(1024)),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half. Cloneable; `send` blocks while the channel is full
/// and errors once every receiver is gone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake consumers blocked on an empty queue so they observe
            // the disconnect.
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Block until there is room (or error if every receiver is gone).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < inner.cap {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
        }
    }

    /// Non-blocking send: `Full` when at capacity, `Disconnected` when
    /// every receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.queue.len() >= inner.cap {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The receiving half. Cloneable (multi-consumer); `recv` blocks until a
/// message arrives and errors once the queue is drained and every sender
/// is gone.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake producers blocked on a full queue so they observe the
            // disconnect.
            drop(inner);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over messages, ending when every sender is dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Error returned by [`Sender::send`] when every receiver has
/// disconnected; carries the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`]; carries the unsent message.
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver has disconnected.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Was the failure a full queue?
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "Full(..)",
            TrySendError::Disconnected(_) => "Disconnected(..)",
        })
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "sending on a full channel",
            TrySendError::Disconnected(_) => "sending on a disconnected channel",
        })
    }
}

/// Error returned by [`Receiver::recv`] when every sender has
/// disconnected and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now.
    Empty,
    /// Every sender has disconnected and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TryRecvError::Empty => "receiving on an empty channel",
            TryRecvError::Disconnected => "receiving on an empty and disconnected channel",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn iter_ends_when_all_senders_drop() {
        let (tx, rx) = bounded(16);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 5..8 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_send_reports_backpressure_then_succeeds() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        // Queue full: try_send must not block, and must hand the message
        // back.
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        // Room again.
        tx.try_send(3).unwrap();
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn bounded_send_blocks_until_consumer_drains() {
        // Producer fills a capacity-1 queue; the second send must block
        // until the consumer takes the first message — the backpressure
        // the server's shard queues rely on.
        let (tx, rx) = bounded(1);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = sent.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Give the producer time to run ahead; it can complete at most
        // the first send (queued) — the second blocks.
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            sent.load(Ordering::SeqCst) <= 2,
            "producer ran ahead of a full queue"
        );
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2]);
        producer.join().unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn mpmc_worker_pool_delivers_each_message_once() {
        // The worker-pool pattern: many producers, a pool of consumers
        // sharing one cloned receiver. Every message is consumed exactly
        // once and per-producer FIFO order is preserved.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 50;
        let (tx, rx) = bounded::<(usize, usize)>(8);
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    tx.send((p, i)).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(msg) = rx.recv() {
                    got.push(msg);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<(usize, usize)> = Vec::new();
        let mut per_consumer_orders: Vec<Vec<(usize, usize)>> = Vec::new();
        for c in consumers {
            let got = c.join().unwrap();
            all.extend(got.iter().copied());
            per_consumer_orders.push(got);
        }
        // Exactly once, nothing lost.
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
        all.sort_unstable();
        let want: Vec<(usize, usize)> = (0..PRODUCERS)
            .flat_map(|p| (0..PER_PRODUCER).map(move |i| (p, i)))
            .collect();
        assert_eq!(all, want);
        // FIFO per producer as observed by each single consumer: a
        // consumer never sees producer p's message i after message j > i.
        for got in per_consumer_orders {
            let mut last: Vec<Option<usize>> = vec![None; PRODUCERS];
            for (p, i) in got {
                if let Some(prev) = last[p] {
                    assert!(i > prev, "out-of-order delivery from producer {p}");
                }
                last[p] = Some(i);
            }
        }
    }

    #[test]
    fn queue_depth_is_observable() {
        let (tx, rx) = bounded(8);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }
}
