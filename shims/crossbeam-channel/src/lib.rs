//! Minimal stand-in for [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel),
//! vendored because this build environment cannot reach a registry.
//!
//! Backed by `std::sync::mpsc::sync_channel`, which has the same
//! bounded-blocking semantics for the patterns this workspace uses:
//! cloneable senders, blocking `send`/`recv`, and receiver iteration that
//! terminates once every sender is dropped.

use std::fmt;
use std::sync::mpsc;

/// Create a bounded channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(tx), Receiver(rx))
}

/// The sending half of a bounded channel. Cloneable; `send` blocks while
/// the channel is full and errors once the receiver is gone.
pub struct Sender<T>(mpsc::SyncSender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half of a bounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Iterate over messages, ending when every sender is dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Error returned by [`Sender::send`] when the receiver has disconnected;
/// carries the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when every sender has disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn iter_ends_when_all_senders_drop() {
        let (tx, rx) = bounded(16);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 5..8 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
