//! Minimal stand-in for [`criterion`](https://crates.io/crates/criterion),
//! vendored because this build environment cannot reach a registry.
//!
//! Implements the API subset used by the benches in `crates/bench/benches/`:
//! benchmark groups with `sample_size` / `measurement_time` / `warm_up_time` /
//! `throughput`, `bench_with_input` + `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs a warm-up pass, collects wall-clock samples,
//! and prints mean/min/max per benchmark — enough for CI smoke runs and
//! coarse regression spotting.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_with_input(BenchmarkId::from_parameter(""), &(), |b, ()| f(b));
        group.finish();
        self
    }
}

/// A named set of related measurements.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id, self.throughput.as_ref());
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample, after a short warm-up. Stops early if the
    /// configured measurement time is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            std::hint::black_box(f());
        }
        self.samples.clear();
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &BenchmarkId, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let rate = match throughput {
            Some(&Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(&Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "  {group}/{id}: mean {mean:?} min {min:?} max {max:?} over {} samples{rate}",
            self.samples.len(),
        );
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("benchmark"),
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function `$name` that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` to run each group. Cargo's `--bench` style arguments are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(5);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0, "closure must have been exercised");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
